#!/usr/bin/env python3
"""Check the reproduction's qualitative acceptance criteria (DESIGN.md)
against a results directory produced by:

    cargo run -p miopt-bench --release --bin figures -- --all --csv <dir>

Usage: python3 scripts/check_shapes.py [results_dir]
"""
import csv
import sys
from pathlib import Path

RESULTS = Path(sys.argv[1] if len(sys.argv) > 1 else "results")

INSENSITIVE = ["DGEMM", "SGEMM", "CM"]
THROUGHPUT = ["FwAct", "FwLRN", "BwAct"]
REUSE = [
    "FwBN", "FwPool", "FwSoft", "BwSoft", "BwPool", "FwGRU", "FwLSTM",
    "FwBwGRU", "FwBwLSTM", "BwBN", "FwFc",
]

passed = []
failed = []


def check(name, cond, detail=""):
    (passed if cond else failed).append((name, detail))


def load(fig):
    path = RESULTS / f"{fig}.csv"
    rows = {}
    with open(path) as f:
        reader = csv.DictReader(f)
        for row in reader:
            rows[row["workload"]] = {k: float(v) for k, v in row.items() if k != "workload"}
    return rows


def main():
    f6 = load("fig6_exec_time")
    f7 = load("fig7_dram_accesses")
    f8 = load("fig8_cache_stalls")
    f9 = load("fig9_row_hits")
    f10 = load("fig10_opt_exec_time")
    f13 = load("fig13_opt_rows")

    # --- Figure 6 categories ---
    for w in INSENSITIVE:
        spread = max(abs(f6[w]["CacheR"] - 1), abs(f6[w]["CacheRW"] - 1))
        check(f"fig6 {w} insensitive (<7% spread)", spread < 0.07, f"spread={spread:.3f}")
    for w in THROUGHPUT:
        best_cached = min(f6[w]["CacheR"], f6[w]["CacheRW"])
        check(f"fig6 {w} caching hurts", best_cached > 1.02, f"best cached={best_cached:.3f}")
    for w in REUSE:
        best_cached = min(f6[w]["CacheR"], f6[w]["CacheRW"])
        check(f"fig6 {w} caching helps", best_cached < 0.98, f"best cached={best_cached:.3f}")

    # Magnitudes: caching helps up to ~29%, hurts up to ~24%.
    biggest_gain = min(min(f6[w]["CacheR"], f6[w]["CacheRW"]) for w in REUSE)
    check("fig6 max speedup in 12-45% band", 0.55 < biggest_gain < 0.88, f"{biggest_gain:.3f}")
    biggest_loss = max(min(f6[w]["CacheR"], f6[w]["CacheRW"]) for w in THROUGHPUT)
    check("fig6 max slowdown in 5-60% band", 1.05 < biggest_loss < 1.60, f"{biggest_loss:.3f}")

    # --- Figure 7 demand reductions ---
    for w, lo, hi in [("SGEMM", 0.08, 0.40), ("DGEMM", 0.10, 0.45)]:
        check(
            f"fig7 {w} read caching cuts DRAM to 8-45%",
            lo < f7[w]["CacheR"] < hi,
            f"CacheR={f7[w]['CacheR']:.3f}",
        )
    check("fig7 FwFc reduction >=80%", f7["FwFc"]["CacheR"] < 0.20, f"{f7['FwFc']['CacheR']:.3f}")
    for w in THROUGHPUT:
        check(
            f"fig7 {w} ~no reduction (>85%)",
            f7[w]["CacheR"] > 0.85,
            f"CacheR={f7[w]['CacheR']:.3f}",
        )
    for w in ["BwPool", "BwBN"]:
        check(
            f"fig7 {w} write caching helps further",
            f7[w]["CacheRW"] < f7[w]["CacheR"] - 0.03,
            f"RW={f7[w]['CacheRW']:.3f} R={f7[w]['CacheR']:.3f}",
        )

    # --- Figure 8 stalls ---
    for w in THROUGHPUT + ["FwPool"]:
        cached = max(f8[w]["CacheR"], f8[w]["CacheRW"])
        check(f"fig8 {w} cached stalls >= 0.5/req", cached > 0.5, f"{cached:.3f}")
    for w in f8:
        check(f"fig8 {w} uncached ~0 stalls", f8[w]["Uncached"] < 0.01, f"{f8[w]['Uncached']:.4f}")

    # --- Figure 9 row locality ---
    for w in ["FwAct", "FwLRN", "BwAct", "FwPool"]:
        check(
            f"fig9 {w} caching hurts row hits",
            min(f9[w]["CacheR"], f9[w]["CacheRW"]) < f9[w]["Uncached"] - 0.02,
            f"unc={f9[w]['Uncached']:.3f} r={f9[w]['CacheR']:.3f} rw={f9[w]['CacheRW']:.3f}",
        )
    for w in ["BwBN", "FwFc"]:
        check(
            f"fig9 {w} caching improves row hits",
            max(f9[w]["CacheR"], f9[w]["CacheRW"]) > f9[w]["Uncached"] + 0.02,
            f"unc={f9[w]['Uncached']:.3f} r={f9[w]['CacheR']:.3f} rw={f9[w]['CacheRW']:.3f}",
        )

    # --- Figures 10-13 ladder ---
    matched = 0
    for w in f10:
        if f10[w]["CacheRW-PCby"] <= 1.08:
            matched += 1
    check(
        "fig10 PCby within 8% of static best for >=14/17",
        matched >= 14,
        f"matched {matched}/17",
    )
    for w in ["FwLRN", "FwAct"]:
        check(
            f"fig10 optimizations recover {w} vs StaticWorst",
            f10[w]["CacheRW-PCby"] <= f10[w]["StaticWorst"] + 0.01,
            f"PCby={f10[w]['CacheRW-PCby']:.3f} worst={f10[w]['StaticWorst']:.3f}",
        )
    for w in ["BwAct", "FwAct"]:
        check(
            f"fig13 CR restores {w} row locality",
            f13[w]["CacheRW-CR"] >= f13[w]["CacheRW-AB"] - 0.01,
            f"AB={f13[w]['CacheRW-AB']:.3f} CR={f13[w]['CacheRW-CR']:.3f}",
        )

    print(f"\n{'='*60}\nPASS {len(passed)}  FAIL {len(failed)}\n{'='*60}")
    for name, detail in failed:
        print(f"FAIL  {name}  [{detail}]")
    if "-v" in sys.argv:
        for name, detail in passed:
            print(f"pass  {name}  [{detail}]")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
