#!/usr/bin/env bash
# Tier-1 verification gate, runnable offline (no registry access: the
# workspace has no external dependencies and `default-members` excludes
# nothing that needs one).
#
#   scripts/ci.sh          # fmt + clippy + build + debug tests
#   scripts/ci.sh --full   # additionally: release tests including the
#                          # release-only full-suite determinism/golden
#                          # tests and the non-default miopt-bench crate
#
# The debug path is the canonical tier-1 entry point:
#   cargo build --release && cargo test -q

set -euo pipefail
cd "$(dirname "$0")/.."

full=0
[[ "${1:-}" == "--full" ]] && full=1

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (default members, all targets) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== telemetry smoke run =="
# One tiny sweep with telemetry on: the CLI must emit a non-empty JSONL
# series and Chrome trace per job.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p miopt-harness -- \
    --scale quick --only FwSoft --fig6 --no-cache --quiet \
    --telemetry=20000 --out "$smoke_dir" --sweep-name smoke >/dev/null
test -s "$smoke_dir/smoke-telemetry/FwSoft-Uncached.jsonl"
test -s "$smoke_dir/smoke-telemetry/FwSoft-Uncached.trace.json"
test -s "$smoke_dir/smoke-telemetry/FwSoft-CacheRW.jsonl"
echo "telemetry smoke run ok"

if [[ $full -eq 1 ]]; then
    echo "== cargo clippy -p miopt-bench =="
    cargo clippy -p miopt-bench --all-targets -- -D warnings

    echo "== cargo build -p miopt-bench (bins, benches) =="
    cargo build --release -p miopt-bench --bins --benches

    echo "== cargo test --release (full suite, including release-only tests) =="
    cargo test -q --release -- --include-ignored
fi

echo "ci.sh: all checks passed"
