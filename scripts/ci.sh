#!/usr/bin/env bash
# Tier-1 verification gate, runnable offline (no registry access: the
# workspace has no external dependencies and `default-members` excludes
# nothing that needs one).
#
#   scripts/ci.sh          # fmt + clippy + build + debug tests
#   scripts/ci.sh --full   # additionally: release tests including the
#                          # release-only full-suite determinism/golden
#                          # tests and the non-default miopt-bench crate
#
# The debug path is the canonical tier-1 entry point:
#   cargo build --release && cargo test -q

set -euo pipefail
cd "$(dirname "$0")/.."

full=0
[[ "${1:-}" == "--full" ]] && full=1

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (default members, all targets) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== telemetry smoke run =="
# One tiny sweep with telemetry on: the CLI must emit a non-empty JSONL
# series and Chrome trace per job.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p miopt-harness -- \
    --scale quick --only FwSoft --fig6 --no-cache --quiet \
    --telemetry=20000 --out "$smoke_dir" --sweep-name smoke >/dev/null
test -s "$smoke_dir/smoke-telemetry/FwSoft-Uncached.jsonl"
test -s "$smoke_dir/smoke-telemetry/FwSoft-Uncached.trace.json"
test -s "$smoke_dir/smoke-telemetry/FwSoft-CacheRW.jsonl"
echo "telemetry smoke run ok"

echo "== invariant-checked debug sweep =="
# Debug builds run the sentinel unconditionally; pass --check-invariants
# anyway so the flag path itself is exercised. Any conservation slip or
# watchdog trip fails the job and (via the nonzero harness exit) the gate.
cargo run -q -p miopt-harness -- \
    --scale quick --only FwSoft --fig6 --no-cache --no-journal --quiet \
    --check-invariants --out "$smoke_dir" --sweep-name checked >/dev/null
grep -q '"status": "ok"' "$smoke_dir/checked.json"
echo "invariant-checked sweep ok"

echo "== journal resume smoke test (SIGKILL + --resume) =="
# Start a serialized sweep, SIGKILL it after the first job commits to the
# write-ahead journal, then resume the run id: the finished jobs must be
# served from the journal and the sweep must complete and clean up.
rs=resume-smoke
journal="$smoke_dir/$rs.journal.jsonl"
cargo run --release -q -p miopt-harness -- \
    --scale paper --only FwPool,BwPool --fig6 --no-cache --quiet --jobs 1 \
    --out "$smoke_dir" --sweep-name "$rs" >/dev/null 2>&1 &
sweep_pid=$!
for _ in $(seq 1 600); do
    [[ -f "$journal" && "$(wc -l <"$journal")" -ge 2 ]] && break
    sleep 0.1
done
kill -9 "$sweep_pid" 2>/dev/null || true
wait "$sweep_pid" 2>/dev/null || true
if [[ ! -f "$journal" ]]; then
    echo "resume smoke: sweep finished before SIGKILL; enlarge the grid" >&2
    exit 1
fi
journaled=$(($(wc -l <"$journal") - 1))
cargo run --release -q -p miopt-harness -- \
    --scale paper --only FwPool,BwPool --fig6 --no-cache --quiet --jobs 1 \
    --out "$smoke_dir" --resume "$rs" >/dev/null 2>"$smoke_dir/resume.log"
grep -q "already journaled" "$smoke_dir/resume.log"
test -s "$smoke_dir/$rs.json"
[[ "$(grep -c '"status": "ok"' "$smoke_dir/$rs.json")" -eq 6 ]]
# The journal and partial report are removed once the final report lands.
[[ ! -e "$journal" && ! -e "$smoke_dir/$rs.partial.json" ]]
echo "resume smoke ok ($journaled job(s) journaled before SIGKILL, 6 ok after resume)"

echo "== event-core equivalence spot check (default vs --no-skip, --jobs 2) =="
# The discrete-event core is the default engine; a --no-skip run of the
# same grid steps per cycle through the oracle and must produce
# byte-identical reports (modulo the header's wall-clock/provenance
# lines). The event-core run uses a 2-worker pool so the check crosses
# engine mode x job parallelism. The full cross-policy grid is pinned by
# harness/tests/equivalence.rs; this exercises the CLI flags end to end.
cargo run --release -q -p miopt-harness -- \
    --scale quick --only FwSoft --fig6 --no-cache --no-journal --quiet \
    --jobs 2 --out "$smoke_dir" --sweep-name skip-on >/dev/null
cargo run --release -q -p miopt-harness -- \
    --scale quick --only FwSoft --fig6 --no-cache --no-journal --quiet \
    --no-skip --out "$smoke_dir" --sweep-name skip-off >/dev/null
diff <(grep '"cycles"\|"status"' "$smoke_dir/skip-on.json") \
     <(grep '"cycles"\|"status"' "$smoke_dir/skip-off.json")
echo "event-core equivalence ok"

echo "== two-tenant serving smoke (miopt-harness serve) =="
# A tiny invariant-checked serving sweep: two tenants with partitioned
# L2 ways, one policy column, a handful of requests. Every job must
# complete every request, and the report must carry the traffic
# provenance that ties a resume to identical arrivals.
cargo run --release -q -p miopt-harness -- serve \
    --policies CacheR --loads 40000 --requests 4 --partition \
    --check-invariants --budget 100000000 --quiet \
    --out "$smoke_dir" --sweep-name serve-smoke >/dev/null
test -s "$smoke_dir/serve-smoke.json"
grep -q '"status": "ok"' "$smoke_dir/serve-smoke.json"
grep -q '"arrivals_fingerprint"' "$smoke_dir/serve-smoke.json"
if grep -q '"completed": 0' "$smoke_dir/serve-smoke.json"; then
    echo "serve smoke: a tenant completed no requests" >&2
    exit 1
fi
# The serve journal is cleaned up after a successful run.
[[ ! -e "$smoke_dir/serve-smoke.journal.jsonl" ]]
echo "serve smoke ok"

echo "== event-core perf smoke =="
# The event core must actually avoid work: a latency-bound uncached RNN
# run on the paper machine leaves a substantial share of its simulated
# cycles with no event dispatched at all. (Wall-clock ratios are too
# noisy for CI; the dispatch counters are exact.)
quiet=$(cargo run --release -q -p miopt --example event_stats -- FwGRU Uncached \
    | awk '{ for (i = 1; i <= NF; i++) if ($i ~ /%$/) print int($i) }')
if [[ -z "$quiet" || "$quiet" -lt 20 ]]; then
    echo "perf smoke: expected >=20% event-free cycles, got '${quiet:-none}'" >&2
    exit 1
fi
echo "event-core perf smoke ok (${quiet}% of cycles event-free)"

if [[ $full -eq 1 ]]; then
    echo "== cargo clippy -p miopt-bench =="
    cargo clippy -p miopt-bench --all-targets -- -D warnings

    echo "== cargo build -p miopt-bench (bins, benches) =="
    cargo build --release -p miopt-bench --bins --benches

    echo "== cargo test --release (full suite, including release-only tests) =="
    cargo test -q --release -- --include-ignored
fi

echo "ci.sh: all checks passed"
