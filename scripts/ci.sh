#!/usr/bin/env bash
# Tier-1 verification gate, runnable offline (no registry access: the
# workspace has no external dependencies and `default-members` excludes
# nothing that needs one).
#
#   scripts/ci.sh          # fmt + clippy + build + debug tests
#   scripts/ci.sh --full   # additionally: release tests including the
#                          # release-only full-suite determinism/golden
#                          # tests and the non-default miopt-bench crate
#
# The debug path is the canonical tier-1 entry point:
#   cargo build --release && cargo test -q

set -euo pipefail
cd "$(dirname "$0")/.."

full=0
[[ "${1:-}" == "--full" ]] && full=1

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (default members, all targets) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== telemetry smoke run =="
# One tiny sweep with telemetry on: the CLI must emit a non-empty JSONL
# series and Chrome trace per job.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p miopt-harness -- \
    --scale quick --only FwSoft --fig6 --no-cache --quiet \
    --telemetry=20000 --out "$smoke_dir" --sweep-name smoke >/dev/null
test -s "$smoke_dir/smoke-telemetry/FwSoft-Uncached.jsonl"
test -s "$smoke_dir/smoke-telemetry/FwSoft-Uncached.trace.json"
test -s "$smoke_dir/smoke-telemetry/FwSoft-CacheRW.jsonl"
echo "telemetry smoke run ok"

echo "== invariant-checked debug sweep =="
# Debug builds run the sentinel unconditionally; pass --check-invariants
# anyway so the flag path itself is exercised. Any conservation slip or
# watchdog trip fails the job and (via the nonzero harness exit) the gate.
cargo run -q -p miopt-harness -- \
    --scale quick --only FwSoft --fig6 --no-cache --no-journal --quiet \
    --check-invariants --out "$smoke_dir" --sweep-name checked >/dev/null
grep -q '"status": "ok"' "$smoke_dir/checked.json"
echo "invariant-checked sweep ok"

echo "== journal crash-injection loop (seeded SIGKILLs + --resume byte-identity) =="
# Reference: an uninterrupted journaled run of a small 6-job grid. Then,
# for each kill point k, start the same sweep serialized, SIGKILL it
# once k jobs have committed to the write-ahead store, inspect the store
# (query --journals must call it recoverable), resume, and require the
# final report to be byte-identical to the reference outside wall-clock
# and git provenance fields. The journal store and partial report must
# be gone once the report lands.
ref=crash-ref
cargo run --release -q -p miopt-harness -- \
    --scale paper --only FwPool,BwPool --fig6 --no-cache --quiet --jobs 1 \
    --out "$smoke_dir" --sweep-name "$ref" >/dev/null 2>&1
scrub() {
    grep -v '"sweep"\|"elapsed_ms"\|"started_unix_ms"\|"git_rev"\|"git_dirty"' "$1"
}
for k in 1 2 3; do
    rs="crash-$k"
    partial="$smoke_dir/$rs.partial.json"
    cargo run --release -q -p miopt-harness -- \
        --scale paper --only FwPool,BwPool --fig6 --no-cache --quiet --jobs 1 \
        --out "$smoke_dir" --sweep-name "$rs" >/dev/null 2>&1 &
    sweep_pid=$!
    for _ in $(seq 1 600); do
        [[ -f "$partial" && "$(grep -c '"id":' "$partial")" -ge "$k" ]] && break
        sleep 0.1
    done
    kill -9 "$sweep_pid" 2>/dev/null || true
    wait "$sweep_pid" 2>/dev/null || true
    if [[ ! -d "$smoke_dir/$rs.journal" ]]; then
        echo "crash loop: run $rs finished before SIGKILL; enlarge the grid" >&2
        exit 1
    fi
    cargo run --release -q -p miopt-harness -- query --journals \
        --dir "$smoke_dir" --run "$rs" >/dev/null
    cargo run --release -q -p miopt-harness -- \
        --scale paper --only FwPool,BwPool --fig6 --no-cache --quiet --jobs 1 \
        --out "$smoke_dir" --resume "$rs" >/dev/null 2>"$smoke_dir/$rs.log"
    grep -q "already journaled" "$smoke_dir/$rs.log"
    [[ "$(grep -c '"status": "ok"' "$smoke_dir/$rs.json")" -eq 6 ]]
    diff <(scrub "$smoke_dir/$ref.json") <(scrub "$smoke_dir/$rs.json")
    [[ ! -e "$smoke_dir/$rs.journal" && ! -e "$partial" ]]
    journaled=$(grep -o '[0-9]* of [0-9]* jobs' "$smoke_dir/$rs.log" | head -1 | cut -d' ' -f1)
    echo "crash point $k ok (${journaled:-?} job(s) journaled before SIGKILL, report byte-identical)"
done
echo "crash-injection loop ok"

echo "== event-core equivalence spot check (default vs --no-skip, --jobs 2) =="
# The discrete-event core is the default engine; a --no-skip run of the
# same grid steps per cycle through the oracle and must produce
# byte-identical reports (modulo the header's wall-clock/provenance
# lines). The event-core run uses a 2-worker pool so the check crosses
# engine mode x job parallelism. The full cross-policy grid is pinned by
# harness/tests/equivalence.rs; this exercises the CLI flags end to end.
cargo run --release -q -p miopt-harness -- \
    --scale quick --only FwSoft --fig6 --no-cache --no-journal --quiet \
    --jobs 2 --out "$smoke_dir" --sweep-name skip-on >/dev/null
cargo run --release -q -p miopt-harness -- \
    --scale quick --only FwSoft --fig6 --no-cache --no-journal --quiet \
    --no-skip --out "$smoke_dir" --sweep-name skip-off >/dev/null
diff <(grep '"cycles"\|"status"' "$smoke_dir/skip-on.json") \
     <(grep '"cycles"\|"status"' "$smoke_dir/skip-off.json")
echo "event-core equivalence ok"

echo "== two-tenant serving smoke (miopt-harness serve) =="
# A tiny invariant-checked serving sweep: two tenants with partitioned
# L2 ways, one policy column, a handful of requests. Every job must
# complete every request, and the report must carry the traffic
# provenance that ties a resume to identical arrivals.
cargo run --release -q -p miopt-harness -- serve \
    --policies CacheR --loads 40000 --requests 4 --partition \
    --check-invariants --budget 100000000 --quiet \
    --out "$smoke_dir" --sweep-name serve-smoke >/dev/null
test -s "$smoke_dir/serve-smoke.json"
grep -q '"status": "ok"' "$smoke_dir/serve-smoke.json"
grep -q '"arrivals_fingerprint"' "$smoke_dir/serve-smoke.json"
if grep -q '"completed": 0' "$smoke_dir/serve-smoke.json"; then
    echo "serve smoke: a tenant completed no requests" >&2
    exit 1
fi
# The serve journal store is cleaned up after a successful run.
[[ ! -e "$smoke_dir/serve-smoke.journal" && ! -e "$smoke_dir/serve-smoke.journal.jsonl" ]]
echo "serve smoke ok"

echo "== query smoke (miopt-harness query) =="
# Aggregate the reports the sections above produced, slice the serve
# report per tenant, and confirm no journal stores were left behind.
cargo run --release -q -p miopt-harness -- query \
    --dir "$smoke_dir" --metric cycles --agg count,min,mean,p99 \
    >"$smoke_dir/query.txt"
grep -q "cycles" "$smoke_dir/query.txt"
rows=$(sed -n 's/^\([0-9][0-9]*\) row(s).*/\1/p' "$smoke_dir/query.txt")
[[ "${rows:-0}" -ge 1 ]]
# Redirect instead of piping into grep -q: a closed pipe EPIPE-kills
# the harness (see the SIGPIPE gotcha in the verify notes).
cargo run --release -q -p miopt-harness -- query \
    --dir "$smoke_dir" --run serve-smoke --metric p99 --agg count,max --json \
    >"$smoke_dir/query-serve.json"
grep -q '"count"' "$smoke_dir/query-serve.json"
cargo run --release -q -p miopt-harness -- query --journals --dir "$smoke_dir" \
    >"$smoke_dir/query-journals.txt"
grep -q "no journals" "$smoke_dir/query-journals.txt"
echo "query smoke ok"

echo "== event-core perf smoke =="
# The event core must actually avoid work: a latency-bound uncached RNN
# run on the paper machine leaves a substantial share of its simulated
# cycles with no event dispatched at all. (Wall-clock ratios are too
# noisy for CI; the dispatch counters are exact.)
# The headline "N% event-free" figure; the per-stage dispatch
# histogram on the next line also carries % fields, so match the label.
# (No early exit: closing the pipe would EPIPE-kill the example.)
quiet=$(cargo run --release -q -p miopt --example event_stats -- FwGRU Uncached \
    | awk '/event-free/ && !done { for (i = 1; i <= NF; i++) if ($i ~ /%$/) { print int($i); done = 1; break } }')
if [[ -z "$quiet" || "$quiet" -lt 20 ]]; then
    echo "perf smoke: expected >=20% event-free cycles, got '${quiet:-none}'" >&2
    exit 1
fi
echo "event-core perf smoke ok (${quiet}% of cycles event-free)"

echo "== zero-allocation steady state (counting allocator, release) =="
# The hot-path contract: once warmed up, simulating a cycle performs no
# heap allocation. The test binary installs a counting global allocator,
# so it is feature-gated off the default test build and run here in
# release (the shape the bench numbers are recorded in).
cargo test --release -q -p miopt --features count-allocs --test zero_alloc

echo "== hot-path perf smoke (ns/event vs checked-in BENCH_hotpath.json) =="
# Re-measure the bench suite and gate the *aggregate* ns/event (total
# wall seconds over total events, all six cases) against the checked-in
# recording, with a 20% regression budget. Per-case and per-actor
# figures swing far more than 20% with machine noise on a shared box;
# the aggregate is the most stable figure the bench produces. One
# breach triggers a single re-run and the best of the two attempts is
# judged — a structural hot-path regression fails both, a noisy
# neighbour rarely does.
perf_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir" "$perf_dir"' EXIT
perf_attempt() {
    # The bench writes the hot-path report (event_secs + events per
    # case) next to the path it is given.
    cargo bench -q -p miopt-bench --bench sim_throughput -- \
        "$perf_dir/BENCH_skipahead.json" >"$perf_dir/bench.log" 2>&1 || {
        cat "$perf_dir/bench.log" >&2; exit 1; }
    python3 - "$perf_dir/BENCH_hotpath.json" results/BENCH_hotpath.json <<'EOF'
import json, sys
def aggregate(path):
    rows = json.load(open(path))["entries"]
    return sum(e["event_secs"] for e in rows) * 1e9 / max(
        sum(e["events"] for e in rows), 1)
now, base = aggregate(sys.argv[1]), aggregate(sys.argv[2])
ratio = now / base
print(f"aggregate {now:.1f} ns/event vs baseline {base:.1f} ({ratio:.2f}x)")
sys.exit(1 if ratio > 1.20 else 0)
EOF
}
if ! perf_attempt; then
    echo "first attempt exceeded the 20% budget; re-running once"
    perf_attempt || {
        echo "hot-path ns/event regressed >20% on both attempts" >&2
        exit 1
    }
fi
echo "hot-path perf smoke ok"

if [[ $full -eq 1 ]]; then
    echo "== cargo clippy -p miopt-bench =="
    cargo clippy -p miopt-bench --all-targets -- -D warnings

    echo "== cargo build -p miopt-bench (bins, benches) =="
    cargo build --release -p miopt-bench --bins --benches

    echo "== cargo test --release (full suite, including release-only tests) =="
    cargo test -q --release -- --include-ignored
fi

echo "ci.sh: all checks passed"
