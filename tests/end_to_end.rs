//! Cross-crate integration tests: whole-suite runs at quick scale on the
//! small test system, checking the invariants that hold regardless of
//! calibration.

use miopt::runner::{run_one, run_static_sweep};
use miopt::{CachePolicy, PolicyConfig, SystemConfig};
use miopt_workloads::{by_name, suite, SuiteConfig};

fn cfg() -> SystemConfig {
    SystemConfig::small_test()
}

#[test]
fn every_workload_completes_under_every_static_policy() {
    let workloads = suite(&SuiteConfig::quick());
    // The big streaming workloads are slow even at quick scale on debug
    // builds; sample across categories instead of running all 17 x 3.
    let names = ["CM", "FwBN", "FwSoft", "BwPool", "FwGRU", "BwBN", "FwFc"];
    for w in workloads
        .iter()
        .filter(|w| names.contains(&w.name.as_str()))
    {
        for p in CachePolicy::ALL {
            let r = run_one(&cfg(), w, PolicyConfig::of(p));
            assert!(r.metrics.cycles > 0, "{}/{p}", w.name);
            assert!(
                r.metrics.gpu.retired_wavefronts > 0,
                "{}/{p}: no wavefronts retired",
                w.name
            );
        }
    }
}

#[test]
fn uncached_never_counts_cache_stalls() {
    for name in ["FwSoft", "BwBN", "FwGRU"] {
        let w = by_name(&SuiteConfig::quick(), name).unwrap();
        let r = run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::Uncached));
        assert_eq!(r.metrics.cache_stalls(), 0, "{name}");
    }
}

#[test]
fn gpu_request_counts_are_policy_independent() {
    // The CU issues the same coalesced request stream whatever the caches
    // do with it.
    let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
    let counts: Vec<u64> = CachePolicy::ALL
        .iter()
        .map(|&p| {
            run_one(&cfg(), &w, PolicyConfig::of(p))
                .metrics
                .gpu
                .memory_requests()
        })
        .collect();
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}

#[test]
fn dram_accesses_never_exceed_gpu_requests_plus_writebacks() {
    for name in ["FwSoft", "BwBN", "FwFc"] {
        let w = by_name(&SuiteConfig::quick(), name).unwrap();
        for p in CachePolicy::ALL {
            let r = run_one(&cfg(), &w, PolicyConfig::of(p));
            let m = &r.metrics;
            let upper = m.gpu.memory_requests()
                + m.l2.writebacks.get()
                + m.l2.rinse_writebacks.get()
                + m.l2.flush_writebacks.get();
            assert!(
                m.dram_accesses() <= upper,
                "{name}/{p}: dram {} > upper bound {upper}",
                m.dram_accesses()
            );
        }
    }
}

#[test]
fn reuse_workloads_cut_dram_traffic_with_caching() {
    for name in ["FwSoft", "BwBN", "FwFc"] {
        let w = by_name(&SuiteConfig::quick(), name).unwrap();
        let unc = run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::Uncached));
        let r = run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::CacheR));
        assert!(
            (r.metrics.dram_accesses() as f64) < 0.9 * unc.metrics.dram_accesses() as f64,
            "{name}: CacheR {} vs Uncached {}",
            r.metrics.dram_accesses(),
            unc.metrics.dram_accesses()
        );
    }
}

#[test]
fn optimized_configs_complete_and_bound_stalls() {
    use miopt::OptimizationSet;
    let w = by_name(&SuiteConfig::quick(), "BwBN").unwrap();
    let plain = run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::CacheRW));
    let ab = run_one(
        &cfg(),
        &w,
        PolicyConfig {
            policy: CachePolicy::CacheRW,
            opts: OptimizationSet::ab(),
        },
    );
    // Allocation bypass exists to remove set-busy stalls.
    assert!(
        ab.metrics.l1.stall_set_busy.get() + ab.metrics.l2.stall_set_busy.get()
            <= plain.metrics.l1.stall_set_busy.get() + plain.metrics.l2.stall_set_busy.get(),
        "AB must not increase allocation blocking"
    );
    let pcby = run_one(
        &cfg(),
        &w,
        PolicyConfig {
            policy: CachePolicy::CacheRW,
            opts: OptimizationSet::ab_cr_pcby(),
        },
    );
    assert!(pcby.metrics.cycles > 0);
}

#[test]
fn rinsing_never_loses_dirty_data() {
    use miopt::OptimizationSet;
    // Rinsing is *eager* writeback: it may add writes (a rinsed line that
    // is stored again is written back twice) but can never lose dirty
    // data, so DRAM writes are at least those of plain CacheRW-AB and the
    // rinse writebacks are accounted.
    let w = by_name(&SuiteConfig::quick(), "BwPool").unwrap();
    let ab = run_one(
        &cfg(),
        &w,
        PolicyConfig {
            policy: CachePolicy::CacheRW,
            opts: OptimizationSet::ab(),
        },
    );
    let cr = run_one(
        &cfg(),
        &w,
        PolicyConfig {
            policy: CachePolicy::CacheRW,
            opts: OptimizationSet::ab_cr(),
        },
    );
    assert!(
        cr.metrics.dram.writes.get() >= ab.metrics.dram.writes.get(),
        "eager writeback cannot reduce total writes: cr {} vs ab {}",
        cr.metrics.dram.writes.get(),
        ab.metrics.dram.writes.get()
    );
    assert!(cr.metrics.l2.rinse_writebacks.get() > 0, "rinsing engaged");
}

#[test]
fn static_sweep_is_reproducible() {
    let w = by_name(&SuiteConfig::quick(), "FwGRU").unwrap();
    let a = run_static_sweep(&cfg(), std::slice::from_ref(&w));
    let b = run_static_sweep(&cfg(), std::slice::from_ref(&w));
    for (x, y) in a[0].iter().zip(b[0].iter()) {
        assert_eq!(x.metrics.cycles, y.metrics.cycles);
        assert_eq!(x.metrics.dram_accesses(), y.metrics.dram_accesses());
    }
}
