//! Cross-crate integration tests: whole-suite runs at quick scale on the
//! small test system, checking the invariants that hold regardless of
//! calibration.

use miopt::runner::{run_one, run_one_with, run_static_sweep, RunOptions, SimError};
use miopt::{CachePolicy, PolicyConfig, SystemConfig};
use miopt_workloads::{by_name, suite, SuiteConfig};

fn cfg() -> SystemConfig {
    SystemConfig::small_test()
}

#[test]
fn every_workload_completes_under_every_static_policy() {
    let workloads = suite(&SuiteConfig::quick());
    // The big streaming workloads are slow even at quick scale on debug
    // builds; sample across categories instead of running all 17 x 3.
    let names = ["CM", "FwBN", "FwSoft", "BwPool", "FwGRU", "BwBN", "FwFc"];
    for w in workloads
        .iter()
        .filter(|w| names.contains(&w.name.as_str()))
    {
        for p in CachePolicy::ALL {
            let r = run_one(&cfg(), w, PolicyConfig::of(p)).expect("run finishes");
            assert!(r.metrics.cycles > 0, "{}/{p}", w.name);
            assert!(
                r.metrics.gpu.retired_wavefronts > 0,
                "{}/{p}: no wavefronts retired",
                w.name
            );
        }
    }
}

#[test]
fn exhausted_cycle_budgets_are_errors_not_panics() {
    // The public entry points must never panic on a timeout: a 10-cycle
    // budget cannot finish any workload, and the failure surfaces as a
    // typed `SimError` carrying the run's identity.
    let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
    let opts = RunOptions {
        max_cycles: 10,
        ..RunOptions::default()
    };
    let err = run_one_with(&cfg(), &w, PolicyConfig::of(CachePolicy::CacheR), &opts)
        .expect_err("a 10-cycle budget must be exhausted");
    match &err {
        SimError::Timeout { max_cycles, .. } => assert_eq!(*max_cycles, 10),
        other => panic!("expected a timeout, got {other}"),
    }
    assert!(err.to_string().contains("FwSoft/CacheR"), "{err}");
}

#[test]
fn uncached_never_counts_cache_stalls() {
    for name in ["FwSoft", "BwBN", "FwGRU"] {
        let w = by_name(&SuiteConfig::quick(), name).unwrap();
        let r = run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::Uncached)).expect("run finishes");
        assert_eq!(r.metrics.cache_stalls(), 0, "{name}");
    }
}

#[test]
fn gpu_request_counts_are_policy_independent() {
    // The CU issues the same coalesced request stream whatever the caches
    // do with it.
    let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
    let counts: Vec<u64> = CachePolicy::ALL
        .iter()
        .map(|&p| {
            run_one(&cfg(), &w, PolicyConfig::of(p))
                .expect("run finishes")
                .metrics
                .gpu
                .memory_requests()
        })
        .collect();
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}

#[test]
fn dram_accesses_never_exceed_gpu_requests_plus_writebacks() {
    for name in ["FwSoft", "BwBN", "FwFc"] {
        let w = by_name(&SuiteConfig::quick(), name).unwrap();
        for p in CachePolicy::ALL {
            let r = run_one(&cfg(), &w, PolicyConfig::of(p)).expect("run finishes");
            let m = &r.metrics;
            let upper = m.gpu.memory_requests()
                + m.l2.writebacks.get()
                + m.l2.rinse_writebacks.get()
                + m.l2.flush_writebacks.get();
            assert!(
                m.dram_accesses() <= upper,
                "{name}/{p}: dram {} > upper bound {upper}",
                m.dram_accesses()
            );
        }
    }
}

#[test]
fn reuse_workloads_cut_dram_traffic_with_caching() {
    for name in ["FwSoft", "BwBN", "FwFc"] {
        let w = by_name(&SuiteConfig::quick(), name).unwrap();
        let unc =
            run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::Uncached)).expect("run finishes");
        let r = run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::CacheR)).expect("run finishes");
        assert!(
            (r.metrics.dram_accesses() as f64) < 0.9 * unc.metrics.dram_accesses() as f64,
            "{name}: CacheR {} vs Uncached {}",
            r.metrics.dram_accesses(),
            unc.metrics.dram_accesses()
        );
    }
}

#[test]
fn optimized_configs_complete_and_bound_stalls() {
    use miopt::OptimizationSet;
    let w = by_name(&SuiteConfig::quick(), "BwBN").unwrap();
    let plain = run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::CacheRW)).expect("run finishes");
    let ab_policy =
        PolicyConfig::new(CachePolicy::CacheRW, OptimizationSet::ab()).expect("CacheRW admits AB");
    let ab = run_one(&cfg(), &w, ab_policy).expect("run finishes");
    // Allocation bypass exists to remove set-busy stalls.
    assert!(
        ab.metrics.l1.stall_set_busy.get() + ab.metrics.l2.stall_set_busy.get()
            <= plain.metrics.l1.stall_set_busy.get() + plain.metrics.l2.stall_set_busy.get(),
        "AB must not increase allocation blocking"
    );
    let pcby_policy = PolicyConfig::new(CachePolicy::CacheRW, OptimizationSet::ab_cr_pcby())
        .expect("CacheRW admits AB+CR+PCby");
    let pcby = run_one(&cfg(), &w, pcby_policy).expect("run finishes");
    assert!(pcby.metrics.cycles > 0);
}

#[test]
fn rinsing_never_loses_dirty_data() {
    use miopt::OptimizationSet;
    // Rinsing is *eager* writeback: it may add writes (a rinsed line that
    // is stored again is written back twice) but can never lose dirty
    // data, so DRAM writes are at least those of plain CacheRW-AB and the
    // rinse writebacks are accounted.
    let w = by_name(&SuiteConfig::quick(), "BwPool").unwrap();
    let ab_policy =
        PolicyConfig::new(CachePolicy::CacheRW, OptimizationSet::ab()).expect("CacheRW admits AB");
    let ab = run_one(&cfg(), &w, ab_policy).expect("run finishes");
    let cr_policy = PolicyConfig::new(CachePolicy::CacheRW, OptimizationSet::ab_cr())
        .expect("CacheRW admits AB+CR");
    let cr = run_one(&cfg(), &w, cr_policy).expect("run finishes");
    assert!(
        cr.metrics.dram.writes.get() >= ab.metrics.dram.writes.get(),
        "eager writeback cannot reduce total writes: cr {} vs ab {}",
        cr.metrics.dram.writes.get(),
        ab.metrics.dram.writes.get()
    );
    assert!(cr.metrics.l2.rinse_writebacks.get() > 0, "rinsing engaged");
}

#[test]
fn static_sweep_is_reproducible() {
    let w = by_name(&SuiteConfig::quick(), "FwGRU").unwrap();
    let a = run_static_sweep(&cfg(), std::slice::from_ref(&w)).expect("sweep finishes");
    let b = run_static_sweep(&cfg(), std::slice::from_ref(&w)).expect("sweep finishes");
    for (x, y) in a[0].iter().zip(b[0].iter()) {
        assert_eq!(x.metrics.cycles, y.metrics.cycles);
        assert_eq!(x.metrics.dram_accesses(), y.metrics.dram_accesses());
    }
}
