//! Property-based tests on the sentinel: across randomized (valid)
//! system configurations, policies, and workloads, a healthy simulation
//! run with invariant checking and the forward-progress watchdog enabled
//! never trips — the invariant catalog holds for every machine shape the
//! builder accepts, not just the two hand-picked test configs.

// Compiled only with `--features proptest-tests` (requires the external
// `proptest`/`rand` dev-dependencies, unavailable offline).
#![cfg(feature = "proptest-tests")]

use miopt::{ApuSystem, CachePolicy, PolicyConfig, SystemConfig};
use miopt_workloads::{by_name, SuiteConfig};
use proptest::prelude::*;

proptest! {
    // Each case is a full end-to-end simulation; keep the case count
    // modest so the suite stays in seconds.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn randomized_configs_run_checked_without_tripping(
        n_cus in 1usize..5,
        sliced in any::<bool>(),
        queue_capacity in 9usize..24,
        l1_sets in prop::sample::select(vec![4usize, 8, 16]),
        l1_ways in prop::sample::select(vec![2usize, 4]),
        l1_mshrs in prop::sample::select(vec![4usize, 8, 16]),
        l1_merge in prop::sample::select(vec![2usize, 4, 8]),
        l2_dbi_rows in prop::sample::select(vec![0usize, 8, 32]),
        xbar_per_output in 1u32..4,
        launch_overhead in 20u64..200,
        policy_idx in 0usize..CachePolicy::ALL.len(),
        workload in prop::sample::select(vec!["FwSoft", "FwPool"]),
    ) {
        // Randomize around the small test machine, keeping the couplings
        // validate() demands (queue capacity above the merge caps, the
        // L2 slice-selector bit matching the slice count). Some random
        // combinations are legitimately rejected (e.g. a merge cap at
        // the queue capacity); only valid machines must also be
        // invariant-clean.
        let l2_slices = if sliced { 2usize } else { 1 };
        let Ok(cfg) = miopt::SystemConfigBuilder::from_base(SystemConfig::small_test())
            .n_cus(n_cus)
            .l2_slices(l2_slices)
            .queue_capacity(queue_capacity)
            .xbar_per_output(xbar_per_output)
            .launch_overhead(launch_overhead)
            .map_l1(|l1| {
                l1.sets = l1_sets;
                l1.ways = l1_ways;
                l1.mshr_entries = l1_mshrs;
                l1.mshr_merge_cap = l1_merge;
            })
            .map_l2(|l2| {
                l2.dbi_rows = l2_dbi_rows;
                l2.index_skip_bits = if sliced { 1 } else { 0 };
            })
            .build()
        else {
            return Ok(());
        };

        let policy = PolicyConfig::of(CachePolicy::ALL[policy_idx]);
        let w = by_name(&SuiteConfig::quick(), workload).expect("quick suite workload");
        let mut sys = ApuSystem::new(cfg, policy, &w);
        // Tight cadence, aggressive watchdog: any conservation slip or
        // wedge in this machine shape would surface here.
        sys.enable_sentinel(64, 500_000);
        let m = sys
            .run_to_completion(2_000_000_000)
            .expect("checked run completes without tripping an invariant");
        prop_assert!(m.cycles > 0);
        prop_assert!(sys.check_invariants_now().is_empty());
    }
}
