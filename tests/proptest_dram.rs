//! Property-based tests on the DRAM model: arbitrary request streams must
//! drain completely, answer every read exactly once, and keep row-buffer
//! accounting consistent.

// Compiled only with `--features proptest-tests` (requires the external
// `proptest`/`rand` dev-dependencies, unavailable offline).
#![cfg(feature = "proptest-tests")]

use miopt_dram::{Dram, DramConfig};
use miopt_engine::{AccessKind, Cycle, LineAddr, MemReq, Origin, Pc, ReqId};
use proptest::prelude::*;
use std::collections::HashSet;

fn drive(cfg: DramConfig, reqs: Vec<(u64, bool)>) {
    let mut dram = Dram::new(cfg);
    let n_reads = reqs.iter().filter(|(_, s)| !s).count() as u64;
    let n_writes = reqs.len() as u64 - n_reads;
    let mut pending: std::collections::VecDeque<MemReq> = reqs
        .into_iter()
        .enumerate()
        .map(|(i, (line, is_store))| MemReq {
            id: ReqId(i as u64),
            line: LineAddr(line),
            is_store,
            kind: AccessKind::Bypass,
            pc: Pc(0),
            origin: if is_store {
                Origin::Internal
            } else {
                Origin::Wavefront { cu: 0, slot: 0 }
            },
            issue_cycle: Cycle(0),
        })
        .collect();

    let mut answered: HashSet<u64> = HashSet::new();
    let mut now = Cycle(0);
    while !pending.is_empty() || dram.busy() {
        if let Some(front) = pending.front() {
            if dram.can_accept(front) {
                let req = pending.pop_front().expect("nonempty");
                dram.push(now, req).expect("can_accept checked");
            }
        }
        dram.tick(now);
        while let Some(resp) = dram.pop_response(now) {
            assert!(answered.insert(resp.id.0), "duplicate response {resp:?}");
        }
        now += 1;
        assert!(now.0 < 10_000_000, "dram did not drain");
    }

    assert_eq!(answered.len() as u64, n_reads, "every read answered once");
    let s = dram.stats();
    assert_eq!(s.reads.get(), n_reads);
    assert_eq!(s.writes.get(), n_writes);
    assert_eq!(
        s.row_hits.total(),
        n_reads + n_writes,
        "every burst classified"
    );
    assert_eq!(
        s.row_hits.total() - s.row_hits.hits(),
        s.row_closed.get() + s.row_conflicts.get(),
        "misses split into closed and conflict"
    );
    let r = s.row_hits.value();
    assert!((0.0..=1.0).contains(&r));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_traffic_drains(
        reqs in prop::collection::vec((0u64..4096, any::<bool>()), 1..300),
    ) {
        drive(DramConfig::tiny_test(), reqs);
    }

    #[test]
    fn single_bank_hammering_drains(
        reqs in prop::collection::vec((0u64..4u64, any::<bool>()), 1..200),
    ) {
        // All requests to channel 0, alternating a handful of rows.
        let cfg = DramConfig::tiny_test();
        let stride = u64::from(cfg.channels) * cfg.lines_per_row * u64::from(cfg.banks);
        let mapped = reqs.into_iter().map(|(r, s)| (r * stride, s)).collect();
        drive(cfg, mapped);
    }

    #[test]
    fn sequential_streams_hit_rows(
        n in 64u64..512,
    ) {
        let cfg = DramConfig::tiny_test();
        let mut dram = Dram::new(cfg);
        let mut pushed = 0u64;
        let mut now = Cycle(0);
        while pushed < n || dram.busy() {
            if pushed < n {
                let req = MemReq::writeback(ReqId(pushed), LineAddr(pushed), now);
                if dram.can_accept(&req) {
                    dram.push(now, req).expect("checked");
                    pushed += 1;
                }
            }
            dram.tick(now);
            while dram.pop_response(now).is_some() {}
            now += 1;
            prop_assert!(now.0 < 1_000_000);
        }
        // A pure sequential stream must be row-hit dominated.
        prop_assert!(dram.stats().row_hits.value() > 0.7,
            "row hit ratio {} too low", dram.stats().row_hits.value());
    }
}
