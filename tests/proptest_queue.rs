//! Property-based tests on the engine's `TimedQueue`: FIFO order, latency
//! respect, and conservation under arbitrary push/pop interleavings.

// Compiled only with `--features proptest-tests` (requires the external
// `proptest`/`rand` dev-dependencies, unavailable offline).
#![cfg(feature = "proptest-tests")]

use miopt_engine::{Cycle, TimedQueue};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Push(u32),
    Pop,
    Advance(u64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u32..1000).prop_map(Step::Push),
        Just(Step::Pop),
        (1u64..20).prop_map(Step::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fifo_latency_and_conservation(
        capacity in 1usize..16,
        latency in 0u64..30,
        steps in prop::collection::vec(step_strategy(), 1..200),
    ) {
        let mut q = TimedQueue::new(capacity, latency);
        let mut now = Cycle(0);
        let mut pushed: Vec<(u32, Cycle)> = Vec::new();
        let mut popped: Vec<u32> = Vec::new();
        let mut accepted = 0usize;

        for step in steps {
            match step {
                Step::Push(v) => {
                    let before = q.len();
                    match q.push(now, v) {
                        Ok(()) => {
                            prop_assert!(before < capacity, "push accepted beyond capacity");
                            pushed.push((v, now));
                            accepted += 1;
                        }
                        Err(e) => {
                            prop_assert_eq!(before, capacity, "push rejected below capacity");
                            prop_assert_eq!(e.0, v, "rejected item returned");
                        }
                    }
                }
                Step::Pop => {
                    if let Some(v) = q.pop_ready(now) {
                        // FIFO: must be the oldest unpopped item.
                        let (expect, pushed_at) = pushed[popped.len()];
                        prop_assert_eq!(v, expect, "FIFO order violated");
                        // Latency: visible no earlier than push + latency.
                        prop_assert!(now.0 >= pushed_at.0 + latency, "latency violated");
                        popped.push(v);
                    }
                }
                Step::Advance(d) => now += d,
            }
        }
        // Conservation: everything accepted is either popped or inside.
        prop_assert_eq!(popped.len() + q.len(), accepted);
        // Drain the rest and re-check FIFO.
        let rest: Vec<u32> = q.drain_all().collect();
        let expected: Vec<u32> = pushed[popped.len()..].iter().map(|(v, _)| *v).collect();
        prop_assert_eq!(rest, expected);
    }

    #[test]
    fn ready_front_agrees_with_pop(
        latency in 0u64..10,
        values in prop::collection::vec(0u32..100, 1..20),
    ) {
        let mut q = TimedQueue::new(32, latency);
        for v in &values {
            q.push(Cycle(0), *v).unwrap();
        }
        let mut now = Cycle(0);
        let mut out = Vec::new();
        let mut guard = 0;
        while out.len() < values.len() {
            let peeked = q.ready_front(now).copied();
            let popped = q.pop_ready(now);
            prop_assert_eq!(peeked, popped, "peek/pop disagree");
            if let Some(v) = popped {
                out.push(v);
            } else {
                now += 1;
            }
            guard += 1;
            prop_assert!(guard < 10_000);
        }
        prop_assert_eq!(out, values);
    }
}
