//! Counting-allocator proof that the steady-state simulation loop is
//! allocation-free: once a kernel's wavefronts are dispatched and the
//! memory hierarchy has reached its high-water occupancy, simulating
//! further cycles must perform zero heap allocations.
//!
//! Setup (system construction, work-group dispatch, first-touch pool
//! growth) is explicitly excluded: the window opens only after a warmup
//! long enough for every arena, queue, and pool to reach capacity.

// Compiled only with `--features count-allocs`: the test installs a
// global counting allocator, which default test binaries should not
// carry.
#![cfg(feature = "count-allocs")]

use miopt::{ApuSystem, CachePolicy, PolicyConfig, SystemConfig};
use miopt_engine::Addr;
use miopt_gpu::{AccessCtx, AddrGen, KernelDesc, KernelProgram, Op};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::Arc;

/// System allocator wrapper reporting every allocation into
/// `miopt_engine::alloc_track` (same idiom as the `sim_throughput`
/// bench).
struct CountingAlloc;

// SAFETY: defers entirely to the system allocator; the wrapper only adds
// a side-effect-free counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        miopt_engine::alloc_track::note_alloc();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        miopt_engine::alloc_track::note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        miopt_engine::alloc_track::note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// A long-running streaming kernel sized so every work-group dispatches
/// at launch (work-group dispatch allocates `Wavefront` state and is a
/// kernel-*boundary* cost, excluded from the steady-state claim).
fn streaming_kernel(wgs: u32, wfs_per_wg: u32, iters: u32) -> Arc<KernelDesc> {
    let gen: Arc<dyn AddrGen> = Arc::new(|ctx: &AccessCtx| {
        // Each wavefront streams its own region, with the region stride
        // placed so wavefronts spread across DRAM banks (line-address
        // layout `| channel | column | bank | row |`): stride 2^15 bytes
        // = 2^9 lines puts consecutive wavefronts in distinct banks.
        // Loads and stores live in disjoint row halves; iterations wrap
        // so the footprint stays bounded while dwarfing the L2.
        let wf_global = u64::from(ctx.wg) * 16 + u64::from(ctx.wf);
        let base = wf_global << 15;
        let half = u64::from(ctx.pattern) << 29;
        let off = u64::from(ctx.iter % 32) * 256 + u64::from(ctx.lane) * 4;
        Some(Addr(base + half + off))
    });
    Arc::new(KernelDesc {
        name: "zero-alloc-stream".to_string(),
        template_id: 0,
        wgs,
        wfs_per_wg,
        program: KernelProgram::new(
            vec![
                Op::Valu { count: 4 },
                Op::Load { pattern: 0 },
                Op::WaitCnt { max: 0 },
                Op::Store { pattern: 1 },
            ],
            iters,
        ),
        gen,
    })
}

#[test]
fn steady_state_cycles_allocate_nothing() {
    miopt_engine::alloc_track::set_installed();
    // Prove the wiring before relying on a zero: an intentional heap
    // allocation must be observed, or the assertion below is vacuous.
    let before = miopt_engine::alloc_track::count();
    let probe = Box::new([0u8; 64]);
    assert!(
        miopt_engine::alloc_track::count() > before,
        "counting allocator not wired up"
    );
    drop(probe);

    let cfg = SystemConfig::paper_table1();
    let mut sys = ApuSystem::new_idle(cfg, PolicyConfig::of(CachePolicy::CacheRW));
    // 64 work-groups x 4 wavefronts give every CU a work-group in the
    // launch cycle at moderate occupancy (an all-miss streaming kernel
    // at full occupancy thrashes the write-allocate L1 into a crawl);
    // the iteration count keeps the kernel running far past the window.
    sys.enqueue_kernel(streaming_kernel(64, 4, 50_000), 0);

    // Warmup: launch overhead, dispatch, and every first-touch growth
    // (MSHR pools, DBI row vectors, replay queues) reaching high water.
    const WARMUP: u64 = 60_000;
    const WINDOW: u64 = 4_000;
    for _ in 0..WARMUP {
        sys.step();
    }
    assert!(!sys.is_done(), "kernel must outlast the measurement window");
    let requests_before = sys.metrics().gpu.memory_requests();

    let allocs_before = miopt_engine::alloc_track::count();
    for _ in 0..WINDOW {
        sys.step();
    }
    let allocs = miopt_engine::alloc_track::count() - allocs_before;

    assert!(!sys.is_done(), "window must end mid-kernel");
    let requests = sys.metrics().gpu.memory_requests() - requests_before;
    assert!(
        requests > 1_000,
        "window must carry real traffic (saw {requests} requests)"
    );
    assert_eq!(
        allocs, 0,
        "steady-state cycles must not allocate: {allocs} allocations \
         over {WINDOW} cycles ({requests} memory requests)"
    );
}
