//! Asserts the default system configuration reproduces the paper's
//! Table 1 parameters exactly.

use miopt::SystemConfig;

#[test]
fn table1_gpu_parameters() {
    let c = SystemConfig::paper_table1();
    assert!((c.gpu_clock_hz - 1.6e9).abs() < 1.0, "GPU clock 1600 MHz");
    assert_eq!(c.n_cus, 64, "# of CUs");
    assert_eq!(c.cu.simds, 4, "# SIMD units per CU");
    assert_eq!(c.cu.wf_slots_per_simd, 10, "max wavefronts per SIMD");
}

#[test]
fn table1_l1_cache() {
    let c = SystemConfig::paper_table1();
    assert_eq!(c.l1.bytes(), 16 * 1024, "16 KB L1 per CU");
    assert_eq!(c.l1.ways, 16, "16-way L1");
    assert_eq!(miopt_engine::LINE_BYTES, 64, "64 B lines");
}

#[test]
fn table1_l2_cache() {
    let c = SystemConfig::paper_table1();
    assert_eq!(
        c.l2.bytes() * c.l2_slices as u64,
        4 * 1024 * 1024,
        "4 MB L2 per 64 CUs"
    );
    assert_eq!(c.l2.ways, 16, "16-way L2");
}

#[test]
fn table1_main_memory() {
    let c = SystemConfig::paper_table1();
    assert_eq!(c.dram.channels, 16, "16 channels");
    assert_eq!(c.dram.banks, 16, "16 banks per channel");
    // 512 GB/s nominal bandwidth, within 10%.
    let bw = f64::from(c.dram.channels) * 64.0 * c.gpu_clock_hz / c.dram.t_burst as f64 / 1e9;
    assert!((460.0..570.0).contains(&bw), "bandwidth {bw} GB/s");
}

#[test]
fn table1_uncontested_latencies() {
    // Approximate uncontested L1/L2/Memory latencies: 50/125/225 cycles.
    // Measure the round trip of a single dependent load through an
    // otherwise idle system at each hierarchy level.
    use miopt::{ApuSystem, CachePolicy, PolicyConfig};
    use miopt_engine::Addr;
    use miopt_gpu::{AccessCtx, KernelDesc, KernelProgram, Op};
    use miopt_workloads::{Category, Workload};
    use std::sync::Arc;

    // A single wavefront issuing N fully dependent broadcast loads:
    // per-load latency = round trip to wherever the data lives. Pattern 0
    // hammers one line (hits in the L1 once cached); pattern 1 strides a
    // fresh DRAM bank every iteration (activate + CAS on every access).
    let make = |n_iters: u32, fresh_rows: bool| {
        let kernel = Arc::new(KernelDesc {
            name: "latency_probe".to_string(),
            template_id: 901,
            wgs: 1,
            wfs_per_wg: 1,
            program: KernelProgram::new(
                vec![Op::Load { pattern: 0 }, Op::WaitCnt { max: 0 }],
                n_iters,
            ),
            gen: Arc::new(move |ctx: &AccessCtx| {
                if fresh_rows {
                    Some(Addr(u64::from(ctx.iter) * 2048 * 16))
                } else {
                    Some(Addr(0))
                }
            }),
        });
        Workload {
            name: "latency".to_string(),
            category: Category::ReuseSensitive,
            launches: vec![kernel],
            footprint: 64,
        }
    };

    let mut cfg = SystemConfig::paper_table1();
    cfg.launch_overhead = 0;
    let run = |policy, iters, fresh| {
        let mut sys = ApuSystem::new(cfg.clone(), PolicyConfig::of(policy), &make(iters, fresh));
        sys.run_to_completion(10_000_000).unwrap().cycles
    };

    // Per-load marginal latency between 8 and 40 iterations isolates the
    // steady-state round trip from startup/drain overheads.
    let per_load = |policy, fresh| (run(policy, 40, fresh) - run(policy, 8, fresh)) as f64 / 32.0;

    let l1 = per_load(CachePolicy::CacheR, false); // hits in L1 after first load
    let mem = per_load(CachePolicy::Uncached, true); // fresh DRAM row every load
    assert!(
        (35.0..70.0).contains(&l1),
        "L1 hit latency ~50 cycles, measured {l1:.1}"
    );
    assert!(
        (180.0..280.0).contains(&mem),
        "memory latency ~225 cycles, measured {mem:.1}"
    );
    assert!(mem > l1 * 2.5, "hierarchy levels must be distinct");
}
