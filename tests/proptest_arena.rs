//! Property-based tests on the engine's `Arena`/`HandleFifo` pair against
//! a `Vec`/`VecDeque` reference model: arbitrary insert/remove/push/pop
//! interleavings preserve FIFO order, conserve elements, and reuse freed
//! slots instead of growing.

// Compiled only with `--features proptest-tests` (requires the external
// `proptest`/`rand` dev-dependencies, unavailable offline).
#![cfg(feature = "proptest-tests")]

use miopt_engine::{Arena, Handle, HandleFifo};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum Step {
    /// Insert a standalone value (not queued), removed again later.
    Insert(u32),
    /// Remove the oldest standalone value.
    Remove,
    /// Insert a value and push its handle onto the FIFO's tail.
    PushBack(u32),
    /// Pop the FIFO's head handle and remove its value from the arena.
    PopFront,
    /// Pop the FIFO's head directly as a value.
    PopValue,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u32..1000).prop_map(Step::Insert),
        Just(Step::Remove),
        (0u32..1000).prop_map(Step::PushBack),
        Just(Step::PopFront),
        Just(Step::PopValue),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The arena + intrusive FIFO behave exactly like a `VecDeque` of
    /// values, and the slab never holds more slots than the peak live
    /// count (free-list reuse, no growth in steady state).
    #[test]
    fn fifo_matches_vecdeque_model(steps in prop::collection::vec(step_strategy(), 1..300)) {
        let mut arena: Arena<u32> = Arena::new();
        let mut fifo = HandleFifo::new();
        // Standalone (non-queued) live handles, oldest first.
        let mut loose: VecDeque<(Handle, u32)> = VecDeque::new();
        // Reference model of the FIFO's contents.
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut peak_live = 0usize;

        for step in steps {
            match step {
                Step::Insert(v) => {
                    let h = arena.insert(v);
                    loose.push_back((h, v));
                }
                Step::Remove => {
                    if let Some((h, v)) = loose.pop_front() {
                        prop_assert_eq!(arena.remove(h), v, "removed value round-trips");
                    }
                }
                Step::PushBack(v) => {
                    let h = arena.insert(v);
                    fifo.push_back(&mut arena, h);
                    model.push_back(v);
                }
                Step::PopFront => {
                    match fifo.pop_front(&mut arena) {
                        Some(h) => {
                            let want = model.pop_front().expect("model agrees FIFO is non-empty");
                            prop_assert_eq!(arena.remove(h), want, "head handle holds model head");
                        }
                        None => prop_assert!(model.is_empty(), "empty FIFO matches empty model"),
                    }
                }
                Step::PopValue => {
                    prop_assert_eq!(fifo.pop_value(&mut arena), model.pop_front(),
                        "FIFO pops in model order");
                }
            }
            let live = loose.len() + model.len();
            peak_live = peak_live.max(live);
            prop_assert_eq!(arena.len(), live, "arena tracks live count");
            prop_assert_eq!(fifo.len(), model.len(), "FIFO tracks queue length");
            prop_assert_eq!(fifo.is_empty(), model.is_empty());
            prop_assert!(arena.capacity() <= peak_live,
                "slab reuses freed slots instead of growing: {} slots > {} peak live",
                arena.capacity(), peak_live);
            if let Some(&want) = model.front() {
                let head = fifo.front(&arena).expect("non-empty FIFO has a head");
                prop_assert_eq!(*arena.get(head), want, "front peeks the model head");
            }
            // Iteration observes the whole queue in order without
            // consuming it.
            let seen: Vec<u32> = fifo.iter(&arena).copied().collect();
            let want: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(seen, want, "iter matches model order");
        }

        // Drain everything; the arena must come back to empty.
        while let Some(v) = fifo.pop_value(&mut arena) {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        for (h, v) in loose.drain(..) {
            prop_assert_eq!(arena.remove(h), v);
        }
        prop_assert_eq!(arena.len(), 0);
        prop_assert!(fifo.is_empty());
    }
}

/// Debug builds reject stale handles via the generation check; the slot
/// may meanwhile have been reused by a fresh insert.
#[cfg(debug_assertions)]
mod stale_handles {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn stale_handle_panics_in_debug(v in 0u32..1000, reinsert in proptest::bool::ANY) {
            let mut arena: Arena<u32> = Arena::new();
            let h = arena.insert(v);
            arena.remove(h);
            if reinsert {
                // Reuses the freed slot but bumps the generation, so the
                // old handle must still be rejected.
                let _ = arena.insert(v.wrapping_add(1));
            }
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = arena.get(h);
            }));
            prop_assert!(caught.is_err(), "stale handle access must panic in debug builds");
        }
    }
}
