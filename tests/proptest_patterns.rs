//! Property-based tests on workload address patterns and the coalescer:
//! generated addresses stay inside their regions, and coalescing never
//! produces more requests than active lanes.

// Compiled only with `--features proptest-tests` (requires the external
// `proptest`/`rand` dev-dependencies, unavailable offline).
#![cfg(feature = "proptest-tests")]

use miopt_engine::LINE_BYTES;
use miopt_gpu::{coalesce, AccessCtx, AddrGen};
use miopt_workloads::patterns::{LayerGen, PatternKind, PatternSpec, Region};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = PatternKind> {
    prop_oneof![
        Just(PatternKind::Stream),
        (1u64..1 << 16).prop_map(|lag_bytes| PatternKind::LaggedStream { lag_bytes }),
        (1u32..8).prop_map(|times| PatternKind::Revisit { times }),
        ((1u64..1 << 14), (0u32..8))
            .prop_map(|(plane_bytes, plane)| PatternKind::Planes { plane_bytes, plane }),
        (1u64..1 << 14).prop_map(|phase_bytes| PatternKind::SharedSweep { phase_bytes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn addresses_stay_in_region(
        kind in kind_strategy(),
        region_kb in 1u64..256,
        elem_bytes in prop::sample::select(vec![4u32, 8, 16]),
        wg in 0u32..1000,
        wf in 0u32..4,
        lane in 0u32..64,
        iter in 0u32..64,
        seq in 0u32..400,
        seq_stride in 0u64..8192,
    ) {
        let region = Region::new(4096, region_kb * 1024);
        let gen = LayerGen::new(
            vec![PatternSpec { region, elem_bytes, kind, seq_stride_bytes: seq_stride }],
            4,
            64,
        );
        let ctx = AccessCtx { kernel_seq: seq, wg, wf, lane, iter, pattern: 0 };
        let addr = gen.lane_addr(&ctx).expect("patterns are always active");
        prop_assert!(addr.0 >= region.base);
        prop_assert!(addr.0 < region.base + region.bytes);
    }

    #[test]
    fn dense_lanes_coalesce_tightly(
        base in 0u64..1 << 30,
        elem_bytes in prop::sample::select(vec![4u64, 8, 16]),
    ) {
        // 64 dense lanes of elem_bytes each touch exactly
        // 64 * elem_bytes / 64 lines when base is line-aligned.
        let aligned = base / LINE_BYTES * LINE_BYTES;
        let lines = coalesce((0..64u64).map(|l| Some(miopt_engine::Addr(aligned + l * elem_bytes))));
        prop_assert_eq!(lines.len() as u64, 64 * elem_bytes / LINE_BYTES);
    }

    #[test]
    fn coalesced_count_bounded_by_active_lanes(
        addrs in prop::collection::vec(prop::option::of(0u64..1 << 24), 64),
    ) {
        let active = addrs.iter().filter(|a| a.is_some()).count();
        let lines = coalesce(addrs.into_iter().map(|a| a.map(miopt_engine::Addr)));
        prop_assert!(lines.len() <= active);
        // No duplicate lines.
        let mut sorted: Vec<_> = lines.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), lines.len());
    }

    #[test]
    fn revisit_touches_each_position_times_times(
        times in 1u32..6,
    ) {
        let region = Region::new(0, 1 << 20);
        let iters = times * 8;
        let gen = LayerGen::new(
            vec![PatternSpec {
                region,
                elem_bytes: 4,
                kind: PatternKind::Revisit { times },
                seq_stride_bytes: 0,
            }],
            1,
            iters,
        );
        let mut positions = Vec::new();
        for iter in 0..iters {
            let ctx = AccessCtx { kernel_seq: 0, wg: 0, wf: 0, lane: 0, iter, pattern: 0 };
            positions.push(gen.lane_addr(&ctx).unwrap().0);
        }
        for chunk in positions.chunks(times as usize) {
            prop_assert!(chunk.iter().all(|p| *p == chunk[0]), "chunk not constant: {chunk:?}");
        }
    }
}
