//! Property-based tests on the cache model: for arbitrary request
//! sequences and policies, the cache must answer every load exactly once,
//! never lose a store, and keep its statistics consistent.

// Compiled only with `--features proptest-tests` (requires the external
// `proptest`/`rand` dev-dependencies, unavailable offline).
#![cfg(feature = "proptest-tests")]

use miopt_cache::{Blocked, CacheConfig, CacheUnit, LevelPolicy, Outcome, PredictorConfig, RowMap};
use miopt_engine::{AccessKind, Cycle, LineAddr, MemReq, MemResp, Origin, Pc, ReqId, TimedQueue};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Req {
    line: u64,
    is_store: bool,
    pc: u32,
}

fn req_strategy(lines: u64) -> impl Strategy<Value = Req> {
    (0..lines, any::<bool>(), 0u32..8).prop_map(|(line, is_store, pc)| Req { line, is_store, pc })
}

fn policy_strategy() -> impl Strategy<Value = LevelPolicy> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(enabled, stores, ab, rinse, pcby)| LevelPolicy {
            enabled,
            cache_loads: enabled,
            cache_stores: enabled && stores,
            allocation_bypass: ab,
            rinse: enabled && stores && rinse,
            pc_bypass: pcby.then(PredictorConfig::paper),
            row_map: (enabled && stores && rinse).then(|| RowMap::new(1, 2)),
            partition: None,
        })
}

/// Drives a request sequence through a cache with an "ideal memory" below
/// it (every forwarded load is answered after a fixed delay), and checks
/// end-to-end invariants.
fn drive(policy: LevelPolicy, reqs: Vec<Req>) {
    let mut cache = CacheUnit::new(CacheConfig::tiny_test(), policy, 0);
    let mut down: TimedQueue<MemReq> = TimedQueue::new(16, 1);
    let mut up: TimedQueue<MemResp> = TimedQueue::new(16, 1);
    let mut memory: Vec<(Cycle, MemResp)> = Vec::new(); // pending "DRAM" responses
    let mut outstanding: HashMap<u64, u64> = HashMap::new(); // load id -> count
    let mut answered: HashMap<u64, u64> = HashMap::new();
    let mut loads_issued = 0u64;

    let mut pending: std::collections::VecDeque<(u64, Req)> = reqs
        .into_iter()
        .enumerate()
        .map(|(i, r)| (i as u64, r))
        .collect();
    let mut now = Cycle(0);
    let mut idle_cycles = 0;
    loop {
        // Feed one request per cycle if the cache accepts it.
        if let Some((id, r)) = pending.front().cloned() {
            let mem_req = MemReq {
                id: ReqId(id),
                line: LineAddr(r.line),
                is_store: r.is_store,
                kind: AccessKind::Cached,
                pc: Pc(r.pc),
                origin: Origin::Wavefront { cu: 0, slot: 0 },
                issue_cycle: now,
            };
            match cache.access(now, mem_req, &mut down, &mut up) {
                Ok(outcome) => {
                    pending.pop_front();
                    if !r.is_store {
                        loads_issued += 1;
                        *outstanding.entry(id).or_default() += 1;
                    }
                    // Hits answer immediately via `up`; everything else via
                    // fills or silently (stores).
                    match outcome {
                        Outcome::Hit
                        | Outcome::Merged
                        | Outcome::MissForwarded
                        | Outcome::BypassForwarded
                        | Outcome::StoreAbsorbed
                        | Outcome::StoreForwarded => {}
                    }
                }
                Err(
                    Blocked::MshrFull
                    | Blocked::SetBusy
                    | Blocked::MergeFull
                    | Blocked::OutQueueFull
                    | Blocked::RespQueueFull
                    | Blocked::PortBusy,
                ) => {}
            }
        }

        // "DRAM": consume forwarded requests, schedule responses for loads.
        while let Some(fwd) = down.pop_ready(now) {
            if fwd.wants_response() {
                memory.push((now + 20, MemResp::for_req(&fwd)));
            }
        }
        // Deliver due memory responses as fills (up may be full: retry
        // next cycle).
        let mut i = 0;
        while i < memory.len() {
            if memory[i].0 <= now {
                let (_, resp) = memory[i];
                if cache.fill(now, resp, &mut up).is_ok() {
                    memory.swap_remove(i);
                    continue;
                }
            }
            i += 1;
        }
        // Collect answers.
        while let Some(resp) = up.pop_ready(now) {
            *answered.entry(resp.id.0).or_default() += 1;
        }

        let done = pending.is_empty()
            && memory.is_empty()
            && !cache.busy()
            && down.is_empty()
            && up.is_empty();
        if done {
            idle_cycles += 1;
            if idle_cycles > 64 {
                break;
            }
        } else {
            idle_cycles = 0;
        }
        now += 1;
        assert!(now.0 < 1_000_000, "cache test did not converge");
    }

    // Every load answered exactly once.
    assert_eq!(answered.len() as u64, loads_issued, "missing/extra answers");
    for (id, n) in &answered {
        assert_eq!(*n, 1, "load {id} answered {n} times");
        assert!(outstanding.contains_key(id));
    }
    // Stats consistency.
    let s = cache.stats();
    let load_events =
        s.load_hits.get() + s.load_merges.get() + s.load_misses.get() + s.load_bypasses.get();
    assert_eq!(load_events, loads_issued, "load accounting");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_loads_answered_exactly_once(
        policy in policy_strategy(),
        reqs in prop::collection::vec(req_strategy(32), 1..200),
    ) {
        drive(policy, reqs);
    }

    #[test]
    fn hot_set_conflicts_never_lose_requests(
        policy in policy_strategy(),
        // All lines map to set 0 of the 4-set tiny cache: maximal
        // allocation blocking.
        reqs in prop::collection::vec(
            (0u64..8, any::<bool>()).prop_map(|(l, s)| Req { line: l * 4, is_store: s, pc: 1 }),
            1..150,
        ),
    ) {
        drive(policy, reqs);
    }

    #[test]
    fn single_line_hammering_is_stable(
        policy in policy_strategy(),
        stores in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let reqs = stores
            .into_iter()
            .map(|is_store| Req { line: 7, is_store, pc: 2 })
            .collect();
        drive(policy, reqs);
    }
}
