//! Property-based tests on the engine's `EventWheel` calendar queue,
//! differenced against an ordered-map reference model (`BTreeMap` keyed by
//! cycle, one id-bitmask per cycle — the semantics a `BinaryHeap` of
//! `(cycle, id)` pairs with same-cycle batching would give): insert, pop,
//! reschedule-by-insert, cancel, same-cycle ascending-id batching, ring
//! rotation across the 4096-slot window boundary, and the far-future
//! overflow path.

// Compiled only with `--features proptest-tests` (requires the external
// `proptest`/`rand` dev-dependencies, unavailable offline).
#![cfg(feature = "proptest-tests")]

use miopt_engine::{Cycle, EventWheel};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Step {
    /// Insert id at `base + offset` — offsets beyond the 4096-cycle
    /// window exercise the overflow map.
    Insert { id: u8, offset: u64 },
    /// Cancel id at `base + offset` (whether or not it is pending).
    Cancel { id: u8, offset: u64 },
    /// Pop the earliest cycle's whole batch.
    Pop,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // Offsets cluster near the window edge (4096) and reach far past it,
    // so bucket rotation and overflow-drain interleave with dense
    // near-term traffic.
    let offset = prop_oneof![
        4 => 0u64..64,
        2 => 4000u64..4200,
        1 => 8000u64..20000,
    ];
    prop_oneof![
        6 => (0u8..64, offset.clone()).prop_map(|(id, offset)| Step::Insert { id, offset }),
        1 => (0u8..64, offset).prop_map(|(id, offset)| Step::Cancel { id, offset }),
        3 => Just(Step::Pop),
    ]
}

/// Reference model: an ordered map from cycle to id-bitmask. Popping
/// takes the whole earliest batch, exactly the wheel's contract.
#[derive(Default)]
struct Model {
    pending: BTreeMap<u64, u64>,
    base: u64,
}

impl Model {
    fn insert(&mut self, at: u64, id: u8) {
        let at = at.max(self.base);
        *self.pending.entry(at).or_insert(0) |= 1u64 << id;
    }

    fn cancel(&mut self, at: u64, id: u8) {
        if let Some(mask) = self.pending.get_mut(&at) {
            *mask &= !(1u64 << id);
            if *mask == 0 {
                self.pending.remove(&at);
            }
        }
    }

    fn pop_next(&mut self) -> Option<(u64, u64)> {
        let (&at, &mask) = self.pending.iter().next()?;
        self.pending.remove(&at);
        self.base = at + 1;
        Some((at, mask))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wheel_matches_the_ordered_map_reference(
        start in 0u64..100_000,
        steps in prop::collection::vec(step_strategy(), 1..400),
    ) {
        let mut wheel = EventWheel::new();
        wheel.reset(Cycle(start));
        let mut model = Model { pending: BTreeMap::new(), base: start };

        for step in steps {
            match step {
                Step::Insert { id, offset } => {
                    let at = model.base + offset;
                    wheel.insert(Cycle(at), id);
                    model.insert(at, id);
                }
                Step::Cancel { id, offset } => {
                    let at = model.base + offset;
                    wheel.cancel(Cycle(at), id);
                    model.cancel(at, id);
                }
                Step::Pop => {
                    let got = wheel.pop_next();
                    let want = model.pop_next();
                    prop_assert_eq!(
                        got,
                        want.map(|(at, mask)| (Cycle(at), mask)),
                        "pop diverged from the reference model"
                    );
                }
            }
            prop_assert_eq!(wheel.next_cycle(),
                model.pending.keys().next().map(|&c| Cycle(c)),
                "peek diverged from the reference model");
            prop_assert_eq!(wheel.is_empty(), model.pending.is_empty());
        }

        // Drain both to empty: every remaining batch must match, in
        // ascending cycle order with same-cycle ids batched together.
        loop {
            let got = wheel.pop_next();
            let want = model.pop_next().map(|(at, mask)| (Cycle(at), mask));
            prop_assert_eq!(got, want, "drain diverged");
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn insert_is_idempotent_and_pop_batches_ascending_ids(
        start in 0u64..10_000,
        ids in prop::collection::vec(0u8..64, 1..32),
        offset in 0u64..6000,
    ) {
        // All ids land on one cycle (duplicates included); one pop must
        // return the whole batch as a mask, then the wheel is empty.
        let mut wheel = EventWheel::new();
        wheel.reset(Cycle(start));
        let at = Cycle(start + offset);
        let mut mask = 0u64;
        for &id in &ids {
            wheel.insert(at, id);
            wheel.insert(at, id); // duplicate: must be a no-op
            mask |= 1u64 << id;
        }
        prop_assert_eq!(wheel.pop_next(), Some((at, mask)));
        prop_assert_eq!(wheel.pop_next(), None);
        prop_assert!(wheel.is_empty());
    }

    #[test]
    fn base_only_moves_forward_across_any_op_sequence(
        start in 0u64..10_000,
        steps in prop::collection::vec(step_strategy(), 1..200),
    ) {
        let mut wheel = EventWheel::new();
        wheel.reset(Cycle(start));
        let mut floor = Cycle(start);
        for step in steps {
            match step {
                Step::Insert { id, offset } => wheel.insert(wheel.base() + offset, id),
                Step::Cancel { id, offset } => wheel.cancel(wheel.base() + offset, id),
                Step::Pop => {
                    if let Some((at, _)) = wheel.pop_next() {
                        prop_assert!(at >= floor, "pop went backwards in time");
                        floor = at + 1;
                    }
                }
            }
            prop_assert!(wheel.base() >= floor.max(Cycle(start)));
        }
    }
}
