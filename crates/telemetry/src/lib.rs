//! Deterministic, phase-resolved telemetry for the `miopt` simulator.
//!
//! End-of-run [`Metrics`] answer *what* a cache policy did to a workload;
//! this crate answers *when*. It provides three pieces:
//!
//! * [`StatSnapshot`] — a trait implemented by every per-component stats
//!   struct (cache, DRAM, GPU, NoC) exposing its counters as
//!   `(&'static str, u64)` pairs. Combined with a scope prefix this
//!   yields one flat, dotted stat-name registry (`l2.load_hits`,
//!   `dram.row_conflicts`, …) shared by telemetry, the results schema
//!   and the result cache.
//! * [`Recorder`] — an epoch sampler. The simulator assembles a
//!   [`Frame`] of all counters every `interval` cycles; the recorder
//!   turns consecutive frames into per-epoch *deltas* and also records
//!   phase [`Span`]s (launch / run / flush …) and discrete
//!   [`EventInstant`]s (kernel launches, self-invalidations).
//! * [`TelemetryRun`] — the finished, immutable time series handed back
//!   to callers and serialized by `miopt-harness` as JSONL and Chrome
//!   `trace_event` JSON.
//!
//! Everything here is plain data and integer arithmetic: recording the
//! same simulation twice — on any number of harness workers — produces
//! byte-identical output.
//!
//! [`Metrics`]: https://docs.rs/miopt
//!
//! # Examples
//!
//! ```
//! use miopt_telemetry::{Frame, Recorder};
//!
//! let mut rec = Recorder::new(100);
//! rec.enter_phase("run", 0);
//!
//! let mut f = Frame::new();
//! f.record_value("gpu.valu_lane_ops", 640);
//! rec.record_frame(100, f);
//!
//! let mut f = Frame::new();
//! f.record_value("gpu.valu_lane_ops", 1000);
//! rec.record_frame(200, f);
//!
//! let run = rec.into_run(200);
//! assert_eq!(run.epochs.len(), 2);
//! assert_eq!(run.delta(0, "gpu.valu_lane_ops"), Some(640));
//! assert_eq!(run.delta(1, "gpu.valu_lane_ops"), Some(360));
//! assert_eq!(run.total_of("gpu.valu_lane_ops"), Some(1000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The engine crate anchors the workspace's `Cycle` conventions; telemetry
// deliberately depends on nothing else so every component crate can
// implement `StatSnapshot` without forming a dependency cycle.
pub use miopt_engine::Cycle;

pub mod hist;

pub use hist::LatencyHistogram;

/// A component whose statistics can be sampled into a telemetry frame.
///
/// Implementations return every cumulative counter of the component as
/// `(name, value)` pairs. Names are bare (no scope prefix — the caller
/// supplies one via [`Frame::record`]), `snake_case`, and **stable**: the
/// pair list must have the same names in the same order on every call,
/// because the first recorded frame fixes the registry for the whole run.
pub trait StatSnapshot {
    /// Returns all counters as `(bare_name, cumulative_value)` pairs.
    fn stat_pairs(&self) -> Vec<(&'static str, u64)>;
}

/// One point-in-time sample of every registered counter.
///
/// A frame is assembled by the simulator (scope by scope) and then handed
/// to [`Recorder::record_frame`], which differences it against the
/// previous frame to produce an [`Epoch`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frame {
    names: Vec<String>,
    values: Vec<u64>,
}

impl Frame {
    /// Creates an empty frame.
    pub fn new() -> Frame {
        Frame::default()
    }

    /// Appends every counter of `stats` under `scope` (as `scope.name`).
    pub fn record(&mut self, scope: &str, stats: &dyn StatSnapshot) {
        for (name, value) in stats.stat_pairs() {
            self.names.push(format!("{scope}.{name}"));
            self.values.push(value);
        }
    }

    /// Appends a single pre-scoped counter.
    pub fn record_value(&mut self, name: impl Into<String>, value: u64) {
        self.names.push(name.into());
        self.values.push(value);
    }

    /// Number of counters recorded so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the frame holds no counters.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Per-interval counter deltas between two consecutive frames.
///
/// `deltas[i]` is the increase of the counter named
/// `TelemetryRun::names[i]` over `[start_cycle, end_cycle)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Epoch {
    /// First cycle covered by this epoch (inclusive).
    pub start_cycle: u64,
    /// Last cycle covered by this epoch (exclusive).
    pub end_cycle: u64,
    /// Counter increases over the epoch, indexed like `TelemetryRun::names`.
    pub deltas: Vec<u64>,
}

impl Epoch {
    /// Number of cycles the epoch covers.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// A named half-open interval of cycles — one simulator phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase name (`launch`, `run`, `drain_kernel`, `flush`, …).
    pub name: String,
    /// Cycle the phase was entered.
    pub start_cycle: u64,
    /// Cycle the phase was left.
    pub end_cycle: u64,
}

/// A discrete event pinned to a single cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventInstant {
    /// Event name (`kernel:gemm#3`, `self_invalidate`, …).
    pub name: String,
    /// Cycle at which the event fired.
    pub cycle: u64,
}

/// The finished time series of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryRun {
    /// Sampling interval in cycles the run was recorded with.
    pub interval: u64,
    /// The stat-name registry: dotted names, fixed by the first frame.
    pub names: Vec<String>,
    /// Per-interval counter deltas, in cycle order.
    pub epochs: Vec<Epoch>,
    /// Simulator phases, in cycle order.
    pub spans: Vec<Span>,
    /// Discrete events, in cycle order.
    pub instants: Vec<EventInstant>,
}

impl TelemetryRun {
    /// Index of `name` in the registry, if registered.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Delta of counter `name` in epoch `epoch`.
    pub fn delta(&self, epoch: usize, name: &str) -> Option<u64> {
        let idx = self.index_of(name)?;
        self.epochs.get(epoch).map(|e| e.deltas[idx])
    }

    /// Sum of every epoch's deltas — the cumulative counter values at the
    /// end of the run, indexed like [`TelemetryRun::names`].
    pub fn totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.names.len()];
        for epoch in &self.epochs {
            for (total, delta) in totals.iter_mut().zip(&epoch.deltas) {
                *total += delta;
            }
        }
        totals
    }

    /// Cumulative end-of-run value of counter `name`.
    pub fn total_of(&self, name: &str) -> Option<u64> {
        let idx = self.index_of(name)?;
        Some(self.totals()[idx])
    }
}

/// Collects frames, phases and instants during a run.
///
/// The recorder is deliberately passive: the *simulator* decides when a
/// sample is due (via [`Recorder::due`]) and what goes into the frame, so
/// recording never perturbs simulated behaviour.
#[derive(Debug, Clone)]
pub struct Recorder {
    interval: u64,
    names: Vec<String>,
    prev: Vec<u64>,
    epochs: Vec<Epoch>,
    epoch_start: u64,
    spans: Vec<Span>,
    open_span: Option<(String, u64)>,
    instants: Vec<EventInstant>,
}

impl Recorder {
    /// Creates a recorder sampling every `interval` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero; validated front ends (`RunOptions`
    /// in `miopt`) reject that before constructing a recorder.
    pub fn new(interval: u64) -> Recorder {
        assert!(interval > 0, "telemetry interval must be at least 1 cycle");
        Recorder {
            interval,
            names: Vec::new(),
            prev: Vec::new(),
            epochs: Vec::new(),
            epoch_start: 0,
            spans: Vec::new(),
            open_span: None,
            instants: Vec::new(),
        }
    }

    /// The sampling interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Whether a frame should be recorded at `cycle`.
    pub fn due(&self, cycle: u64) -> bool {
        cycle > 0 && cycle.is_multiple_of(self.interval)
    }

    /// The first cycle strictly after `cycle` at which a frame is due —
    /// the event core schedules its sampling wakeups with this, and the
    /// idle-clock warp lands one cycle short of it.
    #[must_use]
    pub fn next_due(&self, cycle: u64) -> u64 {
        (cycle / self.interval + 1) * self.interval
    }

    /// Closes the epoch ending at `end_cycle` with the counters in
    /// `frame`.
    ///
    /// The first frame fixes the stat-name registry; every later frame
    /// must present the same names in the same order. Frames that do not
    /// advance the clock past the previous sample are ignored (this lets
    /// callers unconditionally flush a final frame).
    ///
    /// # Panics
    ///
    /// Panics if the frame's registry diverges from the first frame's, or
    /// if any counter decreased — both indicate simulator bugs, not user
    /// error.
    pub fn record_frame(&mut self, end_cycle: u64, frame: Frame) {
        if end_cycle <= self.epoch_start {
            return;
        }
        if self.epochs.is_empty() && self.names.is_empty() {
            self.prev = vec![0; frame.names.len()];
            self.names = frame.names;
        } else {
            assert_eq!(
                self.names, frame.names,
                "telemetry frame registry changed mid-run"
            );
        }
        let deltas: Vec<u64> = frame
            .values
            .iter()
            .zip(&self.prev)
            .zip(&self.names)
            .map(|((&now, &before), name)| {
                now.checked_sub(before)
                    .unwrap_or_else(|| panic!("counter {name} decreased ({before} -> {now})"))
            })
            .collect();
        self.epochs.push(Epoch {
            start_cycle: self.epoch_start,
            end_cycle,
            deltas,
        });
        self.prev = frame.values;
        self.epoch_start = end_cycle;
    }

    /// Whether a first frame has fixed the stat-name registry.
    pub fn registry_fixed(&self) -> bool {
        !self.names.is_empty()
    }

    /// Closes the epoch ending at `end_cycle` from a value-only sample
    /// laid out like the fixed registry.
    ///
    /// Equivalent to [`Recorder::record_frame`] with a frame carrying the
    /// registry's names, but allocation-free: steady-state sampling reuses
    /// one caller-owned scratch buffer instead of re-deriving every dotted
    /// name. Samples that do not advance the clock are ignored, as in
    /// `record_frame`.
    ///
    /// # Panics
    ///
    /// Panics if no frame has fixed the registry yet
    /// ([`Recorder::registry_fixed`]), if `values` has a different length
    /// than the registry, or if any counter decreased.
    pub fn record_values(&mut self, end_cycle: u64, values: &[u64]) {
        if end_cycle <= self.epoch_start {
            return;
        }
        assert!(
            self.registry_fixed(),
            "record_values before a first frame fixed the registry"
        );
        assert_eq!(
            values.len(),
            self.names.len(),
            "telemetry frame registry changed mid-run"
        );
        let deltas: Vec<u64> = values
            .iter()
            .zip(&self.prev)
            .zip(&self.names)
            .map(|((&now, &before), name)| {
                now.checked_sub(before)
                    .unwrap_or_else(|| panic!("counter {name} decreased ({before} -> {now})"))
            })
            .collect();
        self.epochs.push(Epoch {
            start_cycle: self.epoch_start,
            end_cycle,
            deltas,
        });
        self.prev.copy_from_slice(values);
        self.epoch_start = end_cycle;
    }

    /// Ends the open phase (if any) and starts phase `name` at `cycle`.
    pub fn enter_phase(&mut self, name: &str, cycle: u64) {
        self.end_phase(cycle);
        self.open_span = Some((name.to_string(), cycle));
    }

    /// Ends the open phase (if any) at `cycle` without starting another.
    ///
    /// Zero-length phases (entered and left in the same cycle) are
    /// dropped rather than recorded.
    pub fn end_phase(&mut self, cycle: u64) {
        if let Some((name, start_cycle)) = self.open_span.take() {
            if cycle > start_cycle {
                self.spans.push(Span {
                    name,
                    start_cycle,
                    end_cycle: cycle,
                });
            }
        }
    }

    /// Records a discrete event at `cycle`.
    pub fn instant(&mut self, name: impl Into<String>, cycle: u64) {
        self.instants.push(EventInstant {
            name: name.into(),
            cycle,
        });
    }

    /// Finishes recording at `end_cycle` and returns the immutable run.
    ///
    /// Any still-open phase is closed at `end_cycle`. The caller is
    /// expected to have flushed a final frame first (via
    /// [`Recorder::record_frame`], which ignores zero-width flushes).
    pub fn into_run(mut self, end_cycle: u64) -> TelemetryRun {
        self.end_phase(end_cycle);
        TelemetryRun {
            interval: self.interval,
            names: self.names,
            epochs: self.epochs,
            spans: self.spans,
            instants: self.instants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two(u64, u64);

    impl StatSnapshot for Two {
        fn stat_pairs(&self) -> Vec<(&'static str, u64)> {
            vec![("alpha", self.0), ("beta", self.1)]
        }
    }

    fn frame(alpha: u64, beta: u64) -> Frame {
        let mut f = Frame::new();
        f.record("t", &Two(alpha, beta));
        f
    }

    #[test]
    fn frames_scope_names_and_difference_into_epochs() {
        let mut rec = Recorder::new(10);
        rec.record_frame(10, frame(3, 100));
        rec.record_frame(20, frame(5, 100));
        let run = rec.into_run(20);
        assert_eq!(run.names, vec!["t.alpha", "t.beta"]);
        assert_eq!(run.epochs.len(), 2);
        assert_eq!(run.epochs[0].deltas, vec![3, 100]);
        assert_eq!(run.epochs[1].deltas, vec![2, 0]);
        assert_eq!(run.epochs[0].start_cycle, 0);
        assert_eq!(run.epochs[1].end_cycle, 20);
    }

    #[test]
    fn totals_reconstruct_final_counter_values() {
        let mut rec = Recorder::new(10);
        rec.record_frame(10, frame(3, 7));
        rec.record_frame(20, frame(4, 19));
        rec.record_frame(27, frame(9, 19)); // partial final epoch
        let run = rec.into_run(27);
        assert_eq!(run.totals(), vec![9, 19]);
        assert_eq!(run.total_of("t.beta"), Some(19));
        assert_eq!(run.total_of("t.gamma"), None);
        assert_eq!(run.epochs.last().unwrap().cycles(), 7);
    }

    #[test]
    fn record_values_matches_record_frame() {
        let mut by_frame = Recorder::new(10);
        by_frame.record_frame(10, frame(3, 100));
        by_frame.record_frame(20, frame(5, 100));
        by_frame.record_frame(30, frame(9, 120));

        let mut by_values = Recorder::new(10);
        assert!(!by_values.registry_fixed());
        by_values.record_frame(10, frame(3, 100)); // first frame fixes names
        assert!(by_values.registry_fixed());
        by_values.record_values(20, &[5, 100]);
        by_values.record_values(20, &[5, 100]); // zero-width: ignored
        by_values.record_values(30, &[9, 120]);

        assert_eq!(by_frame.into_run(30), by_values.into_run(30));
    }

    #[test]
    #[should_panic(expected = "before a first frame")]
    fn record_values_requires_a_fixed_registry() {
        let mut rec = Recorder::new(10);
        rec.record_values(10, &[1, 2]);
    }

    #[test]
    fn zero_width_final_flush_is_ignored() {
        let mut rec = Recorder::new(10);
        rec.record_frame(10, frame(1, 1));
        rec.record_frame(10, frame(1, 1)); // flush lands on a sample cycle
        let run = rec.into_run(10);
        assert_eq!(run.epochs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "registry changed")]
    fn registry_mismatch_panics() {
        let mut rec = Recorder::new(10);
        rec.record_frame(10, frame(1, 1));
        let mut other = Frame::new();
        other.record_value("t.alpha", 2);
        rec.record_frame(20, other);
    }

    #[test]
    #[should_panic(expected = "decreased")]
    fn non_monotonic_counter_panics() {
        let mut rec = Recorder::new(10);
        rec.record_frame(10, frame(5, 5));
        rec.record_frame(20, frame(4, 5));
    }

    #[test]
    #[should_panic(expected = "at least 1 cycle")]
    fn zero_interval_is_rejected() {
        let _ = Recorder::new(0);
    }

    #[test]
    fn due_fires_on_multiples_of_the_interval_only() {
        let rec = Recorder::new(100);
        assert!(!rec.due(0));
        assert!(!rec.due(99));
        assert!(rec.due(100));
        assert!(rec.due(200));
        assert!(!rec.due(201));
    }

    #[test]
    fn phases_close_on_transition_and_at_run_end() {
        let mut rec = Recorder::new(10);
        rec.enter_phase("launch", 0);
        rec.enter_phase("run", 4);
        rec.instant("kernel:k0#0", 4);
        rec.enter_phase("flush", 30);
        let run = rec.into_run(42);
        assert_eq!(
            run.spans,
            vec![
                Span {
                    name: "launch".into(),
                    start_cycle: 0,
                    end_cycle: 4
                },
                Span {
                    name: "run".into(),
                    start_cycle: 4,
                    end_cycle: 30
                },
                Span {
                    name: "flush".into(),
                    start_cycle: 30,
                    end_cycle: 42
                },
            ]
        );
        assert_eq!(
            run.instants,
            vec![EventInstant {
                name: "kernel:k0#0".into(),
                cycle: 4
            }]
        );
    }

    #[test]
    fn zero_length_phases_are_dropped() {
        let mut rec = Recorder::new(10);
        rec.enter_phase("launch", 5);
        rec.enter_phase("run", 5);
        let run = rec.into_run(9);
        assert_eq!(run.spans.len(), 1);
        assert_eq!(run.spans[0].name, "run");
    }
}
