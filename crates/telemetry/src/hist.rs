//! Mergeable log-bucketed latency histograms.
//!
//! Serving experiments summarize millions of per-request latencies as
//! tail quantiles (p50/p95/p99). Storing every sample would dwarf the
//! rest of a report, and storing only a handful of pre-chosen quantiles
//! would make results impossible to combine across workers. A
//! [`LatencyHistogram`] solves both: samples land in logarithmically
//! spaced buckets with a bounded relative error, the bucket layout is a
//! compile-time constant (so any two histograms merge by adding counts),
//! and merging is associative and commutative — sharded recording
//! produces byte-identical quantiles regardless of how the work was
//! split.
//!
//! The layout is the classic octave scheme: values below
//! [`SUB_BUCKETS`] are stored exactly; above that, each power-of-two
//! octave is split into [`SUB_BUCKETS`] linear sub-buckets, bounding the
//! relative quantization error by `1 / SUB_BUCKETS` (6.25%). All
//! arithmetic is on integers, so the same samples always produce the
//! same buckets and the same quantiles.

/// Sub-buckets per octave. Values below this are recorded exactly;
/// larger values are quantized to a relative precision of
/// `1 / SUB_BUCKETS`.
pub const SUB_BUCKETS: u64 = 16;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Total number of buckets needed to cover the full `u64` range.
const BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB_BUCKETS as usize;

/// A fixed-layout, mergeable histogram of `u64` samples (latencies in
/// cycles, by convention).
///
/// # Examples
///
/// ```
/// use miopt_telemetry::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for latency in [10, 20, 30, 40, 1000] {
///     h.record(latency);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.quantile(0.50), Some(30));
/// assert_eq!(h.min(), Some(10));
/// assert_eq!(h.max(), Some(1000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index a value falls into.
    ///
    /// Values below [`SUB_BUCKETS`] map to their own bucket; larger
    /// values share a bucket with at most `1 / SUB_BUCKETS` of relative
    /// spread.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        let msb = 63 - (value | 1).leading_zeros();
        if msb < SUB_BITS {
            value as usize
        } else {
            let octave = (msb - SUB_BITS + 1) as usize;
            let sub = ((value >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
            (octave << SUB_BITS) + sub
        }
    }

    /// Smallest value that maps to bucket `index` — the representative
    /// reported for quantiles landing in that bucket.
    #[must_use]
    pub fn bucket_lower_bound(index: usize) -> u64 {
        let idx = index as u64;
        if idx < SUB_BUCKETS {
            idx
        } else {
            let octave = (idx >> SUB_BITS) + SUB_BITS as u64 - 1;
            let sub = idx & (SUB_BUCKETS - 1);
            (SUB_BUCKETS + sub) << (octave - SUB_BITS as u64)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    ///
    /// Merging is associative and commutative: any grouping of the same
    /// histograms yields identical counts, and therefore identical
    /// quantiles.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Exact sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact-sum mean of the recorded samples, if any.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (!self.is_empty()).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded samples, if any.
    ///
    /// Returns the lower bound of the bucket holding the sample of rank
    /// `ceil(q * count)` (nearest-rank), clamped into the exactly-known
    /// `[min, max]` range; the top rank reports the exact maximum.
    /// Values below [`SUB_BUCKETS`] are exact; above, the result
    /// underestimates the true sample by at most `1 / SUB_BUCKETS`
    /// relative error.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a finite value in `0.0 ..= 1.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(
            q.is_finite() && (0.0..=1.0).contains(&q),
            "quantile {q} outside 0.0..=1.0"
        );
        if self.is_empty() {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_lower_bound(index).clamp(self.min, self.max));
            }
        }
        unreachable!("histogram count does not match bucket totals")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(LatencyHistogram::bucket_index(v), v as usize);
            assert_eq!(LatencyHistogram::bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_monotonic() {
        // Every value maps to a bucket whose lower bound is <= the value,
        // and bucket indices never decrease as values grow.
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            63,
            64,
            65,
            1000,
            1 << 20,
            (1 << 20) + 1,
            u64::MAX / 2,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &probes {
            let idx = LatencyHistogram::bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            assert!(LatencyHistogram::bucket_lower_bound(idx) <= v);
            last = idx;
        }
        // Exhaustively: each bucket's lower bound maps back to itself, and
        // the value just below it maps to the previous bucket.
        for idx in 1..BUCKETS {
            let low = LatencyHistogram::bucket_lower_bound(idx);
            assert_eq!(LatencyHistogram::bucket_index(low), idx);
            assert_eq!(LatencyHistogram::bucket_index(low - 1), idx - 1);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut x = 1u64;
        while x < 1 << 40 {
            let idx = LatencyHistogram::bucket_index(x);
            let low = LatencyHistogram::bucket_lower_bound(idx);
            assert!(low <= x);
            assert!(
                (x - low) as f64 <= x as f64 / SUB_BUCKETS as f64,
                "error too large at {x}: bucket low {low}"
            );
            x = x * 7 + 3;
        }
    }

    #[test]
    fn quantiles_on_known_data() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(100));
        // p50 = rank 50; value 50 lands in bucket [50, 52) -> lower
        // bound 50 (exact here, since 50 opens its bucket).
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.mean(), Some(50.5));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_quantile_panics() {
        let h = LatencyHistogram::new();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let mut h = LatencyHistogram::new();
            let mut v = seed;
            for _ in 0..n {
                v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                h.record(v >> 40);
            }
            h
        };
        let (a, b, c) = (mk(1, 50), mk(2, 75), mk(3, 100));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        let mut c_ba = c.clone();
        c_ba.merge(&b);
        c_ba.merge(&a);

        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, c_ba);
        assert_eq!(ab_c.count(), 225);
    }

    #[test]
    fn merged_quantiles_match_single_recorder() {
        let mut whole = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for v in 0..1000u64 {
            let sample = v * v % 7919;
            whole.record(sample);
            if v % 2 == 0 {
                left.record(sample);
            } else {
                right.record(sample);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(left.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_n(77, 5);
        a.record_n(12, 0); // no-op
        for _ in 0..5 {
            b.record(77);
        }
        assert_eq!(a, b);
        assert_eq!(a.sum(), 385);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        assert_eq!(h.quantile(0.01), Some(0));
    }
}
