use miopt_engine::Cycle;

/// Outcome of presenting an access to a bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RowOutcome {
    /// The target row is already open.
    Hit,
    /// The bank had no open row; an activate was required.
    Closed,
    /// A different row was open; precharge + activate were required.
    Conflict,
}

/// One DRAM bank: an open-row register plus timing state.
#[derive(Debug, Clone)]
pub(crate) struct Bank {
    open_row: Option<u64>,
    /// When the currently open row becomes usable (activate finished).
    row_ready_at: Cycle,
    /// When the last data transfer from this bank ends (precharge cannot
    /// start earlier).
    last_data_end: Cycle,
}

impl Bank {
    pub(crate) fn new() -> Bank {
        Bank {
            open_row: None,
            row_ready_at: Cycle::ZERO,
            last_data_end: Cycle::ZERO,
        }
    }

    /// The row currently open (or being activated), if any.
    pub(crate) fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// When the current row (if any) finishes activating.
    pub(crate) fn row_ready_at(&self) -> Cycle {
        self.row_ready_at
    }

    /// Whether an access to `row` at `now` would be a row hit that can
    /// start immediately (used by the FR-FCFS first-ready scan).
    pub(crate) fn is_ready_hit(&self, row: u64, now: Cycle) -> bool {
        self.open_row == Some(row) && self.row_ready_at <= now
    }

    /// Performs the row-buffer state transition for an access to `row`
    /// issued at `now`, returning the outcome and the cycle at which column
    /// data movement may start.
    pub(crate) fn access(
        &mut self,
        row: u64,
        now: Cycle,
        t_activate: u64,
        t_precharge: u64,
    ) -> (RowOutcome, Cycle) {
        match self.open_row {
            Some(open) if open == row => {
                let start = now.max(self.row_ready_at);
                (RowOutcome::Hit, start)
            }
            Some(_) => {
                // Precharge may begin only after the bank's previous data
                // transfer finished and the previous activate completed.
                let precharge_start = now.max(self.row_ready_at).max(self.last_data_end);
                let ready = precharge_start + t_precharge + t_activate;
                self.open_row = Some(row);
                self.row_ready_at = ready;
                (RowOutcome::Conflict, ready)
            }
            None => {
                let ready = now.max(self.row_ready_at) + t_activate;
                self.open_row = Some(row);
                self.row_ready_at = ready;
                (RowOutcome::Closed, ready)
            }
        }
    }

    /// Records the end of a data transfer from this bank.
    pub(crate) fn note_data_end(&mut self, end: Cycle) {
        if end > self.last_data_end {
            self.last_data_end = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_closed_miss() {
        let mut b = Bank::new();
        let (outcome, start) = b.access(5, Cycle(100), 10, 10);
        assert_eq!(outcome, RowOutcome::Closed);
        assert_eq!(start, Cycle(110));
        assert_eq!(b.open_row(), Some(5));
    }

    #[test]
    fn same_row_hits_immediately_after_activate() {
        let mut b = Bank::new();
        b.access(5, Cycle(0), 10, 10);
        let (outcome, start) = b.access(5, Cycle(20), 10, 10);
        assert_eq!(outcome, RowOutcome::Hit);
        assert_eq!(start, Cycle(20));
    }

    #[test]
    fn hit_before_activate_completes_waits() {
        let mut b = Bank::new();
        b.access(5, Cycle(0), 10, 10); // row ready at 10
        let (outcome, start) = b.access(5, Cycle(3), 10, 10);
        assert_eq!(outcome, RowOutcome::Hit);
        assert_eq!(start, Cycle(10));
    }

    #[test]
    fn different_row_conflicts_and_pays_precharge() {
        let mut b = Bank::new();
        b.access(5, Cycle(0), 10, 10); // ready at 10
        b.note_data_end(Cycle(15));
        let (outcome, start) = b.access(6, Cycle(12), 10, 10);
        assert_eq!(outcome, RowOutcome::Conflict);
        // precharge starts at max(12, 10, 15) = 15, + 10 + 10
        assert_eq!(start, Cycle(35));
        assert_eq!(b.open_row(), Some(6));
    }

    #[test]
    fn ready_hit_detection() {
        let mut b = Bank::new();
        assert!(!b.is_ready_hit(5, Cycle(0)));
        b.access(5, Cycle(0), 10, 10);
        assert!(!b.is_ready_hit(5, Cycle(5))); // activating
        assert!(b.is_ready_hit(5, Cycle(10)));
        assert!(!b.is_ready_hit(6, Cycle(10)));
    }
}
