//! HBM2 main-memory model for the `miopt` simulator.
//!
//! Models the Table 1 memory system of the paper: 16 GB HBM2, 16 channels,
//! 16 banks per channel, ~512 GB/s aggregate bandwidth. The model captures
//! exactly the phenomena the paper's evaluation depends on:
//!
//! * **Row-buffer locality** (Figures 9 and 13): each bank keeps one open
//!   row; accesses to the open row are *row hits*, accesses to a closed bank
//!   pay an activate, and accesses to a different row pay precharge +
//!   activate (*row conflict*). Caching policies that delay or reorder
//!   requests disrupt this locality — the paper's central overhead.
//! * **FR-FCFS scheduling**: the per-channel scheduler services row hits
//!   first, falling back to the oldest request, with a starvation cap.
//! * **Bandwidth**: one 64 B burst occupies a channel's data bus for
//!   `t_burst` cycles; a read/write direction switch costs `t_switch`.
//!
//! # Examples
//!
//! ```
//! use miopt_dram::{Dram, DramConfig};
//! use miopt_engine::{Cycle, LineAddr, MemReq, ReqId};
//!
//! let mut dram = Dram::new(DramConfig::hbm2_paper());
//! let wb = MemReq::writeback(ReqId(0), LineAddr(0), Cycle(0));
//! dram.push(Cycle(0), wb).unwrap();
//! let mut now = Cycle(0);
//! while dram.busy() {
//!     dram.tick(now);
//!     now += 1;
//! }
//! assert_eq!(dram.stats().writes.get(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod channel;
mod config;
mod map;

pub use config::DramConfig;
pub use map::{AddressMap, DramLoc};

use channel::Channel;
use miopt_engine::sentinel::{InvariantViolation, Sentinel};
use miopt_engine::stats::{Counter, Ratio};
use miopt_engine::{Cycle, MemReq, MemResp};

/// Aggregate DRAM statistics across all channels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read bursts serviced.
    pub reads: Counter,
    /// Write bursts serviced.
    pub writes: Counter,
    /// Row-buffer outcome per serviced burst (hit vs. miss/conflict).
    pub row_hits: Ratio,
    /// Bursts that found the bank closed (activate only).
    pub row_closed: Counter,
    /// Bursts that found a different row open (precharge + activate).
    pub row_conflicts: Counter,
}

impl DramStats {
    /// Total bursts serviced (reads + writes).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }

    /// All counters as stable `(name, value)` pairs; the row-hit ratio is
    /// flattened into its numerator/denominator (results serialization
    /// hook).
    #[must_use]
    pub fn to_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("reads", self.reads.get()),
            ("writes", self.writes.get()),
            ("row_hits_hits", self.row_hits.hits()),
            ("row_hits_total", self.row_hits.total()),
            ("row_closed", self.row_closed.get()),
            ("row_conflicts", self.row_conflicts.get()),
        ]
    }

    /// Reconstructs statistics from persisted counters. `get` is queried
    /// once per field name (results deserialization hook).
    ///
    /// # Errors
    ///
    /// Returns the name of the first field `get` cannot supply, or the
    /// row-hit ratio violation if the numerator exceeds the denominator.
    pub fn from_pairs(mut get: impl FnMut(&str) -> Option<u64>) -> Result<DramStats, String> {
        let mut want =
            |name: &'static str| get(name).ok_or_else(|| format!("missing dram stat `{name}`"));
        let reads = Counter::from_value(want("reads")?);
        let writes = Counter::from_value(want("writes")?);
        let hits = want("row_hits_hits")?;
        let total = want("row_hits_total")?;
        if hits > total {
            return Err(format!("row_hits ratio {hits}/{total} is impossible"));
        }
        Ok(DramStats {
            reads,
            writes,
            row_hits: Ratio::from_parts(hits, total),
            row_closed: Counter::from_value(want("row_closed")?),
            row_conflicts: Counter::from_value(want("row_conflicts")?),
        })
    }
}

impl miopt_telemetry::StatSnapshot for DramStats {
    fn stat_pairs(&self) -> Vec<(&'static str, u64)> {
        self.to_pairs()
    }
}

/// The HBM2 memory system: a set of independently scheduled channels.
#[derive(Debug)]
pub struct Dram {
    map: AddressMap,
    channels: Vec<Channel>,
    /// Bit per channel with a nonempty request queue: set on push,
    /// cleared when a tick leaves the queue empty. [`Dram::tick`] visits
    /// only set bits — on a latency-bound workload one or two of the 16
    /// channels are active at a time.
    queued: u64,
    /// Bit per channel holding undelivered responses: set when a serve
    /// produces one, cleared when the response queue drains.
    resp_ready: u64,
    stats: DramStats,
}

impl Dram {
    /// Builds a DRAM from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration asks for more than 64 channels (the
    /// activity masks are single words).
    #[must_use]
    pub fn new(cfg: DramConfig) -> Dram {
        assert!(cfg.channels <= 64, "channel activity mask is a u64");
        let map = AddressMap::new(&cfg);
        let channels = (0..cfg.channels)
            .map(|_| Channel::new(cfg.clone()))
            .collect();
        Dram {
            map,
            channels,
            queued: 0,
            resp_ready: 0,
            stats: DramStats::default(),
        }
    }

    /// The address-to-geometry mapping in use.
    #[must_use]
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Whether the target channel can accept `req` this cycle.
    #[must_use]
    pub fn can_accept(&self, req: &MemReq) -> bool {
        let loc = self.map.locate(req.line);
        self.channels[loc.channel as usize].can_accept()
    }

    /// Enqueues a request on its channel.
    ///
    /// # Errors
    ///
    /// Returns `req` back if the channel queue is full; the caller should
    /// retry next cycle (and count a stall).
    pub fn push(&mut self, now: Cycle, req: MemReq) -> Result<(), MemReq> {
        let loc = self.map.locate(req.line);
        let c = loc.channel as usize;
        self.channels[c].push(now, req, loc).inspect(|()| {
            self.queued |= 1 << c;
        })
    }

    /// Advances every channel scheduler by one cycle. Returns whether any
    /// channel served or prepped a request.
    ///
    /// Channels with an empty request queue tick to a no-op (the channel
    /// scheduler early-outs), so only the channels in the `queued` mask
    /// are visited; the result is identical to a full scan.
    pub fn tick(&mut self, now: Cycle) -> bool {
        let mut acted = false;
        let mut m = self.queued;
        while m != 0 {
            let c = m.trailing_zeros() as usize;
            m &= m - 1;
            let ch = &mut self.channels[c];
            acted |= ch.tick(now, &mut self.stats);
            if !ch.has_queued() {
                self.queued &= !(1 << c);
            }
            if ch.has_responses() {
                self.resp_ready |= 1 << c;
            }
        }
        acted
    }

    /// Takes one completed read response, if any is ready at `now`.
    pub fn pop_response(&mut self, now: Cycle) -> Option<MemResp> {
        let mut cursor = 0;
        self.pop_response_from(now, &mut cursor)
    }

    /// [`Dram::pop_response`] with an explicit channel cursor: resumes the
    /// scan at `*cursor` instead of channel 0, advancing the cursor past
    /// exhausted channels. Draining a burst of responses within one cycle
    /// this way pops them in exactly [`Dram::pop_response`]'s order —
    /// nothing becomes ready mid-drain at a fixed `now` — while probing
    /// each channel once instead of once per response.
    pub fn pop_response_from(&mut self, now: Cycle, cursor: &mut usize) -> Option<MemResp> {
        while *cursor < self.channels.len() {
            // Channels outside the `resp_ready` mask hold no responses;
            // skipping them preserves the ascending-channel pop order.
            if self.resp_ready & (1 << *cursor) == 0 {
                *cursor += 1;
                continue;
            }
            let ch = &mut self.channels[*cursor];
            if let Some(resp) = ch.pop_response(now) {
                if !ch.has_responses() {
                    self.resp_ready &= !(1 << *cursor);
                }
                return Some(resp);
            }
            *cursor += 1;
        }
        None
    }

    /// Whether any request is queued, in service, or has an undelivered
    /// response.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.channels.iter().any(Channel::busy)
    }

    /// The earliest cycle at or after `now` at which any channel might
    /// schedule work or deliver a response, or `None` when the whole
    /// memory system is idle. Conservative: never later than the first
    /// cycle [`Dram::tick`] or [`Dram::pop_response`] would act, so an
    /// event-driven caller may skip straight to it.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.channels
            .iter()
            .filter_map(|ch| ch.next_event(now))
            .min()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }
}

impl Sentinel for Dram {
    fn check_invariants(&self, component: &str, out: &mut Vec<InvariantViolation>) {
        for (i, ch) in self.channels.iter().enumerate() {
            ch.check_invariants(&format!("{component}.ch[{i}]"), out);
            // The activity masks are conservative: a channel with work
            // must have its bit set (a set bit over an idle channel is
            // merely un-reaped).
            if ch.has_queued() && self.queued & (1 << i) == 0 {
                out.push(InvariantViolation {
                    component: component.to_string(),
                    invariant: "queued_mask_covers_work",
                    detail: format!("channel {i} has queued requests but a clear mask bit"),
                });
            }
            if ch.has_responses() && self.resp_ready & (1 << i) == 0 {
                out.push(InvariantViolation {
                    component: component.to_string(),
                    invariant: "resp_mask_covers_responses",
                    detail: format!("channel {i} has responses but a clear mask bit"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt_engine::{AccessKind, LineAddr, Origin, Pc, ReqId};

    fn read(id: u64, line: u64) -> MemReq {
        MemReq {
            id: ReqId(id),
            line: LineAddr(line),
            is_store: false,
            kind: AccessKind::Bypass,
            pc: Pc(0),
            origin: Origin::Wavefront { cu: 0, slot: 0 },
            issue_cycle: Cycle(0),
        }
    }

    fn run_until_idle(
        dram: &mut Dram,
        mut now: Cycle,
        mut on_resp: impl FnMut(MemResp, Cycle),
    ) -> Cycle {
        let mut guard = 0;
        while dram.busy() {
            dram.tick(now);
            while let Some(r) = dram.pop_response(now) {
                on_resp(r, now);
            }
            now += 1;
            guard += 1;
            assert!(guard < 1_000_000, "dram did not drain");
        }
        now
    }

    #[test]
    fn sentinel_stays_quiet_through_a_full_drain() {
        let mut dram = Dram::new(DramConfig::hbm2_paper());
        for i in 0..8 {
            dram.push(Cycle(0), read(i, i * 3)).unwrap();
        }
        let mut out = Vec::new();
        dram.check_invariants("dram", &mut out);
        assert!(out.is_empty(), "violations before drain: {out:?}");
        run_until_idle(&mut dram, Cycle(0), |_, _| {});
        dram.check_invariants("dram", &mut out);
        assert!(out.is_empty(), "violations after drain: {out:?}");
    }

    #[test]
    fn single_read_completes_and_counts() {
        let mut dram = Dram::new(DramConfig::hbm2_paper());
        dram.push(Cycle(0), read(1, 0)).unwrap();
        let mut got = Vec::new();
        run_until_idle(&mut dram, Cycle(0), |r, _| got.push(r.id));
        assert_eq!(got, vec![ReqId(1)]);
        assert_eq!(dram.stats().reads.get(), 1);
        assert_eq!(dram.stats().row_hits.total(), 1);
        // First access to a bank is a closed-row miss, not a hit.
        assert_eq!(dram.stats().row_hits.hits(), 0);
        assert_eq!(dram.stats().row_closed.get(), 1);
    }

    #[test]
    fn sequential_stream_gets_high_row_hit_rate() {
        let cfg = DramConfig::hbm2_paper();
        let mut dram = Dram::new(cfg.clone());
        let mut now = Cycle(0);
        // Stream 4 full rows' worth of lines through every channel, issuing
        // as fast as DRAM accepts.
        let total = cfg.channels as u64 * cfg.lines_per_row * 4;
        let mut sent = 0;
        let mut guard = 0;
        while sent < total {
            let r = read(sent, sent);
            if dram.can_accept(&r) {
                dram.push(now, r).unwrap();
                sent += 1;
            }
            dram.tick(now);
            while dram.pop_response(now).is_some() {}
            now += 1;
            guard += 1;
            assert!(guard < 1_000_000);
        }
        run_until_idle(&mut dram, now, |_, _| {});
        let ratio = dram.stats().row_hits.value();
        assert!(ratio > 0.9, "streaming row hit ratio {ratio} too low");
    }

    #[test]
    fn alternating_rows_same_bank_conflict() {
        let cfg = DramConfig::hbm2_paper();
        let mut dram = Dram::new(cfg.clone());
        // Two lines in the same channel and bank but different rows,
        // issued strictly serially (each waits for the previous response)
        // so the scheduler cannot batch them: every access after the first
        // must conflict.
        let stride = cfg.channels as u64 * cfg.lines_per_row * cfg.banks as u64;
        let mut now = Cycle(0);
        for i in 0..20u64 {
            let line = (i % 2) * stride;
            dram.push(now, read(i, line)).unwrap();
            now = run_until_idle(&mut dram, now, |_, _| {});
        }
        assert!(
            dram.stats().row_conflicts.get() >= 18,
            "conflicts: {:?}",
            dram.stats()
        );
        assert!(dram.stats().row_hits.value() < 0.2);
    }

    #[test]
    fn row_hits_beat_row_conflicts_in_latency() {
        let cfg = DramConfig::hbm2_paper();
        let stride = cfg.channels as u64 * cfg.lines_per_row * cfg.banks as u64;

        let time_for = |lines: Vec<u64>| {
            let mut dram = Dram::new(cfg.clone());
            for (i, l) in lines.iter().enumerate() {
                dram.push(Cycle(0), read(i as u64, *l)).unwrap();
            }
            let end = run_until_idle(&mut dram, Cycle(0), |_, _| {});
            end.0
        };

        // Same row (consecutive columns) vs. row ping-pong.
        let hits = time_for((0..8).collect());
        let conflicts = time_for((0..8).map(|i| (i % 2) * stride).collect());
        assert!(hits < conflicts, "hits {hits} vs conflicts {conflicts}");
    }

    #[test]
    fn writes_complete_without_responses() {
        let mut dram = Dram::new(DramConfig::hbm2_paper());
        for i in 0..4 {
            dram.push(
                Cycle(0),
                MemReq::writeback(ReqId(i), LineAddr(i * 2), Cycle(0)),
            )
            .unwrap();
        }
        let mut resp_count = 0;
        run_until_idle(&mut dram, Cycle(0), |_, _| resp_count += 1);
        assert_eq!(resp_count, 0);
        assert_eq!(dram.stats().writes.get(), 4);
    }

    #[test]
    fn backpressure_when_queue_full() {
        let cfg = DramConfig {
            queue_capacity: 2,
            ..DramConfig::hbm2_paper()
        };
        let mut dram = Dram::new(cfg);
        // All three target channel 0 (consecutive columns of one row).
        assert!(dram.push(Cycle(0), read(0, 0)).is_ok());
        assert!(dram.push(Cycle(0), read(1, 1)).is_ok());
        let r = read(2, 2);
        assert!(!dram.can_accept(&r));
        assert!(dram.push(Cycle(0), r).is_err());
    }

    #[test]
    fn next_event_never_skips_an_acting_cycle() {
        // Drive a mixed row-hit/conflict stream per-cycle and record, at
        // every cycle, whether stats or responses moved. next_event must
        // never name a cycle later than the next observed action.
        let cfg = DramConfig::hbm2_paper();
        let stride = cfg.channels as u64 * cfg.lines_per_row * cfg.banks as u64;
        let mut dram = Dram::new(cfg);
        for i in 0..12u64 {
            dram.push(Cycle(0), read(i, (i % 3) * stride + i)).unwrap();
        }
        let mut now = Cycle(0);
        let mut guard = 0;
        while dram.busy() {
            let predicted = dram.next_event(now).expect("busy dram has an event");
            assert!(predicted >= now);
            let before = dram.stats().clone();
            dram.tick(now);
            let mut popped = false;
            while dram.pop_response(now).is_some() {
                popped = true;
            }
            let acted = popped || *dram.stats() != before;
            if acted {
                assert_eq!(
                    predicted, now,
                    "channel acted at {now} but next_event said {predicted}"
                );
            }
            now += 1;
            guard += 1;
            assert!(guard < 1_000_000);
        }
        assert_eq!(dram.next_event(now), None, "idle dram reports no event");
    }

    #[test]
    fn distinct_channels_overlap_in_time() {
        let cfg = DramConfig::hbm2_paper();
        let serial_one_channel = {
            let mut dram = Dram::new(cfg.clone());
            for i in 0..8u64 {
                dram.push(Cycle(0), read(i, i)).unwrap(); // one row, one channel
            }
            run_until_idle(&mut dram, Cycle(0), |_, _| {}).0
        };
        let parallel_channels = {
            let mut dram = Dram::new(cfg.clone());
            for i in 0..8u64 {
                // One line per channel.
                dram.push(Cycle(0), read(i, i * cfg.lines_per_row)).unwrap();
            }
            run_until_idle(&mut dram, Cycle(0), |_, _| {}).0
        };
        assert!(parallel_channels <= serial_one_channel);
    }
}
