use crate::DramConfig;
use miopt_engine::util::log2;
use miopt_engine::LineAddr;

/// The DRAM coordinates of a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLoc {
    /// Channel index.
    pub channel: u16,
    /// Bank index within the channel.
    pub bank: u16,
    /// Row index within the bank.
    pub row: u64,
    /// Column (line slot) within the row.
    pub column: u64,
}

impl DramLoc {
    /// A key identifying the (channel, bank, row) triple — the granularity
    /// tracked by the dirty-block index used for cache rinsing.
    #[must_use]
    pub fn row_key(&self) -> u64 {
        (self.row << 8) | (u64::from(self.bank) << 4) | u64::from(self.channel) & 0xF
    }
}

/// Row-interleaved address mapping: consecutive cache lines fill a DRAM
/// row's columns, then rotate across channels, then banks, then advance
/// rows.
///
/// Layout of the line address, LSB first:
/// `| column | channel | bank | row |`
///
/// The row-sized (2 KB) channel interleave is what GPU HBM stacks use in
/// practice: it lets each of the thousands of concurrent wavefront streams
/// deliver whole-row bursts to one bank, which is the regime in which the
/// paper's streaming MI workloads enjoy high row-buffer locality when
/// uncached (Figure 9) — a 64 B interleave would shred every stream across
/// all banks and no schedule could recover the locality.
///
/// # Examples
///
/// ```
/// use miopt_dram::{AddressMap, DramConfig};
/// use miopt_engine::LineAddr;
///
/// let map = AddressMap::new(&DramConfig::hbm2_paper());
/// let a = map.locate(LineAddr(0));
/// let b = map.locate(LineAddr(1));
/// // Adjacent lines share a row (consecutive columns):
/// assert_eq!(a.channel, b.channel);
/// assert_eq!(a.row, b.row);
/// assert_eq!(b.column, a.column + 1);
/// ```
#[derive(Debug, Clone)]
pub struct AddressMap {
    channel_bits: u32,
    column_bits: u32,
    bank_bits: u32,
}

impl AddressMap {
    /// Builds the mapping for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's geometry is not power-of-two sized
    /// (call [`DramConfig::validate`] first).
    #[must_use]
    pub fn new(cfg: &DramConfig) -> AddressMap {
        AddressMap {
            channel_bits: log2(u64::from(cfg.channels)),
            column_bits: log2(cfg.lines_per_row),
            bank_bits: log2(u64::from(cfg.banks)),
        }
    }

    /// Maps a line address to its DRAM coordinates.
    #[must_use]
    pub fn locate(&self, line: LineAddr) -> DramLoc {
        let mut v = line.0;
        let column = v & ((1 << self.column_bits) - 1);
        v >>= self.column_bits;
        let channel = (v & ((1 << self.channel_bits) - 1)) as u16;
        v >>= self.channel_bits;
        let bank = (v & ((1 << self.bank_bits) - 1)) as u16;
        v >>= self.bank_bits;
        DramLoc {
            channel,
            bank,
            row: v,
            column,
        }
    }

    /// Inverse of [`locate`](AddressMap::locate): reconstructs the line
    /// address of a coordinate.
    #[must_use]
    pub fn line_of(&self, loc: DramLoc) -> LineAddr {
        let mut v = loc.row;
        v = (v << self.bank_bits) | u64::from(loc.bank);
        v = (v << self.channel_bits) | u64::from(loc.channel);
        v = (v << self.column_bits) | loc.column;
        LineAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_round_trips() {
        let map = AddressMap::new(&DramConfig::hbm2_paper());
        for line in [0u64, 1, 15, 16, 12345, 1 << 24, (1 << 28) - 1] {
            let loc = map.locate(LineAddr(line));
            assert_eq!(map.line_of(loc), LineAddr(line), "line {line}");
        }
    }

    #[test]
    fn a_row_of_lines_shares_channel_bank_row() {
        let cfg = DramConfig::hbm2_paper();
        let map = AddressMap::new(&cfg);
        let first = map.locate(LineAddr(0));
        for i in 0..cfg.lines_per_row {
            let loc = map.locate(LineAddr(i));
            assert_eq!(loc.channel, first.channel);
            assert_eq!(loc.bank, first.bank);
            assert_eq!(loc.row, first.row);
            assert_eq!(loc.column, i);
        }
        // The next line starts the next channel.
        let next = map.locate(LineAddr(cfg.lines_per_row));
        assert_eq!(next.channel, first.channel + 1);
        assert_eq!(next.column, 0);
    }

    #[test]
    fn channels_rotate_before_banks() {
        let cfg = DramConfig::hbm2_paper();
        let map = AddressMap::new(&cfg);
        let lines_per_channel_sweep = cfg.lines_per_row * u64::from(cfg.channels);
        let loc = map.locate(LineAddr(lines_per_channel_sweep));
        assert_eq!(loc.channel, 0);
        assert_eq!(loc.bank, 1);
        assert_eq!(loc.row, 0);
    }

    #[test]
    fn row_advances_after_all_banks() {
        let cfg = DramConfig::hbm2_paper();
        let map = AddressMap::new(&cfg);
        let sweep = cfg.lines_per_row * u64::from(cfg.banks) * u64::from(cfg.channels);
        let loc = map.locate(LineAddr(sweep));
        assert_eq!(loc.row, 1);
        assert_eq!(loc.bank, 0);
        assert_eq!(loc.channel, 0);
        assert_eq!(loc.column, 0);
    }

    #[test]
    fn row_key_distinguishes_rows_and_banks() {
        let map = AddressMap::new(&DramConfig::hbm2_paper());
        let a = map.locate(LineAddr(0)).row_key();
        let same_row = map.locate(LineAddr(1)).row_key();
        let other_channel = map.locate(LineAddr(32)).row_key();
        assert_eq!(a, same_row);
        assert_ne!(a, other_channel);
    }
}
