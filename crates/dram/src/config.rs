use miopt_engine::util::is_pow2;

/// DRAM geometry and timing configuration.
///
/// All timings are in GPU cycles (1.6 GHz). The HBM2 interface of Table 1
/// runs at 1000 MHz, so one memory cycle is 1.6 GPU cycles; the defaults
/// below are the usual HBM2 timings converted and rounded.
///
/// # Examples
///
/// ```
/// use miopt_dram::DramConfig;
///
/// let cfg = DramConfig::hbm2_paper();
/// assert_eq!(cfg.channels, 16);
/// assert_eq!(cfg.banks, 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels (Table 1: 16).
    pub channels: u16,
    /// Banks per channel (Table 1: 16).
    pub banks: u16,
    /// Cache lines per DRAM row (2 KB row / 64 B line = 32).
    pub lines_per_row: u64,
    /// Per-channel scheduler queue capacity.
    pub queue_capacity: usize,
    /// Row activate time (tRCD), GPU cycles.
    pub t_activate: u64,
    /// Precharge time (tRP), GPU cycles.
    pub t_precharge: u64,
    /// Column access latency (tCL), GPU cycles.
    pub t_cas: u64,
    /// Data-bus occupancy of one 64 B burst, GPU cycles.
    ///
    /// 16 channels x 64 B / 3 cycles at 1.6 GHz = 546 GB/s, matching the
    /// paper's 512 GB/s within 7%.
    pub t_burst: u64,
    /// Bus turnaround penalty when switching between reads and writes.
    pub t_switch: u64,
    /// How many queued requests the FR-FCFS scheduler inspects for a
    /// row hit before falling back to the oldest request.
    pub frfcfs_window: usize,
    /// Maximum cycles a request may be bypassed by younger row hits before
    /// it is forced (starvation cap).
    pub starvation_cap: u64,
}

impl DramConfig {
    /// The paper's Table 1 memory system: HBM2, 16 channels, 16
    /// banks/channel, 1000 MHz, 512 GB/s.
    #[must_use]
    pub fn hbm2_paper() -> DramConfig {
        DramConfig {
            channels: 16,
            banks: 16,
            lines_per_row: 32,
            queue_capacity: 48,
            t_activate: 22,
            t_precharge: 22,
            t_cas: 22,
            t_burst: 3,
            t_switch: 8,
            frfcfs_window: 16,
            starvation_cap: 2000,
        }
    }

    /// A tiny geometry for fast unit tests (2 channels, 4 banks, 8-line
    /// rows).
    #[must_use]
    pub fn tiny_test() -> DramConfig {
        DramConfig {
            channels: 2,
            banks: 4,
            lines_per_row: 8,
            queue_capacity: 8,
            t_activate: 10,
            t_precharge: 10,
            t_cas: 10,
            t_burst: 2,
            t_switch: 4,
            frfcfs_window: 8,
            starvation_cap: 500,
        }
    }

    /// Validates that the geometry is usable (powers of two where the
    /// address mapping requires them, nonzero timings).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !is_pow2(u64::from(self.channels)) {
            return Err(format!(
                "channels must be a power of two, got {}",
                self.channels
            ));
        }
        if !is_pow2(u64::from(self.banks)) {
            return Err(format!("banks must be a power of two, got {}", self.banks));
        }
        if !is_pow2(self.lines_per_row) {
            return Err(format!(
                "lines_per_row must be a power of two, got {}",
                self.lines_per_row
            ));
        }
        if self.t_burst == 0 {
            return Err("t_burst must be nonzero".to_string());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be nonzero".to_string());
        }
        if self.frfcfs_window == 0 {
            return Err("frfcfs_window must be nonzero".to_string());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig::hbm2_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        DramConfig::hbm2_paper().validate().unwrap();
        DramConfig::tiny_test().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut cfg = DramConfig::hbm2_paper();
        cfg.channels = 3;
        assert!(cfg.validate().is_err());

        let mut cfg = DramConfig::hbm2_paper();
        cfg.banks = 5;
        assert!(cfg.validate().is_err());

        let mut cfg = DramConfig::hbm2_paper();
        cfg.lines_per_row = 33;
        assert!(cfg.validate().is_err());

        let mut cfg = DramConfig::hbm2_paper();
        cfg.t_burst = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn paper_bandwidth_is_close_to_512_gbs() {
        let cfg = DramConfig::hbm2_paper();
        // bytes per second = channels * 64 / (t_burst / 1.6e9)
        let bw = f64::from(cfg.channels) * 64.0 * 1.6e9 / cfg.t_burst as f64;
        let gbs = bw / 1e9;
        assert!((450.0..600.0).contains(&gbs), "bandwidth {gbs} GB/s");
    }
}
