use crate::bank::{Bank, RowOutcome};
use crate::map::DramLoc;
use crate::{DramConfig, DramStats};
use miopt_engine::sentinel::{InvariantViolation, Sentinel};
use miopt_engine::{Cycle, MemReq, MemResp};
use std::collections::VecDeque;

/// A queued request with its decoded coordinates and arrival time.
#[derive(Debug, Clone)]
struct Entry {
    req: MemReq,
    loc: DramLoc,
    arrived: Cycle,
    /// Whether the row-buffer outcome was already recorded (at prep time
    /// for misses/conflicts).
    counted: bool,
}

/// One HBM2 channel: a request queue, an FR-FCFS scheduler, a shared data
/// bus, and a set of banks.
#[derive(Debug)]
pub(crate) struct Channel {
    cfg: DramConfig,
    queue: VecDeque<Entry>,
    banks: Vec<Bank>,
    bus_free_at: Cycle,
    last_was_write: bool,
    responses: VecDeque<(Cycle, MemResp)>,
    in_service: usize,
}

impl Channel {
    pub(crate) fn new(cfg: DramConfig) -> Channel {
        let banks = (0..cfg.banks).map(|_| Bank::new()).collect();
        // Both queues are bounded — requests by `queue_capacity`, responses
        // by the requests in flight — so pre-sizing them keeps steady-state
        // traffic off the heap.
        let queue = VecDeque::with_capacity(cfg.queue_capacity);
        let responses = VecDeque::with_capacity(cfg.queue_capacity.max(16));
        Channel {
            cfg,
            queue,
            banks,
            bus_free_at: Cycle::ZERO,
            last_was_write: false,
            responses,
            in_service: 0,
        }
    }

    pub(crate) fn can_accept(&self) -> bool {
        self.queue.len() < self.cfg.queue_capacity
    }

    pub(crate) fn push(&mut self, now: Cycle, req: MemReq, loc: DramLoc) -> Result<(), MemReq> {
        if !self.can_accept() {
            return Err(req);
        }
        self.queue.push_back(Entry {
            req,
            loc,
            arrived: now,
            counted: false,
        });
        Ok(())
    }

    pub(crate) fn busy(&self) -> bool {
        !self.queue.is_empty() || !self.responses.is_empty() || self.in_service > 0
    }

    /// Whether any request is waiting in the scheduling queue.
    pub(crate) fn has_queued(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Whether any completed response is waiting to be delivered.
    pub(crate) fn has_responses(&self) -> bool {
        !self.responses.is_empty()
    }

    /// The FR-FCFS scheduling window, shrunk to the head alone once the
    /// head exceeds the starvation cap.
    fn window(&self, now: Cycle) -> usize {
        match self.queue.front() {
            Some(head) if now.since(head.arrived) > self.cfg.starvation_cap => 1,
            _ => self.cfg.frfcfs_window.min(self.queue.len()),
        }
    }

    /// One cycle: *serve* at most one ready row hit over the data bus, and
    /// *prep* (precharge/activate) at most one bank for a queued miss.
    /// Splitting serve from prep lets transfers from open rows proceed
    /// while other banks activate — the overlap a real controller relies
    /// on for bandwidth under row conflicts.
    ///
    /// Returns whether anything was served or prepped this cycle.
    pub(crate) fn tick(&mut self, now: Cycle, stats: &mut DramStats) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        let mut acted = false;
        let window = self.window(now);

        // Serve phase: oldest windowed request whose row is open and
        // ready, if the bus is free.
        if self.bus_free_at <= now {
            let serve = (0..window).find(|&i| {
                let e = &self.queue[i];
                self.banks[e.loc.bank as usize].is_ready_hit(e.loc.row, now)
            });
            if let Some(idx) = serve {
                acted = true;
                let entry = self.queue.remove(idx).expect("index in window");
                if !entry.counted {
                    stats.row_hits.record(true);
                }
                let is_write = entry.req.is_store;
                let switch = if is_write != self.last_was_write {
                    self.cfg.t_switch
                } else {
                    0
                };
                let data_start = now + switch;
                let data_end = data_start + self.cfg.t_burst;
                self.bus_free_at = data_end;
                self.last_was_write = is_write;
                self.banks[entry.loc.bank as usize].note_data_end(data_end);
                if is_write {
                    stats.writes.inc();
                } else {
                    stats.reads.inc();
                    if entry.req.wants_response() {
                        let ready = data_start + self.cfg.t_cas + self.cfg.t_burst;
                        self.in_service += 1;
                        self.responses
                            .push_back((ready, MemResp::for_req(&entry.req)));
                        // Keep responses ordered by readiness for pop.
                        let n = self.responses.len();
                        if n >= 2 && self.responses[n - 2].0 > self.responses[n - 1].0 {
                            let last = self.responses.pop_back().expect("nonempty");
                            let pos = self
                                .responses
                                .iter()
                                .position(|(c, _)| *c > last.0)
                                .unwrap_or(self.responses.len());
                            self.responses.insert(pos, last);
                        }
                    }
                }
            }
        }

        // Prep phase: for the oldest windowed request whose row is not
        // open, start the precharge/activate — unless an older or equal
        // windowed request still wants the currently open row of that bank
        // (never close a row with pending window hits, except under
        // starvation).
        let window = self.window(now);
        for i in 0..window {
            let (bank_idx, row) = {
                let e = &self.queue[i];
                (e.loc.bank as usize, e.loc.row)
            };
            let bank = &self.banks[bank_idx];
            if bank.row_ready_at() > now {
                continue; // mid-prep
            }
            match bank.open_row() {
                Some(open) if open == row => continue, // will be served
                open => {
                    let keeps_open_row_busy =
                        open.is_some()
                            && window > 1
                            && self.queue.iter().take(window).any(|o| {
                                o.loc.bank as usize == bank_idx && Some(o.loc.row) == open
                            });
                    if keeps_open_row_busy {
                        continue;
                    }
                    let (outcome, _) = self.banks[bank_idx].access(
                        row,
                        now,
                        self.cfg.t_activate,
                        self.cfg.t_precharge,
                    );
                    match outcome {
                        RowOutcome::Hit => unreachable!("row was not open"),
                        RowOutcome::Closed => {
                            stats.row_hits.record(false);
                            stats.row_closed.inc();
                        }
                        RowOutcome::Conflict => {
                            stats.row_hits.record(false);
                            stats.row_conflicts.inc();
                        }
                    }
                    self.queue[i].counted = true;
                    acted = true;
                    break; // one prep per cycle
                }
            }
        }
        acted
    }

    /// The earliest cycle at or after `now` at which this channel might
    /// act — serve a windowed row hit, start a precharge/activate, cross
    /// the starvation boundary, or have a response become deliverable —
    /// or `None` when it is completely idle.
    ///
    /// Conservative by design: it may name a cycle where arbitration
    /// still blocks everything (the caller just steps once and asks
    /// again), but it never reports a cycle *later* than the first one
    /// where [`Channel::tick`] or [`Channel::pop_response`] would do
    /// work. Any candidate at or before `now` therefore collapses to
    /// `now`, signalling "active, do not skip".
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let consider = |next: &mut Option<Cycle>, at: Cycle| {
            let at = at.max(now);
            if next.is_none_or(|n| at < n) {
                *next = Some(at);
            }
        };
        if let Some((ready, _)) = self.responses.front() {
            consider(&mut next, *ready);
        }
        if let Some(head) = self.queue.front() {
            // Crossing the starvation boundary collapses the FR-FCFS
            // window to the head alone, which can unblock a prep that
            // `keeps_open_row_busy` was holding back.
            let collapse = head.arrived + self.cfg.starvation_cap + 1;
            if collapse > now {
                consider(&mut next, collapse);
            }
            for e in self.queue.iter().take(self.window(now)) {
                let bank = &self.banks[e.loc.bank as usize];
                if bank.open_row() == Some(e.loc.row) {
                    // Serve: needs the shared bus and the activate done.
                    consider(&mut next, self.bus_free_at.max(bank.row_ready_at()));
                } else {
                    // Prep: possible once the bank's current activate
                    // finishes (earlier candidates mean arbitration is
                    // the blocker; the clamp keeps us stepping).
                    consider(&mut next, bank.row_ready_at());
                }
            }
        }
        next
    }

    pub(crate) fn pop_response(&mut self, now: Cycle) -> Option<MemResp> {
        match self.responses.front() {
            Some((ready, _)) if *ready <= now => {
                self.in_service -= 1;
                self.responses.pop_front().map(|(_, r)| r)
            }
            _ => None,
        }
    }
}

impl Sentinel for Channel {
    fn check_invariants(&self, component: &str, out: &mut Vec<InvariantViolation>) {
        if self.queue.len() > self.cfg.queue_capacity {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "dram_queue_occupancy",
                detail: format!(
                    "{} queued requests > capacity {}",
                    self.queue.len(),
                    self.cfg.queue_capacity
                ),
            });
        }
        // Every read taken into service must still be accounted for by an
        // undelivered response: a drift here means a response was created
        // or consumed without balancing the in-service counter.
        if self.in_service != self.responses.len() {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "response_accounting",
                detail: format!(
                    "{} reads in service but {} undelivered responses",
                    self.in_service,
                    self.responses.len()
                ),
            });
        }
        let mut disordered = false;
        let mut prev: Option<Cycle> = None;
        for (ready, _) in &self.responses {
            if prev.is_some_and(|p| p > *ready) {
                disordered = true;
                break;
            }
            prev = Some(*ready);
        }
        if disordered {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "response_ordering",
                detail: "response readiness times are not monotonic".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddressMap;
    use miopt_engine::{AccessKind, LineAddr, Origin, Pc, ReqId};

    fn mk_read(id: u64, line: u64) -> MemReq {
        MemReq {
            id: ReqId(id),
            line: LineAddr(line),
            is_store: false,
            kind: AccessKind::Bypass,
            pc: Pc(0),
            origin: Origin::Wavefront { cu: 0, slot: 0 },
            issue_cycle: Cycle(0),
        }
    }

    fn setup() -> (Channel, AddressMap, DramConfig) {
        let cfg = DramConfig::tiny_test();
        (Channel::new(cfg.clone()), AddressMap::new(&cfg), cfg)
    }

    #[test]
    fn frfcfs_prefers_ready_row_hit() {
        let (mut ch, map, cfg) = setup();
        let mut stats = DramStats::default();
        // Open row 0 of bank 0 (channel 0): line 0.
        let l0 = 0u64;
        ch.push(Cycle(0), mk_read(0, l0), map.locate(LineAddr(l0)))
            .unwrap();
        let mut now = Cycle(0);
        let mut order = Vec::new();
        while order.is_empty() {
            ch.tick(now, &mut stats);
            while let Some(r) = ch.pop_response(now) {
                order.push(r.id.0);
            }
            now += 1;
        }
        // Row 0 is now open and ready. Enqueue: first a conflicting row,
        // then a row hit. FR-FCFS should service the hit first.
        let bank_stride = u64::from(cfg.channels) * cfg.lines_per_row * u64::from(cfg.banks);
        let conflict_line = bank_stride; // channel 0, bank 0, row 1
        let hit_line = 1; // channel 0, bank 0, row 0, column 1
        ch.push(
            now,
            mk_read(1, conflict_line),
            map.locate(LineAddr(conflict_line)),
        )
        .unwrap();
        ch.push(now, mk_read(2, hit_line), map.locate(LineAddr(hit_line)))
            .unwrap();
        let mut guard = 0;
        while order.len() < 3 {
            ch.tick(now, &mut stats);
            while let Some(r) = ch.pop_response(now) {
                order.push(r.id.0);
            }
            now += 1;
            guard += 1;
            assert!(guard < 10_000);
        }
        assert_eq!(
            order,
            vec![0, 2, 1],
            "row hit should be serviced before conflict"
        );
        assert!(stats.row_hits.hits() >= 1);
    }

    #[test]
    fn starvation_cap_forces_oldest() {
        let cfg = DramConfig {
            starvation_cap: 0,
            ..DramConfig::tiny_test()
        };
        let map = AddressMap::new(&cfg);
        let mut ch = Channel::new(cfg.clone());
        let mut stats = DramStats::default();
        // Open a row, then enqueue conflict-then-hit; with cap 0 the oldest
        // (conflict) must go first.
        ch.push(Cycle(0), mk_read(0, 0), map.locate(LineAddr(0)))
            .unwrap();
        let mut now = Cycle(0);
        while stats.reads.get() < 1 {
            ch.tick(now, &mut stats);
            now += 1;
        }
        let bank_stride = u64::from(cfg.channels) * cfg.lines_per_row * u64::from(cfg.banks);
        ch.push(
            now,
            mk_read(1, bank_stride),
            map.locate(LineAddr(bank_stride)),
        )
        .unwrap();
        now += 1; // make the first entry older than cap 0
        ch.push(now, mk_read(2, 1), map.locate(LineAddr(1)))
            .unwrap();
        let mut order = Vec::new();
        let mut guard = 0;
        while order.len() < 3 {
            ch.tick(now, &mut stats);
            while let Some(r) = ch.pop_response(now) {
                order.push(r.id.0);
            }
            now += 1;
            guard += 1;
            assert!(guard < 10_000);
        }
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn read_write_switch_costs_time() {
        let (mut ch, map, _cfg) = setup();
        // Interleaved read/write to the same open row.
        let mut stats = DramStats::default();
        let mut now = Cycle(0);
        for i in 0..8u64 {
            let line = i; // one open row
            let mut req = mk_read(i, line);
            if i % 2 == 1 {
                req.is_store = true;
                req.origin = Origin::Internal;
            }
            ch.push(now, req, map.locate(LineAddr(line))).unwrap();
        }
        let interleaved_end = {
            let mut guard = 0;
            while ch.busy() {
                ch.tick(now, &mut stats);
                while ch.pop_response(now).is_some() {}
                now += 1;
                guard += 1;
                assert!(guard < 100_000);
            }
            now
        };

        // Same traffic, reads then writes grouped.
        let (mut ch2, map2, _cfg2) = setup();
        let mut stats2 = DramStats::default();
        let mut now2 = Cycle(0);
        for i in 0..8u64 {
            let line = i;
            let mut req = mk_read(i, line);
            if i >= 4 {
                req.is_store = true;
                req.origin = Origin::Internal;
            }
            ch2.push(now2, req, map2.locate(LineAddr(line))).unwrap();
        }
        let grouped_end = {
            let mut guard = 0;
            while ch2.busy() {
                ch2.tick(now2, &mut stats2);
                while ch2.pop_response(now2).is_some() {}
                now2 += 1;
                guard += 1;
                assert!(guard < 100_000);
            }
            now2
        };
        assert!(
            grouped_end < interleaved_end,
            "grouped {grouped_end:?} vs interleaved {interleaved_end:?}"
        );
    }
}
