//! Figure-level experiment sweeps.
//!
//! Each function here regenerates the data behind one or more of the
//! paper's figures; the `miopt-bench` crate formats them into the printed
//! tables and Criterion benches.

use crate::config::ConfigError;
use crate::system::{StallDiagnostic, StallReason};
use crate::{optimization_ladder, ApuSystem, CachePolicy, Metrics, PolicyConfig, SystemConfig};
use miopt_telemetry::TelemetryRun;
use miopt_workloads::Workload;
use std::error::Error;
use std::fmt;

/// Default cycle budget for a single run before declaring a hang.
pub const DEFAULT_MAX_CYCLES: u64 = 20_000_000_000;

/// Why a simulation run could not produce a result.
///
/// Returned by [`run_one`] / [`SweepSpec::run_job`] so executors (the
/// `miopt-harness` pool, benches, examples) can report per-job failures
/// instead of unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded its cycle budget, or — with invariant checking
    /// enabled — the watchdog declared it wedged. Almost always a
    /// configuration error (e.g. a deadlock-prone queue sizing), not a
    /// slow workload.
    Timeout {
        /// Workload name of the failed run.
        workload: String,
        /// Policy label of the failed run.
        policy: String,
        /// The exhausted budget.
        max_cycles: u64,
        /// What the halted system looked like.
        diagnostic: Box<StallDiagnostic>,
    },
    /// An invariant check failed mid-run: the simulator itself (not the
    /// configuration) is in an inconsistent state. Only produced with
    /// invariant checking enabled.
    Halted {
        /// Workload name of the failed run.
        workload: String,
        /// Policy label of the failed run.
        policy: String,
        /// The violations found and the state around them.
        diagnostic: Box<StallDiagnostic>,
    },
    /// The system, policy or run configuration was rejected up front.
    Config(ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout {
                workload,
                policy,
                max_cycles,
                diagnostic,
            } => match diagnostic.reason {
                StallReason::NoForwardProgress => write!(
                    f,
                    "{workload}/{policy}: no forward progress since cycle {}",
                    diagnostic.cycle
                ),
                _ => write!(
                    f,
                    "{workload}/{policy}: simulation exceeded {max_cycles} cycles"
                ),
            },
            SimError::Halted {
                workload,
                policy,
                diagnostic,
            } => {
                write!(
                    f,
                    "{workload}/{policy}: invariant violation at cycle {}",
                    diagnostic.cycle
                )?;
                if let Some(v) = diagnostic.violations.first() {
                    write!(f, " ({v})")?;
                }
                Ok(())
            }
            SimError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Timeout { .. } | SimError::Halted { .. } => None,
            SimError::Config(e) => Some(e),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

/// Per-run execution options: the cycle budget, optional telemetry, and
/// optional invariant checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Cycle budget before the run fails with [`SimError::Timeout`].
    pub max_cycles: u64,
    /// `Some(interval)` samples telemetry every `interval` cycles;
    /// `None` (the default) runs with zero observation overhead.
    pub telemetry_interval: Option<u64>,
    /// Runs with the sentinel enabled: periodic invariant sweeps plus the
    /// forward-progress watchdog ([`ApuSystem::enable_sentinel`]).
    /// `false` (the default) costs nothing in release builds; debug
    /// builds check regardless.
    pub check_invariants: bool,
    /// Forces per-cycle stepping, disabling event-driven time skipping
    /// ([`ApuSystem::set_time_skip`]). The two modes are bit-identical;
    /// this exists for equivalence testing and debugging, and costs
    /// wall-clock time on latency-bound runs.
    pub no_skip: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            max_cycles: DEFAULT_MAX_CYCLES,
            telemetry_interval: None,
            check_invariants: false,
            no_skip: false,
        }
    }
}

impl RunOptions {
    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Run`] for a zero cycle budget or a zero
    /// telemetry interval.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_cycles == 0 {
            return Err(ConfigError::Run("max_cycles must be nonzero".to_string()));
        }
        if self.telemetry_interval == Some(0) {
            return Err(ConfigError::Run(
                "telemetry interval must be at least 1 cycle".to_string(),
            ));
        }
        Ok(())
    }
}

/// The result of one (workload, policy) simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// The policy configuration label (e.g. `CacheRW-PCby`).
    pub policy: PolicyConfig,
    /// All collected statistics.
    pub metrics: Metrics,
    /// The recorded time series, when the run was executed with
    /// [`RunOptions::telemetry_interval`] set (cache hits and plain runs
    /// carry `None`).
    pub telemetry: Option<TelemetryRun>,
}

/// Runs one workload under one policy configuration with the default
/// [`RunOptions`].
///
/// # Errors
///
/// Returns [`SimError::Config`] if the configuration is inconsistent and
/// [`SimError::Timeout`] if the run exceeds [`DEFAULT_MAX_CYCLES`].
pub fn run_one(
    cfg: &SystemConfig,
    workload: &Workload,
    policy: PolicyConfig,
) -> Result<RunResult, SimError> {
    run_one_with(cfg, workload, policy, &RunOptions::default())
}

/// Runs one workload under one policy configuration with explicit
/// [`RunOptions`] (cycle budget, telemetry).
///
/// # Errors
///
/// Returns [`SimError::Config`] if the system, policy or run options are
/// inconsistent and [`SimError::Timeout`] if the run exceeds
/// `opts.max_cycles`.
pub fn run_one_with(
    cfg: &SystemConfig,
    workload: &Workload,
    policy: PolicyConfig,
    opts: &RunOptions,
) -> Result<RunResult, SimError> {
    opts.validate()?;
    cfg.validate()?;
    policy.validate()?;
    let mut sys = ApuSystem::new(cfg.clone(), policy, workload);
    if let Some(interval) = opts.telemetry_interval {
        sys.enable_telemetry(interval);
    }
    if opts.check_invariants {
        sys.enable_sentinel(
            ApuSystem::DEFAULT_CHECK_INTERVAL,
            ApuSystem::DEFAULT_WATCHDOG,
        );
    }
    if opts.no_skip {
        sys.set_time_skip(false);
    }
    let metrics = sys.run_to_completion(opts.max_cycles).map_err(|e| {
        if e.diagnostic.reason == StallReason::InvariantViolation {
            SimError::Halted {
                workload: workload.name.clone(),
                policy: policy.label(),
                diagnostic: e.diagnostic,
            }
        } else {
            SimError::Timeout {
                workload: workload.name.clone(),
                policy: policy.label(),
                max_cycles: e.max_cycles,
                diagnostic: e.diagnostic,
            }
        }
    })?;
    Ok(RunResult {
        workload: workload.name.clone(),
        policy,
        metrics,
        telemetry: sys.take_telemetry(),
    })
}

/// One independent unit of sweep work: simulate `workload` under
/// `policy`.
///
/// Jobs are *descriptions*, not computations: a [`SweepSpec`] enumerates
/// them in a deterministic order and any executor — the serial loops in
/// this module or the `miopt-harness` worker pool — can run them in any
/// order and reassemble identical figure series, because assembly keys on
/// the job id rather than on completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Dense index of this job within its [`SweepSpec`] (also the slot
    /// its result occupies during assembly).
    pub id: usize,
    /// Index into [`SweepSpec::workloads`].
    pub workload: usize,
    /// The policy configuration to simulate under.
    pub policy: PolicyConfig,
}

/// A deliberate executor-level fault to inject into one job of a sweep,
/// for testing executor robustness (the `miopt-harness` pool's panic and
/// timeout paths). Production sweeps carry none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobFault {
    /// [`SweepSpec::run_job`] panics when asked to run this job id.
    Panic(usize),
    /// [`SweepSpec::run_job`] never returns for this job id (sleeps
    /// forever); only a job timeout can reap it.
    Hang(usize),
}

/// A declarative description of a (workload × policy) experiment grid.
///
/// The job list is workload-major and policy-minor, matching the serial
/// execution order of [`run_static_sweep`] / [`run_optimization_ladder`],
/// so a serial executor that walks `jobs` in order reproduces the
/// historical behaviour exactly.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The simulated machine.
    pub cfg: SystemConfig,
    /// The workloads under study.
    pub workloads: Vec<Workload>,
    /// The per-workload policy grid, in figure order. The first
    /// [`SweepSpec::n_static`] entries are the static policies.
    pub policies: Vec<PolicyConfig>,
    /// How many leading entries of `policies` are the static policies
    /// (the Figures 6–9 columns); the rest form the optimization ladder.
    pub n_static: usize,
    /// Execution options applied to every job of the grid.
    pub run_opts: RunOptions,
    /// Deliberate executor-level faults ([`JobFault`]) for robustness
    /// tests; empty (the default) for every real sweep.
    pub faults: Vec<JobFault>,
}

impl SweepSpec {
    /// The Figures 6–9 grid: every workload under each static policy.
    #[must_use]
    pub fn statics(cfg: SystemConfig, workloads: Vec<Workload>) -> SweepSpec {
        SweepSpec {
            cfg,
            workloads,
            policies: CachePolicy::ALL
                .iter()
                .map(|&p| PolicyConfig::of(p))
                .collect(),
            n_static: CachePolicy::ALL.len(),
            run_opts: RunOptions::default(),
            faults: Vec::new(),
        }
    }

    /// The full Figures 6–13 grid: the three static policies plus the
    /// three ladder configurations per workload.
    #[must_use]
    pub fn figures(cfg: SystemConfig, workloads: Vec<Workload>) -> SweepSpec {
        let mut spec = SweepSpec::statics(cfg, workloads);
        spec.policies.extend(optimization_ladder());
        spec
    }

    /// Returns the spec with telemetry sampling enabled at `interval`
    /// cycles for every job.
    #[must_use]
    pub fn with_telemetry(mut self, interval: u64) -> SweepSpec {
        self.run_opts.telemetry_interval = Some(interval);
        self
    }

    /// Returns the spec with sentinel invariant checking and the
    /// forward-progress watchdog enabled for every job (the CLI's
    /// `--check-invariants`).
    #[must_use]
    pub fn with_invariant_checks(mut self) -> SweepSpec {
        self.run_opts.check_invariants = true;
        self
    }

    /// Returns the spec with event-driven time skipping disabled for
    /// every job (the CLI's `--no-skip`): per-cycle stepping throughout,
    /// bit-identical to the default mode but slower on latency-bound
    /// runs.
    #[must_use]
    pub fn with_no_skip(mut self) -> SweepSpec {
        self.run_opts.no_skip = true;
        self
    }

    /// Every job of the grid, in deterministic workload-major order.
    #[must_use]
    pub fn jobs(&self) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.workloads.len() * self.policies.len());
        for w in 0..self.workloads.len() {
            for &policy in &self.policies {
                jobs.push(Job {
                    id: jobs.len(),
                    workload: w,
                    policy,
                });
            }
        }
        jobs
    }

    /// Total number of jobs in the grid.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.workloads.len() * self.policies.len()
    }

    /// Runs one job to completion (the executor-side entry point).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is inconsistent or the
    /// job exceeds the spec's cycle budget.
    ///
    /// # Panics
    ///
    /// Panics (or hangs) when the spec carries a matching injected
    /// [`JobFault`] — robustness tests only.
    pub fn run_job(&self, job: &Job) -> Result<RunResult, SimError> {
        for fault in &self.faults {
            match *fault {
                JobFault::Panic(id) if id == job.id => {
                    panic!("injected fault: job {id} panics")
                }
                JobFault::Hang(id) if id == job.id => loop {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                },
                _ => {}
            }
        }
        run_one_with(
            &self.cfg,
            &self.workloads[job.workload],
            job.policy,
            &self.run_opts,
        )
    }

    /// A short human-readable label for a job (progress reporting).
    #[must_use]
    pub fn job_label(&self, job: &Job) -> String {
        format!("{}/{}", self.workloads[job.workload].name, job.policy)
    }

    /// Reassembles completed job results into the Figures 6–9 static
    /// sweep structure: one row per workload, one static policy per
    /// column.
    ///
    /// `results` must hold one result per job, indexed by job id (the
    /// order [`SweepSpec::jobs`] produces).
    ///
    /// # Panics
    ///
    /// Panics if `results` does not have exactly [`SweepSpec::job_count`]
    /// entries.
    #[must_use]
    pub fn assemble_statics(&self, results: &[RunResult]) -> Vec<Vec<RunResult>> {
        assert_eq!(
            results.len(),
            self.job_count(),
            "one result per job required"
        );
        let stride = self.policies.len();
        (0..self.workloads.len())
            .map(|w| results[w * stride..w * stride + self.n_static].to_vec())
            .collect()
    }

    /// Reassembles completed job results into the Figures 10–13 ladder
    /// structure (only meaningful for specs with ladder policies, i.e.
    /// [`SweepSpec::figures`]).
    ///
    /// # Panics
    ///
    /// Panics if `results` does not have exactly [`SweepSpec::job_count`]
    /// entries, or if the spec has no ladder policies.
    #[must_use]
    pub fn assemble_ladders(&self, results: &[RunResult]) -> Vec<LadderResult> {
        assert_eq!(
            results.len(),
            self.job_count(),
            "one result per job required"
        );
        assert!(
            self.policies.len() > self.n_static,
            "spec has no ladder policies to assemble"
        );
        let stride = self.policies.len();
        (0..self.workloads.len())
            .map(|w| LadderResult {
                workload: self.workloads[w].name.clone(),
                statics: results[w * stride..w * stride + self.n_static].to_vec(),
                ladder: results[w * stride + self.n_static..(w + 1) * stride].to_vec(),
            })
            .collect()
    }
}

/// The Figure 6–9 sweep: every workload under each static policy
/// (`Uncached`, `CacheR`, `CacheRW`), in that order per workload.
///
/// # Errors
///
/// Returns the first job's [`SimError`], if any.
pub fn run_static_sweep(
    cfg: &SystemConfig,
    workloads: &[Workload],
) -> Result<Vec<Vec<RunResult>>, SimError> {
    let spec = SweepSpec::statics(cfg.clone(), workloads.to_vec());
    let results: Vec<RunResult> = spec
        .jobs()
        .iter()
        .map(|j| spec.run_job(j))
        .collect::<Result<_, _>>()?;
    Ok(spec.assemble_statics(&results))
}

/// One workload's Figure 10–13 data: the three static policy runs (from
/// which the paper derives the static best and worst by execution time)
/// plus the three ladder configurations.
#[derive(Debug, Clone)]
pub struct LadderResult {
    /// Workload name.
    pub workload: String,
    /// The three static runs (Uncached, CacheR, CacheRW), in that order.
    pub statics: Vec<RunResult>,
    /// `CacheRW-AB`, `CacheRW-CR`, `CacheRW-PCby`, in order.
    pub ladder: Vec<RunResult>,
}

impl LadderResult {
    /// The fastest static configuration (Figure 10's `StaticBest`).
    #[must_use]
    pub fn static_best(&self) -> &RunResult {
        self.statics
            .iter()
            .min_by_key(|r| r.metrics.cycles)
            .expect("statics nonempty")
    }

    /// The slowest static configuration (Figure 10's `StaticWorst`).
    #[must_use]
    pub fn static_worst(&self) -> &RunResult {
        self.statics
            .iter()
            .max_by_key(|r| r.metrics.cycles)
            .expect("statics nonempty")
    }

    /// The `Uncached` static run (the Figures 7/11 normalization base).
    #[must_use]
    pub fn uncached(&self) -> &RunResult {
        self.statics
            .iter()
            .find(|r| r.policy.policy == CachePolicy::Uncached)
            .expect("statics include Uncached")
    }
}

/// Runs the three ladder configurations for one workload, reusing already
/// computed static results.
///
/// # Errors
///
/// Returns the first ladder job's [`SimError`], if any.
pub fn run_ladder_with_statics(
    cfg: &SystemConfig,
    workload: &Workload,
    statics: Vec<RunResult>,
) -> Result<LadderResult, SimError> {
    assert_eq!(statics.len(), 3, "expect the three static policy runs");
    let ladder = optimization_ladder()
        .into_iter()
        .map(|p| run_one(cfg, workload, p))
        .collect::<Result<_, _>>()?;
    Ok(LadderResult {
        workload: workload.name.clone(),
        statics,
        ladder,
    })
}

/// Runs the optimization ladder for each workload, deriving the static
/// best/worst from a fresh static sweep.
///
/// # Errors
///
/// Returns the first job's [`SimError`], if any.
pub fn run_optimization_ladder(
    cfg: &SystemConfig,
    workloads: &[Workload],
) -> Result<Vec<LadderResult>, SimError> {
    let spec = SweepSpec::figures(cfg.clone(), workloads.to_vec());
    let results: Vec<RunResult> = spec
        .jobs()
        .iter()
        .map(|j| spec.run_job(j))
        .collect::<Result<_, _>>()?;
    Ok(spec.assemble_ladders(&results))
}

/// Classifies a workload from its measured static-sweep results using the
/// paper's Figure 6 rule: <5% spread = insensitive; caching faster =
/// reuse sensitive; caching slower = throughput sensitive.
#[must_use]
pub fn classify(static_runs: &[RunResult]) -> miopt_workloads::Category {
    let unc = static_runs
        .iter()
        .find(|r| r.policy.policy == CachePolicy::Uncached)
        .expect("sweep includes Uncached");
    let best_cached = static_runs
        .iter()
        .filter(|r| r.policy.policy != CachePolicy::Uncached)
        .min_by_key(|r| r.metrics.cycles)
        .expect("sweep includes cached policies");
    let worst_cached = static_runs
        .iter()
        .filter(|r| r.policy.policy != CachePolicy::Uncached)
        .max_by_key(|r| r.metrics.cycles)
        .expect("sweep includes cached policies");
    let base = unc.metrics.cycles as f64;
    let best = best_cached.metrics.cycles as f64 / base;
    let worst = worst_cached.metrics.cycles as f64 / base;
    if best < 0.95 {
        miopt_workloads::Category::ReuseSensitive
    } else if worst > 1.05 {
        miopt_workloads::Category::ThroughputSensitive
    } else {
        miopt_workloads::Category::Insensitive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt_workloads::{by_name, SuiteConfig};

    #[test]
    fn static_sweep_produces_three_runs_per_workload() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let sweep = run_static_sweep(&cfg, &[w]).unwrap();
        assert_eq!(sweep.len(), 1);
        assert_eq!(sweep[0].len(), 3);
        let labels: Vec<String> = sweep[0].iter().map(|r| r.policy.label()).collect();
        assert_eq!(labels, vec!["Uncached", "CacheR", "CacheRW"]);
    }

    #[test]
    fn ladder_orders_best_before_worst() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let ladder = run_optimization_ladder(&cfg, &[w]).unwrap();
        assert_eq!(ladder.len(), 1);
        let l = &ladder[0];
        assert!(l.static_best().metrics.cycles <= l.static_worst().metrics.cycles);
        assert_eq!(l.uncached().policy.policy, CachePolicy::Uncached);
        assert_eq!(l.ladder.len(), 3);
        assert_eq!(l.ladder[2].policy.label(), "CacheRW-PCby");
    }

    #[test]
    fn classify_follows_the_5_percent_rule() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let sweep = run_static_sweep(&cfg, &[w]).unwrap();
        // FwSoft re-reads a tiny array: must not classify as throughput
        // sensitive.
        let c = classify(&sweep[0]);
        assert_ne!(c, miopt_workloads::Category::ThroughputSensitive);
    }

    #[test]
    fn figures_spec_enumerates_the_full_grid_in_serial_order() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let spec = SweepSpec::figures(cfg, vec![w.clone(), w]);
        assert_eq!(spec.job_count(), 12);
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 12);
        // Workload-major, policy-minor, with dense ids.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
            assert_eq!(j.workload, i / 6);
        }
        let labels: Vec<String> = jobs[..6].iter().map(|j| j.policy.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Uncached",
                "CacheR",
                "CacheRW",
                "CacheRW-AB",
                "CacheRW-CR",
                "CacheRW-PCby"
            ]
        );
        assert_eq!(spec.job_label(&jobs[1]), "FwSoft/CacheR");
    }

    #[test]
    fn assembly_reproduces_the_serial_sweep_structures() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let spec = SweepSpec::figures(cfg.clone(), vec![w.clone()]);
        let results: Vec<RunResult> = spec
            .jobs()
            .iter()
            .map(|j| spec.run_job(j).expect("job runs"))
            .collect();
        let statics = spec.assemble_statics(&results);
        let ladders = spec.assemble_ladders(&results);
        let serial_statics = run_static_sweep(&cfg, std::slice::from_ref(&w)).unwrap();
        assert_eq!(statics.len(), 1);
        for (a, b) in statics[0].iter().zip(&serial_statics[0]) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.metrics, b.metrics);
        }
        assert_eq!(ladders.len(), 1);
        assert_eq!(ladders[0].statics.len(), 3);
        assert_eq!(ladders[0].ladder.len(), 3);
        assert_eq!(ladders[0].ladder[2].policy.label(), "CacheRW-PCby");
    }

    /// Builds a synthetic static-sweep result with the given cycle counts
    /// for (Uncached, CacheR, CacheRW).
    fn synthetic_statics(unc: u64, r: u64, rw: u64) -> Vec<RunResult> {
        use miopt_cache::CacheStats;
        use miopt_dram::DramStats;
        use miopt_gpu::GpuStats;
        CachePolicy::ALL
            .iter()
            .zip([unc, r, rw])
            .map(|(&p, cycles)| RunResult {
                workload: "synthetic".to_string(),
                policy: PolicyConfig::of(p),
                metrics: Metrics::from_parts(
                    cycles,
                    GpuStats::default(),
                    DramStats::default(),
                    CacheStats::default(),
                    CacheStats::default(),
                    1.6e9,
                ),
                telemetry: None,
            })
            .collect()
    }

    #[test]
    fn timeout_returns_an_error_instead_of_panicking() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let opts = RunOptions {
            max_cycles: 10,
            ..RunOptions::default()
        };
        let err = run_one_with(&cfg, &w, PolicyConfig::of(CachePolicy::CacheR), &opts)
            .expect_err("10 cycles cannot finish a run");
        match &err {
            SimError::Timeout {
                workload,
                policy,
                max_cycles,
                diagnostic,
            } => {
                assert_eq!(workload, "FwSoft");
                assert_eq!(policy, "CacheR");
                assert_eq!(*max_cycles, 10);
                assert_eq!(diagnostic.reason, StallReason::CycleBudget);
                assert_eq!(diagnostic.cycle, 10);
                assert_eq!(diagnostic.phase, "launch");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(err.to_string().contains("FwSoft/CacheR"));
    }

    #[test]
    fn invalid_options_and_configs_surface_as_config_errors() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let zero_interval = RunOptions {
            telemetry_interval: Some(0),
            ..RunOptions::default()
        };
        assert!(matches!(
            run_one_with(
                &cfg,
                &w,
                PolicyConfig::of(CachePolicy::CacheR),
                &zero_interval
            ),
            Err(SimError::Config(crate::ConfigError::Run(_)))
        ));
        let mut bad = cfg.clone();
        bad.n_cus = 0;
        assert!(matches!(
            run_one(&bad, &w, PolicyConfig::of(CachePolicy::CacheR)),
            Err(SimError::Config(crate::ConfigError::System(_)))
        ));
    }

    #[test]
    fn telemetry_epoch_deltas_sum_to_the_final_counters() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let opts = RunOptions {
            telemetry_interval: Some(1000),
            ..RunOptions::default()
        };
        let r = run_one_with(&cfg, &w, PolicyConfig::of(CachePolicy::CacheRW), &opts).unwrap();
        let run = r.telemetry.expect("telemetry was enabled");
        assert_eq!(run.interval, 1000);
        assert!(run.epochs.len() > 1, "run spans several epochs");
        // Epochs tile the run: contiguous, ending at the final cycle.
        let mut expect_start = 0;
        for e in &run.epochs {
            assert_eq!(e.start_cycle, expect_start);
            expect_start = e.end_cycle;
        }
        assert_eq!(expect_start, r.metrics.cycles);
        // The summed deltas reconstruct every end-of-run counter.
        for (name, total) in run.names.iter().zip(run.totals()) {
            let expected = match name.split_once('.') {
                Some(("gpu", f)) => lookup(&r.metrics.gpu.to_pairs(), f),
                Some(("l1", f)) => lookup(&r.metrics.l1.to_pairs(), f),
                Some(("l2", f)) => lookup(&r.metrics.l2.to_pairs(), f),
                Some(("dram", f)) => lookup(&r.metrics.dram.to_pairs(), f),
                _ => continue, // noc/queue counters are not in Metrics
            };
            assert_eq!(total, expected, "{name}");
        }
        // Phase spans tile the run and the first one is the launch.
        assert_eq!(run.spans[0].name, "launch");
        assert!(run.instants.iter().any(|i| i.name.starts_with("kernel:")));
        let mut expect_start = 0;
        for s in &run.spans {
            assert_eq!(s.start_cycle, expect_start, "{}", s.name);
            expect_start = s.end_cycle;
        }
        assert_eq!(expect_start, r.metrics.cycles);
    }

    fn lookup(pairs: &[(&'static str, u64)], field: &str) -> u64 {
        pairs
            .iter()
            .find(|(n, _)| *n == field)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("unknown field {field}"))
    }

    #[test]
    fn telemetry_off_and_on_simulate_identically() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let p = PolicyConfig::of(CachePolicy::CacheRW);
        let plain = run_one(&cfg, &w, p).unwrap();
        let opts = RunOptions {
            telemetry_interval: Some(500),
            ..RunOptions::default()
        };
        let traced = run_one_with(&cfg, &w, p, &opts).unwrap();
        assert_eq!(plain.metrics, traced.metrics);
    }

    #[test]
    fn classify_boundary_spread_exactly_at_5_percent_is_insensitive() {
        use miopt_workloads::Category::*;
        // best = 0.95 exactly: `best < 0.95` is false -> not reuse
        // sensitive; worst = 1.05 exactly: `worst > 1.05` is false -> not
        // throughput sensitive. Both thresholds are exclusive.
        assert_eq!(
            classify(&synthetic_statics(10_000, 9_500, 10_500)),
            Insensitive
        );
        // One cycle inside either threshold flips the class.
        assert_eq!(
            classify(&synthetic_statics(10_000, 9_499, 10_000)),
            ReuseSensitive
        );
        assert_eq!(
            classify(&synthetic_statics(10_000, 10_000, 10_501)),
            ThroughputSensitive
        );
    }

    #[test]
    fn classify_boundary_tied_cached_policies() {
        use miopt_workloads::Category::*;
        // CacheR and CacheRW tied: best == worst, so only one side of the
        // rule can trigger.
        assert_eq!(
            classify(&synthetic_statics(10_000, 9_000, 9_000)),
            ReuseSensitive
        );
        assert_eq!(
            classify(&synthetic_statics(10_000, 11_000, 11_000)),
            ThroughputSensitive
        );
        assert_eq!(
            classify(&synthetic_statics(10_000, 10_000, 10_000)),
            Insensitive
        );
    }

    #[test]
    fn classify_boundary_cached_policies_straddling_uncached() {
        use miopt_workloads::Category::*;
        // CacheR clearly faster, CacheRW clearly slower than Uncached.
        // The paper's rule checks `best < 0.95` first, so a workload
        // where caching can both help and hurt reads as reuse sensitive.
        assert_eq!(
            classify(&synthetic_statics(10_000, 8_000, 12_000)),
            ReuseSensitive
        );
        // Straddling inside the 5% band stays insensitive.
        assert_eq!(
            classify(&synthetic_statics(10_000, 9_600, 10_400)),
            Insensitive
        );
    }
}
