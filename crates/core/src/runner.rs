//! Figure-level experiment sweeps.
//!
//! Each function here regenerates the data behind one or more of the
//! paper's figures; the `miopt-bench` crate formats them into the printed
//! tables and Criterion benches.

use crate::{optimization_ladder, ApuSystem, CachePolicy, Metrics, PolicyConfig, SystemConfig};
use miopt_workloads::Workload;

/// Cycle budget for a single run before declaring a hang.
const MAX_CYCLES: u64 = 20_000_000_000;

/// The result of one (workload, policy) simulation.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// The policy configuration label (e.g. `CacheRW-PCby`).
    pub policy: PolicyConfig,
    /// All collected statistics.
    pub metrics: Metrics,
}

/// Runs one workload under one policy configuration.
///
/// # Panics
///
/// Panics if the simulation exceeds its internal cycle budget, which
/// indicates a configuration error rather than a slow run.
#[must_use]
pub fn run_one(cfg: &SystemConfig, workload: &Workload, policy: PolicyConfig) -> RunResult {
    let mut sys = ApuSystem::new(cfg.clone(), policy, workload);
    let metrics = sys
        .run_to_completion(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{}/{policy}: {e}", workload.name));
    RunResult {
        workload: workload.name.clone(),
        policy,
        metrics,
    }
}

/// The Figure 6–9 sweep: every workload under each static policy
/// (`Uncached`, `CacheR`, `CacheRW`), in that order per workload.
#[must_use]
pub fn run_static_sweep(cfg: &SystemConfig, workloads: &[Workload]) -> Vec<Vec<RunResult>> {
    workloads
        .iter()
        .map(|w| {
            CachePolicy::ALL
                .iter()
                .map(|&p| run_one(cfg, w, PolicyConfig::of(p)))
                .collect()
        })
        .collect()
}

/// One workload's Figure 10–13 data: the three static policy runs (from
/// which the paper derives the static best and worst by execution time)
/// plus the three ladder configurations.
#[derive(Debug, Clone)]
pub struct LadderResult {
    /// Workload name.
    pub workload: String,
    /// The three static runs (Uncached, CacheR, CacheRW), in that order.
    pub statics: Vec<RunResult>,
    /// `CacheRW-AB`, `CacheRW-CR`, `CacheRW-PCby`, in order.
    pub ladder: Vec<RunResult>,
}

impl LadderResult {
    /// The fastest static configuration (Figure 10's `StaticBest`).
    #[must_use]
    pub fn static_best(&self) -> &RunResult {
        self.statics
            .iter()
            .min_by_key(|r| r.metrics.cycles)
            .expect("statics nonempty")
    }

    /// The slowest static configuration (Figure 10's `StaticWorst`).
    #[must_use]
    pub fn static_worst(&self) -> &RunResult {
        self.statics
            .iter()
            .max_by_key(|r| r.metrics.cycles)
            .expect("statics nonempty")
    }

    /// The `Uncached` static run (the Figures 7/11 normalization base).
    #[must_use]
    pub fn uncached(&self) -> &RunResult {
        self.statics
            .iter()
            .find(|r| r.policy.policy == CachePolicy::Uncached)
            .expect("statics include Uncached")
    }
}

/// Runs the three ladder configurations for one workload, reusing already
/// computed static results.
#[must_use]
pub fn run_ladder_with_statics(
    cfg: &SystemConfig,
    workload: &Workload,
    statics: Vec<RunResult>,
) -> LadderResult {
    assert_eq!(statics.len(), 3, "expect the three static policy runs");
    let ladder = optimization_ladder()
        .into_iter()
        .map(|p| run_one(cfg, workload, p))
        .collect();
    LadderResult {
        workload: workload.name.clone(),
        statics,
        ladder,
    }
}

/// Runs the optimization ladder for each workload, deriving the static
/// best/worst from a fresh static sweep.
#[must_use]
pub fn run_optimization_ladder(cfg: &SystemConfig, workloads: &[Workload]) -> Vec<LadderResult> {
    workloads
        .iter()
        .map(|w| {
            let statics: Vec<RunResult> = CachePolicy::ALL
                .iter()
                .map(|&p| run_one(cfg, w, PolicyConfig::of(p)))
                .collect();
            run_ladder_with_statics(cfg, w, statics)
        })
        .collect()
}

/// Classifies a workload from its measured static-sweep results using the
/// paper's Figure 6 rule: <5% spread = insensitive; caching faster =
/// reuse sensitive; caching slower = throughput sensitive.
#[must_use]
pub fn classify(static_runs: &[RunResult]) -> miopt_workloads::Category {
    let unc = static_runs
        .iter()
        .find(|r| r.policy.policy == CachePolicy::Uncached)
        .expect("sweep includes Uncached");
    let best_cached = static_runs
        .iter()
        .filter(|r| r.policy.policy != CachePolicy::Uncached)
        .min_by_key(|r| r.metrics.cycles)
        .expect("sweep includes cached policies");
    let worst_cached = static_runs
        .iter()
        .filter(|r| r.policy.policy != CachePolicy::Uncached)
        .max_by_key(|r| r.metrics.cycles)
        .expect("sweep includes cached policies");
    let base = unc.metrics.cycles as f64;
    let best = best_cached.metrics.cycles as f64 / base;
    let worst = worst_cached.metrics.cycles as f64 / base;
    if best < 0.95 {
        miopt_workloads::Category::ReuseSensitive
    } else if worst > 1.05 {
        miopt_workloads::Category::ThroughputSensitive
    } else {
        miopt_workloads::Category::Insensitive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt_workloads::{by_name, SuiteConfig};

    #[test]
    fn static_sweep_produces_three_runs_per_workload() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let sweep = run_static_sweep(&cfg, &[w]);
        assert_eq!(sweep.len(), 1);
        assert_eq!(sweep[0].len(), 3);
        let labels: Vec<String> = sweep[0].iter().map(|r| r.policy.label()).collect();
        assert_eq!(labels, vec!["Uncached", "CacheR", "CacheRW"]);
    }

    #[test]
    fn ladder_orders_best_before_worst() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let ladder = run_optimization_ladder(&cfg, &[w]);
        assert_eq!(ladder.len(), 1);
        let l = &ladder[0];
        assert!(l.static_best().metrics.cycles <= l.static_worst().metrics.cycles);
        assert_eq!(l.uncached().policy.policy, CachePolicy::Uncached);
        assert_eq!(l.ladder.len(), 3);
        assert_eq!(l.ladder[2].policy.label(), "CacheRW-PCby");
    }

    #[test]
    fn classify_follows_the_5_percent_rule() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let sweep = run_static_sweep(&cfg, &[w]);
        // FwSoft re-reads a tiny array: must not classify as throughput
        // sensitive.
        let c = classify(&sweep[0]);
        assert_ne!(c, miopt_workloads::Category::ThroughputSensitive);
    }
}
