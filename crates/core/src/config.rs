use miopt_cache::{CacheConfig, RowMap};
use miopt_dram::DramConfig;
use miopt_engine::util::log2;
use miopt_gpu::CuConfig;
use std::error::Error;
use std::fmt;

/// A typed validation error naming the configuration layer that rejected
/// its parameters.
///
/// Produced by [`SystemConfig::validate`], [`SystemConfigBuilder::build`],
/// [`crate::PolicyConfig::new`] and
/// [`crate::runner::RunOptions::validate`], and carried into
/// [`crate::runner::SimError::Config`] by the runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A system-level parameter (CU count, queue sizing, clock…) is
    /// invalid.
    System(String),
    /// The L1 cache geometry is invalid (e.g. zero ways).
    L1(String),
    /// The L2 cache geometry is invalid.
    L2(String),
    /// The DRAM geometry is invalid.
    Dram(String),
    /// The cache-policy combination is inconsistent.
    Policy(String),
    /// The run options are invalid (e.g. a telemetry interval of 0).
    Run(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::System(msg) => write!(f, "system config: {msg}"),
            ConfigError::L1(msg) => write!(f, "l1 config: {msg}"),
            ConfigError::L2(msg) => write!(f, "l2 config: {msg}"),
            ConfigError::Dram(msg) => write!(f, "dram config: {msg}"),
            ConfigError::Policy(msg) => write!(f, "policy config: {msg}"),
            ConfigError::Run(msg) => write!(f, "run options: {msg}"),
        }
    }
}

impl Error for ConfigError {}

/// Full-system configuration (the paper's Table 1).
///
/// # Examples
///
/// ```
/// use miopt::SystemConfig;
///
/// let cfg = SystemConfig::paper_table1();
/// assert_eq!(cfg.n_cus, 64);
/// assert_eq!(cfg.l2_slices, 16);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Compute units (Table 1: 64).
    pub n_cus: usize,
    /// Per-CU geometry.
    pub cu: CuConfig,
    /// Per-CU L1 data cache.
    pub l1: CacheConfig,
    /// L2 slices (address-interleaved; Table 1's 4 MB L2 is 16 x 256 KB).
    pub l2_slices: usize,
    /// Per-slice L2 geometry.
    pub l2: CacheConfig,
    /// The HBM2 memory system.
    pub dram: DramConfig,
    /// GPU clock in Hz (Table 1: 1.6 GHz); converts cycles to seconds for
    /// the GVOPS / GMR/s figures.
    pub gpu_clock_hz: f64,
    /// CU → L1 request latency (cycles).
    pub lat_cu_l1: u64,
    /// L1 → CU response latency.
    pub lat_l1_resp: u64,
    /// L1 → crossbar → L2 request latency.
    pub lat_l1_l2: u64,
    /// L2 → crossbar → L1 response latency.
    pub lat_l2_resp: u64,
    /// L2 → DRAM request latency.
    pub lat_l2_dram: u64,
    /// DRAM → L2 response latency.
    pub lat_dram_resp: u64,
    /// Queue capacities between stages.
    pub queue_capacity: usize,
    /// Messages per output port per cycle through the crossbars.
    pub xbar_per_output: u32,
    /// Cycles of host work between kernel launches (driver + dispatch).
    pub launch_overhead: u64,
}

impl SystemConfig {
    /// The paper's Table 1 system: 64 CUs at 1.6 GHz, 16 KB 16-way L1 per
    /// CU, 4 MB 16-way shared L2, HBM2 at 512 GB/s, with uncontested
    /// L1/L2/memory latencies of roughly 50/125/225 cycles.
    #[must_use]
    pub fn paper_table1() -> SystemConfig {
        SystemConfig {
            n_cus: 64,
            cu: CuConfig::paper(),
            l1: CacheConfig::l1_paper(),
            l2_slices: 16,
            l2: CacheConfig::l2_slice_paper(),
            dram: DramConfig::hbm2_paper(),
            gpu_clock_hz: 1.6e9,
            lat_cu_l1: 24,
            lat_l1_resp: 24,
            lat_l1_l2: 36,
            lat_l2_resp: 36,
            lat_l2_dram: 25,
            lat_dram_resp: 25,
            queue_capacity: 32,
            xbar_per_output: 4,
            launch_overhead: 3000,
        }
    }

    /// A small system for fast unit and integration tests: 4 CUs, 2 L2
    /// slices, tiny DRAM, short latencies.
    #[must_use]
    pub fn small_test() -> SystemConfig {
        SystemConfig {
            n_cus: 4,
            cu: CuConfig {
                simds: 2,
                wf_slots_per_simd: 4,
                mem_issue_per_cycle: 1,
            },
            l1: CacheConfig {
                sets: 8,
                ways: 4,
                mshr_entries: 8,
                mshr_merge_cap: 4,
                port_width: 1,
                dbi_rows: 0,
                flush_width: 2,
                index_low_bits: 31,
                index_skip_bits: 0,
            },
            l2_slices: 2,
            l2: CacheConfig {
                sets: 256,
                ways: 8,
                mshr_entries: 16,
                mshr_merge_cap: 8,
                port_width: 1,
                dbi_rows: 16,
                flush_width: 2,
                // tiny DRAM: 8-line rows (3 column bits), 2 slices (1 bit).
                index_low_bits: 3,
                index_skip_bits: 1,
            },
            dram: DramConfig::tiny_test(),
            gpu_clock_hz: 1.6e9,
            lat_cu_l1: 4,
            lat_l1_resp: 4,
            lat_l1_l2: 4,
            lat_l2_resp: 4,
            lat_l2_dram: 2,
            lat_dram_resp: 2,
            queue_capacity: 16,
            xbar_per_output: 2,
            launch_overhead: 100,
        }
    }

    /// The [`RowMap`] matching this configuration's DRAM address mapping
    /// (used by the L2 dirty-block index).
    ///
    /// # Panics
    ///
    /// Panics if the DRAM geometry is not power-of-two sized.
    #[must_use]
    pub fn row_map(&self) -> RowMap {
        // The DRAM layout is | column | channel | bank | row |, so
        // stripping the column bits identifies the row uniquely.
        RowMap::new(0, log2(self.dram.lines_per_row))
    }

    /// Which L2 slice a line belongs to: row-aligned so that a DRAM row's
    /// lines live in one slice (the dirty-block index tracks whole rows)
    /// and each slice fronts one DRAM channel.
    #[must_use]
    pub fn l2_slice_of(&self, line: miopt_engine::LineAddr) -> usize {
        ((line.0 >> log2(self.dram.lines_per_row)) as usize) % self.l2_slices
    }

    /// A builder seeded from [`SystemConfig::paper_table1`] whose
    /// [`SystemConfigBuilder::build`] validates the result, turning
    /// inconsistent configurations into typed errors instead of panics
    /// deep inside [`crate::ApuSystem::new`].
    #[must_use]
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::from_base(SystemConfig::paper_table1())
    }

    /// Validates all component configurations.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint, tagged with the layer that
    /// rejected it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_cus == 0 {
            return Err(ConfigError::System("n_cus must be nonzero".to_string()));
        }
        if self.l2_slices == 0 {
            return Err(ConfigError::System("l2_slices must be nonzero".to_string()));
        }
        self.l1.validate().map_err(ConfigError::L1)?;
        self.l2.validate().map_err(ConfigError::L2)?;
        self.dram.validate().map_err(ConfigError::Dram)?;
        if self.queue_capacity == 0 {
            return Err(ConfigError::System(
                "queue_capacity must be nonzero".to_string(),
            ));
        }
        // Undersized queues could deadlock fills behind merged misses.
        if self.queue_capacity <= self.l1.mshr_merge_cap
            || self.queue_capacity <= self.l2.mshr_merge_cap
        {
            return Err(ConfigError::System(format!(
                "queue_capacity ({}) must exceed the L1/L2 MSHR merge caps ({}/{})",
                self.queue_capacity, self.l1.mshr_merge_cap, self.l2.mshr_merge_cap
            )));
        }
        if self.gpu_clock_hz <= 0.0 {
            return Err(ConfigError::System(
                "gpu_clock_hz must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// Seconds represented by `cycles` at this configuration's clock.
    #[must_use]
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.gpu_clock_hz
    }
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig::paper_table1()
    }
}

/// A validating builder for [`SystemConfig`].
///
/// Starts from a known-good base (Table 1 via [`SystemConfig::builder`],
/// or any config via [`SystemConfigBuilder::from_base`]), applies
/// overrides, and checks every cross-field constraint in
/// [`SystemConfigBuilder::build`] so misconfigurations surface as
/// [`ConfigError`]s at construction time instead of panics at run time.
///
/// # Examples
///
/// ```
/// use miopt::SystemConfig;
///
/// let cfg = SystemConfig::builder()
///     .n_cus(32)
///     .launch_overhead(1500)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.n_cus, 32);
///
/// // Inconsistent parameters are rejected with a typed error.
/// assert!(SystemConfig::builder().queue_capacity(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Starts a builder from an existing configuration.
    #[must_use]
    pub fn from_base(cfg: SystemConfig) -> SystemConfigBuilder {
        SystemConfigBuilder { cfg }
    }

    /// Sets the number of compute units.
    #[must_use]
    pub fn n_cus(mut self, n_cus: usize) -> SystemConfigBuilder {
        self.cfg.n_cus = n_cus;
        self
    }

    /// Sets the per-CU geometry.
    #[must_use]
    pub fn cu(mut self, cu: CuConfig) -> SystemConfigBuilder {
        self.cfg.cu = cu;
        self
    }

    /// Sets the per-CU L1 cache geometry.
    #[must_use]
    pub fn l1(mut self, l1: CacheConfig) -> SystemConfigBuilder {
        self.cfg.l1 = l1;
        self
    }

    /// Sets the number of L2 slices.
    #[must_use]
    pub fn l2_slices(mut self, l2_slices: usize) -> SystemConfigBuilder {
        self.cfg.l2_slices = l2_slices;
        self
    }

    /// Sets the per-slice L2 geometry.
    #[must_use]
    pub fn l2(mut self, l2: CacheConfig) -> SystemConfigBuilder {
        self.cfg.l2 = l2;
        self
    }

    /// Applies an in-place edit to the L1 geometry (ablation sweeps).
    #[must_use]
    pub fn map_l1(mut self, edit: impl FnOnce(&mut CacheConfig)) -> SystemConfigBuilder {
        edit(&mut self.cfg.l1);
        self
    }

    /// Applies an in-place edit to the L2 geometry (ablation sweeps).
    #[must_use]
    pub fn map_l2(mut self, edit: impl FnOnce(&mut CacheConfig)) -> SystemConfigBuilder {
        edit(&mut self.cfg.l2);
        self
    }

    /// Sets the DRAM geometry.
    #[must_use]
    pub fn dram(mut self, dram: DramConfig) -> SystemConfigBuilder {
        self.cfg.dram = dram;
        self
    }

    /// Sets the GPU clock in Hz.
    #[must_use]
    pub fn gpu_clock_hz(mut self, gpu_clock_hz: f64) -> SystemConfigBuilder {
        self.cfg.gpu_clock_hz = gpu_clock_hz;
        self
    }

    /// Sets the inter-stage queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, queue_capacity: usize) -> SystemConfigBuilder {
        self.cfg.queue_capacity = queue_capacity;
        self
    }

    /// Sets the crossbar per-output budget.
    #[must_use]
    pub fn xbar_per_output(mut self, xbar_per_output: u32) -> SystemConfigBuilder {
        self.cfg.xbar_per_output = xbar_per_output;
        self
    }

    /// Sets the host-side launch overhead in cycles.
    #[must_use]
    pub fn launch_overhead(mut self, launch_overhead: u64) -> SystemConfigBuilder {
        self.cfg.launch_overhead = launch_overhead;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (see
    /// [`SystemConfig::validate`]).
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt_engine::LineAddr;

    #[test]
    fn paper_config_matches_table_1() {
        let c = SystemConfig::paper_table1();
        c.validate().unwrap();
        assert_eq!(c.n_cus, 64);
        assert_eq!(c.cu.simds, 4);
        assert_eq!(c.cu.wf_slots_per_simd, 10);
        assert_eq!(c.l1.bytes(), 16 * 1024);
        assert_eq!(c.l2.bytes() * c.l2_slices as u64, 4 * 1024 * 1024);
        assert_eq!(c.dram.channels, 16);
        assert!((c.gpu_clock_hz - 1.6e9).abs() < 1.0);
    }

    #[test]
    fn small_test_config_is_valid() {
        SystemConfig::small_test().validate().unwrap();
    }

    #[test]
    fn builder_round_trips_the_base_and_applies_overrides() {
        assert_eq!(
            SystemConfig::builder().build().unwrap(),
            SystemConfig::paper_table1()
        );
        let cfg = SystemConfigBuilder::from_base(SystemConfig::small_test())
            .launch_overhead(7)
            .map_l1(|l1| l1.mshr_entries = 2)
            .build()
            .unwrap();
        assert_eq!(cfg.launch_overhead, 7);
        assert_eq!(cfg.l1.mshr_entries, 2);
    }

    #[test]
    fn builder_rejects_inconsistent_configs_with_typed_errors() {
        assert!(matches!(
            SystemConfig::builder().n_cus(0).build(),
            Err(ConfigError::System(_))
        ));
        assert!(matches!(
            SystemConfig::builder().map_l1(|l1| l1.ways = 0).build(),
            Err(ConfigError::L1(_))
        ));
        assert!(matches!(
            SystemConfig::builder().map_l2(|l2| l2.sets = 0).build(),
            Err(ConfigError::L2(_))
        ));
        // A queue sized at or below the MSHR merge cap could deadlock.
        let err = SystemConfig::builder().queue_capacity(4).build();
        assert!(matches!(err, Err(ConfigError::System(ref m)) if m.contains("merge caps")));
    }

    #[test]
    fn slice_routing_covers_all_slices() {
        let c = SystemConfig::paper_table1();
        let mut seen = vec![false; c.l2_slices];
        for l in 0..(c.dram.lines_per_row * 16) {
            seen[c.l2_slice_of(LineAddr(l))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn seconds_uses_the_clock() {
        let c = SystemConfig::paper_table1();
        assert!((c.seconds(1_600_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn row_map_is_consistent_with_dram() {
        let c = SystemConfig::paper_table1();
        let map = c.row_map();
        let dmap = miopt_dram::AddressMap::new(&c.dram);
        // Two lines in the same DRAM row must share a row key, and
        // different rows must differ.
        for (a, b, same) in [
            (0u64, 1, true), // next column, same row
            (0, 31, true),   // last column of the same row
            (0, 32, false),  // next channel
            (0, 512, false), // next bank
        ] {
            let la = dmap.locate(LineAddr(a));
            let lb = dmap.locate(LineAddr(b));
            let keys_same = map.key(LineAddr(a)) == map.key(LineAddr(b));
            let locs_same = (la.channel, la.bank, la.row) == (lb.channel, lb.bank, lb.row);
            assert_eq!(keys_same, same, "{a} vs {b}");
            assert_eq!(locs_same, same, "{a} vs {b} (dram)");
        }
    }
}
