use miopt_cache::{CacheConfig, RowMap};
use miopt_dram::DramConfig;
use miopt_engine::util::log2;
use miopt_gpu::CuConfig;

/// Full-system configuration (the paper's Table 1).
///
/// # Examples
///
/// ```
/// use miopt::SystemConfig;
///
/// let cfg = SystemConfig::paper_table1();
/// assert_eq!(cfg.n_cus, 64);
/// assert_eq!(cfg.l2_slices, 16);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Compute units (Table 1: 64).
    pub n_cus: usize,
    /// Per-CU geometry.
    pub cu: CuConfig,
    /// Per-CU L1 data cache.
    pub l1: CacheConfig,
    /// L2 slices (address-interleaved; Table 1's 4 MB L2 is 16 x 256 KB).
    pub l2_slices: usize,
    /// Per-slice L2 geometry.
    pub l2: CacheConfig,
    /// The HBM2 memory system.
    pub dram: DramConfig,
    /// GPU clock in Hz (Table 1: 1.6 GHz); converts cycles to seconds for
    /// the GVOPS / GMR/s figures.
    pub gpu_clock_hz: f64,
    /// CU → L1 request latency (cycles).
    pub lat_cu_l1: u64,
    /// L1 → CU response latency.
    pub lat_l1_resp: u64,
    /// L1 → crossbar → L2 request latency.
    pub lat_l1_l2: u64,
    /// L2 → crossbar → L1 response latency.
    pub lat_l2_resp: u64,
    /// L2 → DRAM request latency.
    pub lat_l2_dram: u64,
    /// DRAM → L2 response latency.
    pub lat_dram_resp: u64,
    /// Queue capacities between stages.
    pub queue_capacity: usize,
    /// Messages per output port per cycle through the crossbars.
    pub xbar_per_output: u32,
    /// Cycles of host work between kernel launches (driver + dispatch).
    pub launch_overhead: u64,
}

impl SystemConfig {
    /// The paper's Table 1 system: 64 CUs at 1.6 GHz, 16 KB 16-way L1 per
    /// CU, 4 MB 16-way shared L2, HBM2 at 512 GB/s, with uncontested
    /// L1/L2/memory latencies of roughly 50/125/225 cycles.
    #[must_use]
    pub fn paper_table1() -> SystemConfig {
        SystemConfig {
            n_cus: 64,
            cu: CuConfig::paper(),
            l1: CacheConfig::l1_paper(),
            l2_slices: 16,
            l2: CacheConfig::l2_slice_paper(),
            dram: DramConfig::hbm2_paper(),
            gpu_clock_hz: 1.6e9,
            lat_cu_l1: 24,
            lat_l1_resp: 24,
            lat_l1_l2: 36,
            lat_l2_resp: 36,
            lat_l2_dram: 25,
            lat_dram_resp: 25,
            queue_capacity: 32,
            xbar_per_output: 4,
            launch_overhead: 3000,
        }
    }

    /// A small system for fast unit and integration tests: 4 CUs, 2 L2
    /// slices, tiny DRAM, short latencies.
    #[must_use]
    pub fn small_test() -> SystemConfig {
        SystemConfig {
            n_cus: 4,
            cu: CuConfig {
                simds: 2,
                wf_slots_per_simd: 4,
                mem_issue_per_cycle: 1,
            },
            l1: CacheConfig {
                sets: 8,
                ways: 4,
                mshr_entries: 8,
                mshr_merge_cap: 4,
                port_width: 1,
                dbi_rows: 0,
                flush_width: 2,
                index_low_bits: 31,
                index_skip_bits: 0,
            },
            l2_slices: 2,
            l2: CacheConfig {
                sets: 256,
                ways: 8,
                mshr_entries: 16,
                mshr_merge_cap: 8,
                port_width: 1,
                dbi_rows: 16,
                flush_width: 2,
                // tiny DRAM: 8-line rows (3 column bits), 2 slices (1 bit).
                index_low_bits: 3,
                index_skip_bits: 1,
            },
            dram: DramConfig::tiny_test(),
            gpu_clock_hz: 1.6e9,
            lat_cu_l1: 4,
            lat_l1_resp: 4,
            lat_l1_l2: 4,
            lat_l2_resp: 4,
            lat_l2_dram: 2,
            lat_dram_resp: 2,
            queue_capacity: 16,
            xbar_per_output: 2,
            launch_overhead: 100,
        }
    }

    /// The [`RowMap`] matching this configuration's DRAM address mapping
    /// (used by the L2 dirty-block index).
    ///
    /// # Panics
    ///
    /// Panics if the DRAM geometry is not power-of-two sized.
    #[must_use]
    pub fn row_map(&self) -> RowMap {
        // The DRAM layout is | column | channel | bank | row |, so
        // stripping the column bits identifies the row uniquely.
        RowMap::new(0, log2(self.dram.lines_per_row))
    }

    /// Which L2 slice a line belongs to: row-aligned so that a DRAM row's
    /// lines live in one slice (the dirty-block index tracks whole rows)
    /// and each slice fronts one DRAM channel.
    #[must_use]
    pub fn l2_slice_of(&self, line: miopt_engine::LineAddr) -> usize {
        ((line.0 >> log2(self.dram.lines_per_row)) as usize) % self.l2_slices
    }

    /// Validates all component configurations.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cus == 0 {
            return Err("n_cus must be nonzero".to_string());
        }
        if self.l2_slices == 0 {
            return Err("l2_slices must be nonzero".to_string());
        }
        self.l1.validate()?;
        self.l2.validate()?;
        self.dram.validate()?;
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be nonzero".to_string());
        }
        if self.gpu_clock_hz <= 0.0 {
            return Err("gpu_clock_hz must be positive".to_string());
        }
        Ok(())
    }

    /// Seconds represented by `cycles` at this configuration's clock.
    #[must_use]
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.gpu_clock_hz
    }
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig::paper_table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt_engine::LineAddr;

    #[test]
    fn paper_config_matches_table_1() {
        let c = SystemConfig::paper_table1();
        c.validate().unwrap();
        assert_eq!(c.n_cus, 64);
        assert_eq!(c.cu.simds, 4);
        assert_eq!(c.cu.wf_slots_per_simd, 10);
        assert_eq!(c.l1.bytes(), 16 * 1024);
        assert_eq!(c.l2.bytes() * c.l2_slices as u64, 4 * 1024 * 1024);
        assert_eq!(c.dram.channels, 16);
        assert!((c.gpu_clock_hz - 1.6e9).abs() < 1.0);
    }

    #[test]
    fn small_test_config_is_valid() {
        SystemConfig::small_test().validate().unwrap();
    }

    #[test]
    fn slice_routing_covers_all_slices() {
        let c = SystemConfig::paper_table1();
        let mut seen = vec![false; c.l2_slices];
        for l in 0..(c.dram.lines_per_row * 16) {
            seen[c.l2_slice_of(LineAddr(l))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn seconds_uses_the_clock() {
        let c = SystemConfig::paper_table1();
        assert!((c.seconds(1_600_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn row_map_is_consistent_with_dram() {
        let c = SystemConfig::paper_table1();
        let map = c.row_map();
        let dmap = miopt_dram::AddressMap::new(&c.dram);
        // Two lines in the same DRAM row must share a row key, and
        // different rows must differ.
        for (a, b, same) in [
            (0u64, 1, true), // next column, same row
            (0, 31, true),   // last column of the same row
            (0, 32, false),  // next channel
            (0, 512, false), // next bank
        ] {
            let la = dmap.locate(LineAddr(a));
            let lb = dmap.locate(LineAddr(b));
            let keys_same = map.key(LineAddr(a)) == map.key(LineAddr(b));
            let locs_same = (la.channel, la.bank, la.row) == (lb.channel, lb.bank, lb.row);
            assert_eq!(keys_same, same, "{a} vs {b}");
            assert_eq!(locs_same, same, "{a} vs {b} (dram)");
        }
    }
}
