use crate::{Metrics, PolicyConfig, SystemConfig};
use miopt_cache::{CacheStats, CacheUnit};
use miopt_dram::Dram;
use miopt_engine::{Cycle, MemReq, MemResp, TimedQueue};
use miopt_gpu::{Gpu, KernelDesc};
use miopt_noc::Crossbar;
use miopt_telemetry::{Frame, Recorder, TelemetryRun};
use miopt_workloads::Workload;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Returned by [`ApuSystem::run_to_completion`] when the cycle budget is
/// exhausted — almost always a configuration error (e.g. a queue sized
/// below the MSHR merge cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimTimeoutError {
    /// The budget that was exceeded.
    pub max_cycles: u64,
}

impl fmt::Display for SimTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation exceeded {} cycles", self.max_cycles)
    }
}

impl Error for SimTimeoutError {}

/// Where the system is in the kernel-boundary protocol (paper Section
/// III): launch → run → drain → release flush → drain → self-invalidate →
/// next launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Host-side launch overhead until the given cycle.
    Launching { until: Cycle },
    /// Wavefronts executing.
    Running,
    /// Wavefronts done; draining in-flight memory operations.
    DrainKernel,
    /// Writing back all L2 dirty data (release at a system-scope
    /// synchronization point).
    Flushing,
    /// Draining the flush writebacks to DRAM.
    DrainFlush,
    /// All launches complete.
    Finished,
}

/// The simulated APU: the GPU of [`miopt_gpu`], per-CU L1s, the sliced
/// shared L2, request/response crossbars, and HBM2 DRAM, driven one cycle
/// at a time.
///
/// # Examples
///
/// ```
/// use miopt::{ApuSystem, CachePolicy, PolicyConfig, SystemConfig};
/// use miopt_workloads::{by_name, SuiteConfig};
///
/// let workload = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
/// let mut sys = ApuSystem::new(
///     SystemConfig::small_test(),
///     PolicyConfig::of(CachePolicy::CacheR),
///     &workload,
/// );
/// let metrics = sys.run_to_completion(50_000_000).unwrap();
/// assert!(metrics.cycles > 0);
/// ```
#[derive(Debug)]
pub struct ApuSystem {
    cfg: SystemConfig,
    gpu: Gpu,
    l1_in: Vec<TimedQueue<MemReq>>,
    l1s: Vec<CacheUnit>,
    l1_down: Vec<TimedQueue<MemReq>>,
    req_xbar: Crossbar,
    l2_in: Vec<TimedQueue<MemReq>>,
    l2s: Vec<CacheUnit>,
    l2_down: Vec<TimedQueue<MemReq>>,
    dram: Dram,
    dram_resp: Vec<TimedQueue<MemResp>>,
    resp_holdover: VecDeque<MemResp>,
    l2_up: Vec<TimedQueue<MemResp>>,
    resp_xbar: Crossbar,
    l1_fill_in: Vec<TimedQueue<MemResp>>,
    l1_up: Vec<TimedQueue<MemResp>>,
    now: Cycle,
    phase: Phase,
    launches: VecDeque<(Arc<KernelDesc>, u32)>,
    /// Epoch sampler; `None` (the default) keeps [`ApuSystem::step`] on a
    /// branch-only fast path with no recording overhead.
    telemetry: Option<Box<Recorder>>,
}

impl ApuSystem {
    /// Builds a system ready to execute `workload` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]); use [`SystemConfig::builder`] or
    /// [`crate::runner::run_one`] for non-panicking validation.
    #[must_use]
    pub fn new(cfg: SystemConfig, policy: PolicyConfig, workload: &Workload) -> ApuSystem {
        cfg.validate().expect("invalid system config");
        let n = cfg.n_cus;
        let s = cfg.l2_slices;
        let row_map = cfg.row_map();
        let l1_policy = policy.l1_policy();
        let l2_policy = policy.l2_policy(row_map);
        let mk_req = |cap: usize, lat: u64| TimedQueue::<MemReq>::new(cap, lat);
        let mk_resp = |cap: usize, lat: u64| TimedQueue::<MemResp>::new(cap, lat);
        let cap = cfg.queue_capacity;

        let launches = workload
            .launches
            .iter()
            .enumerate()
            .map(|(i, k)| (Arc::clone(k), i as u32))
            .collect();

        ApuSystem {
            gpu: Gpu::new(n, cfg.cu.clone()),
            l1_in: (0..n).map(|_| mk_req(cap, cfg.lat_cu_l1)).collect(),
            l1s: (0..n)
                .map(|i| CacheUnit::new(cfg.l1.clone(), l1_policy.clone(), i as u32))
                .collect(),
            l1_down: (0..n).map(|_| mk_req(cap, cfg.lat_l1_l2 / 2)).collect(),
            req_xbar: Crossbar::new(n, s, cfg.xbar_per_output),
            l2_in: (0..s)
                .map(|_| mk_req(cap, cfg.lat_l1_l2 - cfg.lat_l1_l2 / 2))
                .collect(),
            l2s: (0..s)
                .map(|i| CacheUnit::new(cfg.l2.clone(), l2_policy.clone(), 1000 + i as u32))
                .collect(),
            l2_down: (0..s).map(|_| mk_req(cap, cfg.lat_l2_dram)).collect(),
            dram: Dram::new(cfg.dram.clone()),
            dram_resp: (0..s).map(|_| mk_resp(cap, cfg.lat_dram_resp)).collect(),
            resp_holdover: VecDeque::new(),
            l2_up: (0..s).map(|_| mk_resp(cap, cfg.lat_l2_resp / 2)).collect(),
            resp_xbar: Crossbar::new(s, n, cfg.xbar_per_output),
            l1_fill_in: (0..n)
                .map(|_| mk_resp(cap, cfg.lat_l2_resp - cfg.lat_l2_resp / 2))
                .collect(),
            l1_up: (0..n).map(|_| mk_resp(cap, cfg.lat_l1_resp)).collect(),
            now: Cycle::ZERO,
            phase: Phase::Launching {
                until: Cycle(cfg.launch_overhead),
            },
            launches,
            cfg,
            telemetry: None,
        }
    }

    /// Turns on telemetry recording, sampling every counter in the system
    /// every `interval` cycles. Must be called before stepping.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (validated front ends reject this via
    /// [`crate::runner::RunOptions`] before reaching the system).
    pub fn enable_telemetry(&mut self, interval: u64) {
        let mut rec = Recorder::new(interval);
        rec.enter_phase(Self::phase_label(self.phase), self.now.0);
        self.telemetry = Some(Box::new(rec));
    }

    /// Whether telemetry recording is enabled.
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Finishes telemetry recording (flushing a final partial epoch up to
    /// the current cycle) and returns the time series, or `None` if
    /// telemetry was never enabled.
    pub fn take_telemetry(&mut self) -> Option<TelemetryRun> {
        let frame = self.telemetry.is_some().then(|| self.sample_frame());
        self.telemetry.take().map(|mut rec| {
            if let Some(frame) = frame {
                rec.record_frame(self.now.0, frame);
            }
            rec.into_run(self.now.0)
        })
    }

    /// Samples every component's cumulative counters into one frame, in
    /// the fixed registry order (gpu, l1, l2, dram, noc, queues).
    fn sample_frame(&self) -> Frame {
        let mut frame = Frame::new();
        frame.record("gpu", &self.gpu.stats());
        let mut l1 = CacheStats::default();
        for c in &self.l1s {
            l1.merge(c.stats());
        }
        frame.record("l1", &l1);
        let mut l2 = CacheStats::default();
        for c in &self.l2s {
            l2.merge(c.stats());
        }
        frame.record("l2", &l2);
        frame.record("dram", self.dram.stats());
        frame.record("noc.req", self.req_xbar.stats());
        frame.record("noc.resp", self.resp_xbar.stats());
        let pushed = |qs: &[TimedQueue<MemReq>]| qs.iter().map(TimedQueue::pushed).sum::<u64>();
        let pushed_r = |qs: &[TimedQueue<MemResp>]| qs.iter().map(TimedQueue::pushed).sum::<u64>();
        frame.record_value("queue.l1_in.pushed", pushed(&self.l1_in));
        frame.record_value("queue.l1_down.pushed", pushed(&self.l1_down));
        frame.record_value("queue.l2_in.pushed", pushed(&self.l2_in));
        frame.record_value("queue.l2_down.pushed", pushed(&self.l2_down));
        frame.record_value("queue.dram_resp.pushed", pushed_r(&self.dram_resp));
        frame.record_value("queue.l2_up.pushed", pushed_r(&self.l2_up));
        frame.record_value("queue.l1_fill_in.pushed", pushed_r(&self.l1_fill_in));
        frame.record_value("queue.l1_up.pushed", pushed_r(&self.l1_up));
        frame
    }

    /// Span name for a phase in the recorded trace.
    fn phase_label(phase: Phase) -> &'static str {
        match phase {
            Phase::Launching { .. } => "launch",
            Phase::Running => "run",
            Phase::DrainKernel => "drain_kernel",
            Phase::Flushing => "flush",
            Phase::DrainFlush => "drain_flush",
            Phase::Finished => "finished",
        }
    }

    /// The current simulated cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether every launch has completed (including its release flush).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Finished
    }

    /// Runs until done.
    ///
    /// # Errors
    ///
    /// Returns [`SimTimeoutError`] if the system has not finished within
    /// `max_cycles`.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> Result<Metrics, SimTimeoutError> {
        while !self.is_done() {
            if self.now.0 >= max_cycles {
                return Err(SimTimeoutError { max_cycles });
            }
            self.step();
        }
        Ok(self.metrics())
    }

    /// A snapshot of all statistics at the current cycle.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut l1 = CacheStats::default();
        for c in &self.l1s {
            l1.merge(c.stats());
        }
        let mut l2 = CacheStats::default();
        for c in &self.l2s {
            l2.merge(c.stats());
        }
        Metrics::new(
            &self.cfg,
            self.now.0,
            self.gpu.stats(),
            self.dram.stats().clone(),
            l1,
            l2,
        )
    }

    /// Advances the system one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        self.tick_memory(now);
        if self.telemetry.is_none() {
            // Fast path: identical to the pre-telemetry simulator — one
            // branch per cycle, no sampling machinery in sight.
            self.advance_phase(now);
            self.now += 1;
            return;
        }
        let before = self.phase;
        self.advance_phase(now);
        let after = self.phase;
        if before != after && after != Phase::Finished {
            // The final phase's span stays open; `take_telemetry` closes
            // it at the run's last cycle so spans tile `[0, cycles]`.
            self.telemetry
                .as_mut()
                .expect("telemetry enabled")
                .enter_phase(Self::phase_label(after), now.0);
        }
        self.now += 1;
        if self
            .telemetry
            .as_ref()
            .is_some_and(|rec| rec.due(self.now.0))
        {
            let frame = self.sample_frame();
            self.telemetry
                .as_mut()
                .expect("telemetry enabled")
                .record_frame(self.now.0, frame);
        }
    }

    /// Whether any request or response is anywhere in the hierarchy.
    fn hierarchy_busy(&self) -> bool {
        self.l1_in.iter().any(|q| !q.is_empty())
            || self.l1_down.iter().any(|q| !q.is_empty())
            || self.l2_in.iter().any(|q| !q.is_empty())
            || self.l2_down.iter().any(|q| !q.is_empty())
            || self.dram_resp.iter().any(|q| !q.is_empty())
            || !self.resp_holdover.is_empty()
            || self.l2_up.iter().any(|q| !q.is_empty())
            || self.l1_fill_in.iter().any(|q| !q.is_empty())
            || self.l1_up.iter().any(|q| !q.is_empty())
            || self.l1s.iter().any(CacheUnit::busy)
            || self.l2s.iter().any(CacheUnit::busy)
            || self.dram.busy()
    }

    fn advance_phase(&mut self, now: Cycle) {
        match self.phase {
            Phase::Launching { until } => {
                if now >= until {
                    match self.launches.pop_front() {
                        Some((desc, seq)) => {
                            if let Some(rec) = self.telemetry.as_deref_mut() {
                                rec.instant(format!("kernel:{}#{seq}", desc.name), now.0);
                            }
                            self.gpu.start_kernel(desc, seq);
                            self.phase = Phase::Running;
                        }
                        None => self.phase = Phase::Finished,
                    }
                }
            }
            Phase::Running => {
                self.gpu.tick(now, &mut self.l1_in);
                if self.gpu.kernel_done() {
                    self.phase = Phase::DrainKernel;
                }
            }
            Phase::DrainKernel => {
                if !self.hierarchy_busy() {
                    let dirty = self.l2s.iter().any(|c| !c.policy().cache_stores);
                    let _ = dirty;
                    for c in &mut self.l2s {
                        c.start_flush();
                    }
                    self.phase = Phase::Flushing;
                }
            }
            Phase::Flushing => {
                let mut done = true;
                for (c, down) in self.l2s.iter_mut().zip(self.l2_down.iter_mut()) {
                    c.flush_tick(now, down);
                    done &= c.flush_done();
                }
                if done {
                    self.phase = Phase::DrainFlush;
                }
            }
            Phase::DrainFlush => {
                if !self.hierarchy_busy() {
                    // Acquire for the next kernel: flash self-invalidation
                    // of all valid GPU cache data.
                    for c in &mut self.l1s {
                        c.self_invalidate();
                    }
                    for c in &mut self.l2s {
                        c.self_invalidate();
                    }
                    if let Some(rec) = self.telemetry.as_deref_mut() {
                        rec.instant("self_invalidate", now.0);
                    }
                    self.phase = if self.launches.is_empty() {
                        Phase::Finished
                    } else {
                        Phase::Launching {
                            until: now + self.cfg.launch_overhead,
                        }
                    };
                }
            }
            Phase::Finished => {}
        }
    }

    /// One cycle of the memory hierarchy, ticked from DRAM upward.
    fn tick_memory(&mut self, now: Cycle) {
        // 1. DRAM scheduling.
        self.dram.tick(now);

        // 2. DRAM responses toward their L2 slice (holdover first).
        while let Some(resp) = self.resp_holdover.pop_front() {
            let slice = self.cfg.l2_slice_of(resp.line);
            if self.dram_resp[slice].can_push() {
                self.dram_resp[slice]
                    .push(now, resp)
                    .unwrap_or_else(|_| unreachable!("checked can_push"));
            } else {
                self.resp_holdover.push_front(resp);
                break;
            }
        }
        while self.resp_holdover.len() < 4 {
            match self.dram.pop_response(now) {
                Some(resp) => {
                    let slice = self.cfg.l2_slice_of(resp.line);
                    if self.dram_resp[slice].can_push() {
                        self.dram_resp[slice]
                            .push(now, resp)
                            .unwrap_or_else(|_| unreachable!("checked can_push"));
                    } else {
                        self.resp_holdover.push_back(resp);
                    }
                }
                None => break,
            }
        }

        // 3. L2 fills from DRAM responses.
        for s in 0..self.l2s.len() {
            for _ in 0..2 {
                let Some(&resp) = self.dram_resp[s].ready_front(now) else {
                    break;
                };
                match self.l2s[s].fill(now, resp, &mut self.l2_up[s]) {
                    Ok(()) => {
                        self.dram_resp[s].pop_ready(now);
                    }
                    Err(_) => break, // response queue full; retry next cycle
                }
            }
        }

        // 4. L2 accesses (with miss-replay, up to the slice's port width).
        for s in 0..self.l2s.len() {
            let (slice, l2_in, l2_down, l2_up) = (
                &mut self.l2s[s],
                &mut self.l2_in[s],
                &mut self.l2_down[s],
                &mut self.l2_up[s],
            );
            slice.service(now, l2_in, l2_down, l2_up);
        }

        // 5. L2 -> DRAM.
        for q in &mut self.l2_down {
            while let Some(req) = q.ready_front(now) {
                if self.dram.can_accept(req) {
                    let req = q.pop_ready(now).expect("head ready");
                    self.dram
                        .push(now, req)
                        .unwrap_or_else(|_| unreachable!("checked can_accept"));
                } else {
                    break;
                }
            }
        }

        // 6. Response crossbar (L2 -> L1s).
        self.resp_xbar
            .tick(now, &mut self.l2_up, &mut self.l1_fill_in, |r| {
                match r.origin {
                    miopt_engine::Origin::Wavefront { cu, .. } => cu as usize,
                    miopt_engine::Origin::Internal => 0,
                }
            });

        // 7. L1 fills.
        for i in 0..self.l1s.len() {
            for _ in 0..2 {
                let Some(&resp) = self.l1_fill_in[i].ready_front(now) else {
                    break;
                };
                match self.l1s[i].fill(now, resp, &mut self.l1_up[i]) {
                    Ok(()) => {
                        self.l1_fill_in[i].pop_ready(now);
                    }
                    Err(_) => break,
                }
            }
        }

        // 8. L1 accesses (with miss-replay).
        for i in 0..self.l1s.len() {
            self.l1s[i].service(
                now,
                &mut self.l1_in[i],
                &mut self.l1_down[i],
                &mut self.l1_up[i],
            );
        }

        // 9. Request crossbar (L1s -> L2 slices).
        let cfg = &self.cfg;
        self.req_xbar
            .tick(now, &mut self.l1_down, &mut self.l2_in, |r| {
                cfg.l2_slice_of(r.line)
            });

        // 10. Responses to the GPU.
        for i in 0..self.l1_up.len() {
            while let Some(resp) = self.l1_up[i].pop_ready(now) {
                self.gpu.on_response(resp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CachePolicy;
    use miopt_workloads::{by_name, SuiteConfig};

    fn run(policy: CachePolicy, name: &str) -> Metrics {
        let w = by_name(&SuiteConfig::quick(), name).unwrap();
        let mut sys = ApuSystem::new(SystemConfig::small_test(), PolicyConfig::of(policy), &w);
        sys.run_to_completion(200_000_000).expect("run finished")
    }

    #[test]
    fn softmax_runs_under_every_policy() {
        for p in CachePolicy::ALL {
            let m = run(p, "FwSoft");
            assert!(m.cycles > 0, "{p}");
            assert!(m.gpu.retired_wavefronts > 0, "{p}");
            assert!(m.dram_accesses() > 0, "{p}");
        }
    }

    #[test]
    fn caching_reduces_dram_traffic_for_rereads() {
        // FwSoft re-reads its tiny input: cached runs must hit DRAM less.
        let unc = run(CachePolicy::Uncached, "FwSoft");
        let r = run(CachePolicy::CacheR, "FwSoft");
        assert!(
            r.dram_accesses() < unc.dram_accesses(),
            "cached {} vs uncached {}",
            r.dram_accesses(),
            unc.dram_accesses()
        );
    }

    #[test]
    fn uncached_counts_no_cache_stalls() {
        let m = run(CachePolicy::Uncached, "FwSoft");
        assert_eq!(m.cache_stalls(), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(CachePolicy::CacheRW, "FwSoft");
        let b = run(CachePolicy::CacheRW, "FwSoft");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dram_accesses(), b.dram_accesses());
        assert_eq!(a.cache_stalls(), b.cache_stalls());
    }

    #[test]
    fn multi_kernel_workload_flushes_between_kernels() {
        let w = by_name(&SuiteConfig::quick(), "FwLSTM").unwrap();
        let mut sys = ApuSystem::new(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheRW),
            &w,
        );
        let m = sys.run_to_completion(2_000_000_000).expect("finished");
        // 150 launches, each at least the launch overhead apart.
        assert!(m.cycles > 150 * SystemConfig::small_test().launch_overhead);
        assert!(m.l2.self_invalidations.get() > 0 || m.l2.flush_writebacks.get() > 0);
    }

    #[test]
    fn cache_rw_coalesces_store_revisits() {
        let unc = run(CachePolicy::Uncached, "BwBN");
        let rw = run(CachePolicy::CacheRW, "BwBN");
        assert!(
            rw.dram.writes.get() < unc.dram.writes.get(),
            "rw {} vs unc {}",
            rw.dram.writes.get(),
            unc.dram.writes.get()
        );
    }
}
