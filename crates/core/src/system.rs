use crate::{Metrics, PolicyConfig, SystemConfig};
use miopt_cache::{CacheStats, CacheUnit, LevelPolicy, WayRange};
use miopt_dram::Dram;
use miopt_engine::sentinel::{InvariantViolation, Sentinel};
use miopt_engine::{Cycle, LineAddr, MemReq, MemResp, TimedQueue};
use miopt_gpu::{Gpu, KernelDesc};
use miopt_noc::Crossbar;
use miopt_telemetry::{Frame, Recorder, TelemetryRun};
use miopt_workloads::Workload;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Why a run halted without completing (see [`StallDiagnostic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The configured cycle budget ran out while the system was still
    /// making (possibly glacial) progress.
    CycleBudget,
    /// The sentinel watchdog saw no retirement, queue movement, or DRAM
    /// activity for its full window: the system is wedged.
    NoForwardProgress,
    /// A component's conservation invariant was violated (see
    /// [`StallDiagnostic::violations`]).
    InvariantViolation,
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StallReason::CycleBudget => "cycle budget exhausted",
            StallReason::NoForwardProgress => "no forward progress",
            StallReason::InvariantViolation => "invariant violation",
        })
    }
}

/// A structured snapshot of a stuck simulation, captured at the moment a
/// run fails: where every in-flight request is, which invariants (if any)
/// are broken, and what the wavefronts are waiting on.
///
/// Attached to [`SimTimeoutError`]; the harness serializes it into the
/// sweep report so a wedged overnight run is diagnosable from the JSON
/// alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallDiagnostic {
    /// The cycle at which the run halted.
    pub cycle: u64,
    /// The phase label at halt time (`launch`, `run`, `drain_kernel`, …).
    pub phase: &'static str,
    /// Why the run halted.
    pub reason: StallReason,
    /// The oldest request still sitting in a hierarchy queue (by issue
    /// cycle), with the queue that holds it. `None` when all queues are
    /// empty (the wedge is inside a component, e.g. a leaked MSHR).
    pub oldest_request: Option<String>,
    /// Occupancy of every nonempty queue, in registry order.
    pub queues: Vec<(String, usize)>,
    /// Outstanding MSHR entries per cache that has any, in registry
    /// order (each entry formatted by `CacheUnit::mshr_snapshot`).
    pub mshrs: Vec<(String, Vec<String>)>,
    /// Per-CU wavefront state: `cu[i]: N resident, M loads outstanding,
    /// K accesses unissued` for every CU with resident wavefronts.
    pub wavefronts: Vec<String>,
    /// Every invariant violation found at halt time (empty unless
    /// [`StallReason::InvariantViolation`], or the stall uncovered one).
    pub violations: Vec<InvariantViolation>,
}

impl fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stall at cycle {} (phase {}): {}",
            self.cycle, self.phase, self.reason
        )?;
        for v in &self.violations {
            writeln!(f, "  violation: {v}")?;
        }
        if let Some(req) = &self.oldest_request {
            writeln!(f, "  oldest request: {req}")?;
        }
        for (name, occ) in &self.queues {
            writeln!(f, "  queue {name}: {occ} occupied")?;
        }
        for (name, entries) in &self.mshrs {
            writeln!(f, "  mshr {name}: {}", entries.join("; "))?;
        }
        for w in &self.wavefronts {
            writeln!(f, "  {w}")?;
        }
        Ok(())
    }
}

/// Returned by [`ApuSystem::run_to_completion`] when the run halts before
/// completion: the cycle budget ran out, the sentinel watchdog detected a
/// wedge, or an invariant check failed. Carries a [`StallDiagnostic`]
/// describing the halted system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTimeoutError {
    /// The cycle budget of the halted run.
    pub max_cycles: u64,
    /// What the halted system looked like.
    pub diagnostic: Box<StallDiagnostic>,
}

impl fmt::Display for SimTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.diagnostic.reason {
            StallReason::CycleBudget => {
                write!(f, "simulation exceeded {} cycles", self.max_cycles)
            }
            reason => write!(
                f,
                "simulation halted at cycle {}: {reason}",
                self.diagnostic.cycle
            ),
        }
    }
}

impl Error for SimTimeoutError {}

/// Sentinel bookkeeping: invariant-check cadence and the forward-progress
/// watchdog. Lives behind an `Option<Box<_>>` so release runs without
/// `--check-invariants` pay nothing (the same idiom as telemetry).
#[derive(Debug)]
struct SentinelState {
    /// Cycles between invariant sweeps (and watchdog fingerprints).
    check_interval: u64,
    /// Declare a wedge after this many cycles without progress
    /// (0 disables the watchdog).
    watchdog_cycles: u64,
    /// Next cycle at which to run a check.
    next_check: Cycle,
    /// Progress fingerprint at the last check.
    last_fingerprint: u64,
    /// Cycle since which the fingerprint has not changed.
    stable_since: Cycle,
}

impl SentinelState {
    /// Default cadence: sweep invariants every 4096 cycles; call the run
    /// wedged after one million cycles with no counter movement (far
    /// beyond any legitimate quiet window — the longest is a full DRAM
    /// queue draining, tens of cycles per entry).
    const DEFAULT_CHECK_INTERVAL: u64 = 4096;
    /// Default watchdog window, in cycles.
    const DEFAULT_WATCHDOG: u64 = 1_000_000;

    fn new(check_interval: u64, watchdog_cycles: u64) -> SentinelState {
        assert!(
            check_interval > 0,
            "sentinel check interval must be nonzero"
        );
        SentinelState {
            check_interval,
            watchdog_cycles,
            next_check: Cycle(check_interval),
            last_fingerprint: 0,
            stable_since: Cycle::ZERO,
        }
    }
}

/// Destination of one telemetry sample walk: the first frame of a run
/// records names and values (fixing the recorder's registry); every
/// frame after that appends values only, into a buffer reused across
/// samples. One `sample_into` walk feeds both, so the orders match by
/// construction.
enum SampleSink<'a> {
    Named(&'a mut Frame),
    Values(&'a mut Vec<u64>),
}

impl SampleSink<'_> {
    fn record(&mut self, scope: &str, stats: &dyn miopt_telemetry::StatSnapshot) {
        match self {
            SampleSink::Named(frame) => frame.record(scope, stats),
            SampleSink::Values(values) => {
                values.extend(stats.stat_pairs().iter().map(|&(_, v)| v));
            }
        }
    }

    fn record_value(&mut self, name: &str, value: u64) {
        match self {
            SampleSink::Named(frame) => frame.record_value(name, value),
            SampleSink::Values(values) => values.push(value),
        }
    }
}

/// Where the system is in the kernel-boundary protocol (paper Section
/// III): launch → run → drain → release flush → drain → self-invalidate →
/// next launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Host-side launch overhead until the given cycle.
    Launching { until: Cycle },
    /// Wavefronts executing.
    Running,
    /// Wavefronts done; draining in-flight memory operations.
    DrainKernel,
    /// Writing back all L2 dirty data (release at a system-scope
    /// synchronization point).
    Flushing,
    /// Draining the flush writebacks to DRAM.
    DrainFlush,
    /// All launches complete.
    Finished,
}

/// The simulated APU: the GPU of [`miopt_gpu`], per-CU L1s, the sliced
/// shared L2, request/response crossbars, and HBM2 DRAM, driven one cycle
/// at a time.
///
/// # Examples
///
/// ```
/// use miopt::{ApuSystem, CachePolicy, PolicyConfig, SystemConfig};
/// use miopt_workloads::{by_name, SuiteConfig};
///
/// let workload = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
/// let mut sys = ApuSystem::new(
///     SystemConfig::small_test(),
///     PolicyConfig::of(CachePolicy::CacheR),
///     &workload,
/// );
/// let metrics = sys.run_to_completion(50_000_000).unwrap();
/// assert!(metrics.cycles > 0);
/// ```
#[derive(Debug)]
pub struct ApuSystem {
    cfg: SystemConfig,
    gpu: Gpu,
    l1_in: Vec<TimedQueue<MemReq>>,
    l1s: Vec<CacheUnit>,
    l1_down: Vec<TimedQueue<MemReq>>,
    req_xbar: Crossbar,
    l2_in: Vec<TimedQueue<MemReq>>,
    l2s: Vec<CacheUnit>,
    l2_down: Vec<TimedQueue<MemReq>>,
    dram: Dram,
    dram_resp: Vec<TimedQueue<MemResp>>,
    resp_holdover: VecDeque<MemResp>,
    l2_up: Vec<TimedQueue<MemResp>>,
    resp_xbar: Crossbar,
    l1_fill_in: Vec<TimedQueue<MemResp>>,
    l1_up: Vec<TimedQueue<MemResp>>,
    now: Cycle,
    phase: Phase,
    launches: VecDeque<(Arc<KernelDesc>, u32)>,
    /// Epoch sampler; `None` (the default) keeps [`ApuSystem::step`] on a
    /// branch-only fast path with no recording overhead.
    telemetry: Option<Box<Recorder>>,
    /// Invariant checker and watchdog; `None` in release builds unless
    /// explicitly enabled, `Some` in debug builds always.
    sentinel: Option<Box<SentinelState>>,
    /// Event-driven time skipping: when true (the default),
    /// [`ApuSystem::run_to_completion`] warps `now` over provably idle
    /// stretches instead of stepping through them one cycle at a time.
    /// See [`ApuSystem::set_time_skip`].
    skip: bool,
    /// Number of warps taken and total cycles warped over (diagnostics
    /// for [`ApuSystem::time_skip_stats`]).
    warps: u64,
    warped_cycles: u64,
    /// Scratch buffer for steady-state telemetry samples, reused across
    /// frames so sampling allocates only on the first frame of a run.
    frame_values: Vec<u64>,
}

impl ApuSystem {
    /// Default invariant-sweep cadence for [`ApuSystem::enable_sentinel`]
    /// (cycles between sweeps).
    pub const DEFAULT_CHECK_INTERVAL: u64 = SentinelState::DEFAULT_CHECK_INTERVAL;
    /// Default watchdog window for [`ApuSystem::enable_sentinel`]
    /// (cycles without progress before declaring a wedge).
    pub const DEFAULT_WATCHDOG: u64 = SentinelState::DEFAULT_WATCHDOG;

    /// Builds a system ready to execute `workload` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]); use [`SystemConfig::builder`] or
    /// [`crate::runner::run_one`] for non-panicking validation.
    #[must_use]
    pub fn new(cfg: SystemConfig, policy: PolicyConfig, workload: &Workload) -> ApuSystem {
        let launches = workload
            .launches
            .iter()
            .enumerate()
            .map(|(i, k)| (Arc::clone(k), i as u32))
            .collect();
        Self::build(cfg, policy, launches)
    }

    /// Builds a system with no kernels queued, starting in the finished
    /// (idle) state — the persistent substrate of a serving scenario.
    ///
    /// Kernels are fed in at runtime with [`ApuSystem::enqueue_kernel`];
    /// between kernels the clock advances with [`ApuSystem::idle_until`]
    /// and policies may be switched with
    /// [`ApuSystem::set_level_policies`]. `now`, statistics and
    /// telemetry are cumulative across every kernel run on the system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]).
    #[must_use]
    pub fn new_idle(cfg: SystemConfig, policy: PolicyConfig) -> ApuSystem {
        let mut sys = Self::build(cfg, policy, VecDeque::new());
        sys.phase = Phase::Finished;
        sys
    }

    fn build(
        cfg: SystemConfig,
        policy: PolicyConfig,
        launches: VecDeque<(Arc<KernelDesc>, u32)>,
    ) -> ApuSystem {
        cfg.validate().expect("invalid system config");
        let n = cfg.n_cus;
        let s = cfg.l2_slices;
        let row_map = cfg.row_map();
        let l1_policy = policy.l1_policy();
        let l2_policy = policy.l2_policy(row_map);
        let mk_req = |cap: usize, lat: u64| TimedQueue::<MemReq>::new(cap, lat);
        let mk_resp = |cap: usize, lat: u64| TimedQueue::<MemResp>::new(cap, lat);
        let cap = cfg.queue_capacity;

        ApuSystem {
            gpu: Gpu::new(n, cfg.cu.clone()),
            l1_in: (0..n).map(|_| mk_req(cap, cfg.lat_cu_l1)).collect(),
            l1s: (0..n)
                .map(|i| CacheUnit::new(cfg.l1.clone(), l1_policy.clone(), i as u32))
                .collect(),
            l1_down: (0..n).map(|_| mk_req(cap, cfg.lat_l1_l2 / 2)).collect(),
            req_xbar: Crossbar::new(n, s, cfg.xbar_per_output),
            l2_in: (0..s)
                .map(|_| mk_req(cap, cfg.lat_l1_l2 - cfg.lat_l1_l2 / 2))
                .collect(),
            l2s: (0..s)
                .map(|i| CacheUnit::new(cfg.l2.clone(), l2_policy.clone(), 1000 + i as u32))
                .collect(),
            l2_down: (0..s).map(|_| mk_req(cap, cfg.lat_l2_dram)).collect(),
            dram: Dram::new(cfg.dram.clone()),
            dram_resp: (0..s).map(|_| mk_resp(cap, cfg.lat_dram_resp)).collect(),
            resp_holdover: VecDeque::new(),
            l2_up: (0..s).map(|_| mk_resp(cap, cfg.lat_l2_resp / 2)).collect(),
            resp_xbar: Crossbar::new(s, n, cfg.xbar_per_output),
            l1_fill_in: (0..n)
                .map(|_| mk_resp(cap, cfg.lat_l2_resp - cfg.lat_l2_resp / 2))
                .collect(),
            l1_up: (0..n).map(|_| mk_resp(cap, cfg.lat_l1_resp)).collect(),
            now: Cycle::ZERO,
            phase: Phase::Launching {
                until: Cycle(cfg.launch_overhead),
            },
            launches,
            cfg,
            telemetry: None,
            // Debug (and therefore CI-test) builds always run checked;
            // release runs opt in via `enable_sentinel`.
            sentinel: cfg!(debug_assertions).then(|| {
                Box::new(SentinelState::new(
                    SentinelState::DEFAULT_CHECK_INTERVAL,
                    SentinelState::DEFAULT_WATCHDOG,
                ))
            }),
            skip: true,
            warps: 0,
            warped_cycles: 0,
            frame_values: Vec::new(),
        }
    }

    /// Enables or disables event-driven time skipping inside
    /// [`ApuSystem::run_to_completion`] (the `--no-skip` escape hatch).
    ///
    /// Skipping is on by default. The two modes are bit-identical — a
    /// warp only ever crosses cycles in which no component can act, and
    /// it lands one cycle short of every telemetry sample, sentinel
    /// check, and the cycle budget so periodic work fires at exactly the
    /// per-cycle simulator's cycles. Disabling it therefore only trades
    /// away wall-clock speed; it exists for equivalence testing and for
    /// debugging the skip logic itself.
    pub fn set_time_skip(&mut self, enabled: bool) {
        self.skip = enabled;
    }

    /// Whether event-driven time skipping is enabled.
    #[must_use]
    pub fn time_skip_enabled(&self) -> bool {
        self.skip
    }

    /// Skip-ahead effectiveness: `(warps_taken, cycles_warped_over)`.
    /// `cycles_warped_over / now().0` is the fraction of simulated time
    /// that was skipped rather than stepped.
    #[must_use]
    pub fn time_skip_stats(&self) -> (u64, u64) {
        (self.warps, self.warped_cycles)
    }

    /// Turns on telemetry recording, sampling every counter in the system
    /// every `interval` cycles. Must be called before stepping.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (validated front ends reject this via
    /// [`crate::runner::RunOptions`] before reaching the system).
    pub fn enable_telemetry(&mut self, interval: u64) {
        let mut rec = Recorder::new(interval);
        rec.enter_phase(Self::phase_label(self.phase), self.now.0);
        self.telemetry = Some(Box::new(rec));
    }

    /// Whether telemetry recording is enabled.
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Finishes telemetry recording (flushing a final partial epoch up to
    /// the current cycle) and returns the time series, or `None` if
    /// telemetry was never enabled.
    pub fn take_telemetry(&mut self) -> Option<TelemetryRun> {
        let frame = self.telemetry.is_some().then(|| self.sample_frame());
        self.telemetry.take().map(|mut rec| {
            if let Some(frame) = frame {
                rec.record_frame(self.now.0, frame);
            }
            rec.into_run(self.now.0)
        })
    }

    /// Samples every component's cumulative counters into `sink`, in the
    /// fixed registry order (gpu, l1, l2, dram, noc, queues). The single
    /// walk serves both sampling paths — named first frame and
    /// values-only steady state — so their counter order cannot diverge.
    fn sample_into(&self, sink: &mut SampleSink<'_>) {
        sink.record("gpu", &self.gpu.stats());
        let mut l1 = CacheStats::default();
        for c in &self.l1s {
            l1.merge(c.stats());
        }
        sink.record("l1", &l1);
        let mut l2 = CacheStats::default();
        for c in &self.l2s {
            l2.merge(c.stats());
        }
        sink.record("l2", &l2);
        sink.record("dram", self.dram.stats());
        sink.record("noc.req", self.req_xbar.stats());
        sink.record("noc.resp", self.resp_xbar.stats());
        let pushed = |qs: &[TimedQueue<MemReq>]| qs.iter().map(TimedQueue::pushed).sum::<u64>();
        let pushed_r = |qs: &[TimedQueue<MemResp>]| qs.iter().map(TimedQueue::pushed).sum::<u64>();
        sink.record_value("queue.l1_in.pushed", pushed(&self.l1_in));
        sink.record_value("queue.l1_down.pushed", pushed(&self.l1_down));
        sink.record_value("queue.l2_in.pushed", pushed(&self.l2_in));
        sink.record_value("queue.l2_down.pushed", pushed(&self.l2_down));
        sink.record_value("queue.dram_resp.pushed", pushed_r(&self.dram_resp));
        sink.record_value("queue.l2_up.pushed", pushed_r(&self.l2_up));
        sink.record_value("queue.l1_fill_in.pushed", pushed_r(&self.l1_fill_in));
        sink.record_value("queue.l1_up.pushed", pushed_r(&self.l1_up));
    }

    /// Samples every counter into a named frame (first frame of a run,
    /// and the final flush in [`ApuSystem::take_telemetry`]).
    fn sample_frame(&self) -> Frame {
        let mut frame = Frame::new();
        self.sample_into(&mut SampleSink::Named(&mut frame));
        frame
    }

    /// Span name for a phase in the recorded trace.
    fn phase_label(phase: Phase) -> &'static str {
        match phase {
            Phase::Launching { .. } => "launch",
            Phase::Running => "run",
            Phase::DrainKernel => "drain_kernel",
            Phase::Flushing => "flush",
            Phase::DrainFlush => "drain_flush",
            Phase::Finished => "finished",
        }
    }

    /// Turns on invariant checking and the forward-progress watchdog for
    /// [`ApuSystem::run_to_completion`]: invariants are swept every
    /// `check_interval` cycles, and a run with no counter movement for
    /// `watchdog_cycles` cycles halts with
    /// [`StallReason::NoForwardProgress`] (`watchdog_cycles == 0`
    /// disables the watchdog). Debug builds run with both enabled at
    /// default cadence from construction.
    ///
    /// # Panics
    ///
    /// Panics if `check_interval` is zero.
    pub fn enable_sentinel(&mut self, check_interval: u64, watchdog_cycles: u64) {
        self.sentinel = Some(Box::new(SentinelState::new(
            check_interval,
            watchdog_cycles,
        )));
    }

    /// Whether invariant checking is active (always true in debug
    /// builds).
    #[must_use]
    pub fn sentinel_enabled(&self) -> bool {
        self.sentinel.is_some()
    }

    /// Sweeps every component's conservation invariants right now and
    /// returns the violations found (empty on a healthy system). Works
    /// whether or not the sentinel is enabled; enabling only adds the
    /// periodic sweep inside [`ApuSystem::run_to_completion`].
    #[must_use]
    pub fn check_invariants_now(&self) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        self.gpu.check_invariants("gpu", &mut out);
        for (i, c) in self.l1s.iter().enumerate() {
            c.check_invariants(&format!("l1[{i}]"), &mut out);
        }
        for (s, c) in self.l2s.iter().enumerate() {
            c.check_invariants(&format!("l2[{s}]"), &mut out);
        }
        self.dram.check_invariants("dram", &mut out);
        self.req_xbar.check_invariants("noc.req", &mut out);
        self.resp_xbar.check_invariants("noc.resp", &mut out);
        let mut queues = |name: &str, qs: &[TimedQueue<MemReq>]| {
            for (i, q) in qs.iter().enumerate() {
                q.check_invariants(&format!("queue.{name}[{i}]"), &mut out);
            }
        };
        queues("l1_in", &self.l1_in);
        queues("l1_down", &self.l1_down);
        queues("l2_in", &self.l2_in);
        queues("l2_down", &self.l2_down);
        let mut resp_queues = |name: &str, qs: &[TimedQueue<MemResp>]| {
            for (i, q) in qs.iter().enumerate() {
                q.check_invariants(&format!("queue.{name}[{i}]"), &mut out);
            }
        };
        resp_queues("dram_resp", &self.dram_resp);
        resp_queues("l2_up", &self.l2_up);
        resp_queues("l1_fill_in", &self.l1_fill_in);
        resp_queues("l1_up", &self.l1_up);
        // System-level: the DRAM response holdover is bounded by
        // construction (`tick_memory` stage 2 stops filling at 4).
        if self.resp_holdover.len() > 4 {
            out.push(InvariantViolation {
                component: "system".to_string(),
                invariant: "holdover_bound",
                detail: format!("{} held-over responses > bound 4", self.resp_holdover.len()),
            });
        }
        out
    }

    /// A fingerprint of every progress-indicating counter: if two
    /// successive fingerprints match, nothing retired, moved through a
    /// queue, or touched DRAM in between.
    fn progress_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.launches.len() as u64);
        mix(match self.phase {
            Phase::Launching { .. } => 0,
            Phase::Running => 1,
            Phase::DrainKernel => 2,
            Phase::Flushing => 3,
            Phase::DrainFlush => 4,
            Phase::Finished => 5,
        });
        for (name, value) in self.gpu.stats().to_pairs() {
            mix(name.len() as u64);
            mix(value);
        }
        for (name, value) in self.dram.stats().to_pairs() {
            mix(name.len() as u64);
            mix(value);
        }
        for c in self.l1s.iter().chain(&self.l2s) {
            for (name, value) in c.stats().to_pairs() {
                mix(name.len() as u64);
                mix(value);
            }
        }
        for q in self.l1_in.iter().chain(&self.l1_down) {
            mix(q.pushed());
        }
        for q in self.l2_in.iter().chain(&self.l2_down) {
            mix(q.pushed());
        }
        for q in self
            .dram_resp
            .iter()
            .chain(&self.l2_up)
            .chain(&self.l1_fill_in)
            .chain(&self.l1_up)
        {
            mix(q.pushed());
        }
        h
    }

    /// Runs the due sentinel checks after a step; returns why the run
    /// must halt, if it must.
    fn sentinel_poll(&mut self) -> Option<StallReason> {
        let (interval, watchdog, next_check) = {
            let s = self.sentinel.as_deref()?;
            (s.check_interval, s.watchdog_cycles, s.next_check)
        };
        if self.now < next_check {
            return None;
        }
        if !self.check_invariants_now().is_empty() {
            return Some(StallReason::InvariantViolation);
        }
        let fingerprint = self.progress_fingerprint();
        // The launch phase idles by design (host-side overhead), so it is
        // exempt from the watchdog; every other phase moves counters.
        let launching = matches!(self.phase, Phase::Launching { .. });
        let now = self.now;
        let s = self.sentinel.as_deref_mut().expect("sentinel enabled");
        s.next_check = now + interval;
        if fingerprint != s.last_fingerprint || launching {
            s.last_fingerprint = fingerprint;
            s.stable_since = now;
            return None;
        }
        (watchdog > 0 && now.since(s.stable_since) >= watchdog)
            .then_some(StallReason::NoForwardProgress)
    }

    /// Captures the halted system into a [`SimTimeoutError`].
    fn stall_error(&mut self, max_cycles: u64, reason: StallReason) -> SimTimeoutError {
        let mut queues = Vec::new();
        let mut oldest: Option<(Cycle, String)> = None;
        {
            let mut req_queues = |name: &str, qs: &[TimedQueue<MemReq>]| {
                for (i, q) in qs.iter().enumerate() {
                    if q.is_empty() {
                        continue;
                    }
                    queues.push((format!("queue.{name}[{i}]"), q.len()));
                    for (_, req) in q.iter_timed() {
                        if oldest.as_ref().is_none_or(|(c, _)| req.issue_cycle < *c) {
                            oldest = Some((req.issue_cycle, format!("queue.{name}[{i}]: {req:?}")));
                        }
                    }
                }
            };
            req_queues("l1_in", &self.l1_in);
            req_queues("l1_down", &self.l1_down);
            req_queues("l2_in", &self.l2_in);
            req_queues("l2_down", &self.l2_down);
        }
        let mut resp_queues = |name: &str, qs: &[TimedQueue<MemResp>]| {
            for (i, q) in qs.iter().enumerate() {
                if !q.is_empty() {
                    queues.push((format!("queue.{name}[{i}]"), q.len()));
                }
            }
        };
        resp_queues("dram_resp", &self.dram_resp);
        resp_queues("l2_up", &self.l2_up);
        resp_queues("l1_fill_in", &self.l1_fill_in);
        resp_queues("l1_up", &self.l1_up);
        let mut mshrs = Vec::new();
        for (i, c) in self.l1s.iter().enumerate() {
            let snap = c.mshr_snapshot();
            if !snap.is_empty() {
                mshrs.push((format!("l1[{i}]"), snap));
            }
        }
        for (s, c) in self.l2s.iter().enumerate() {
            let snap = c.mshr_snapshot();
            if !snap.is_empty() {
                mshrs.push((format!("l2[{s}]"), snap));
            }
        }
        let wavefronts = self
            .gpu
            .wavefront_summary()
            .into_iter()
            .map(|(cu, active, loads, pending)| {
                format!(
                    "cu[{cu}]: {active} resident, {loads} loads outstanding, \
                     {pending} accesses unissued"
                )
            })
            .collect();
        let diagnostic = Box::new(StallDiagnostic {
            cycle: self.now.0,
            phase: Self::phase_label(self.phase),
            reason,
            oldest_request: oldest.map(|(_, s)| s),
            queues,
            mshrs,
            wavefronts,
            violations: self.check_invariants_now(),
        });
        if let Some(rec) = self.telemetry.as_deref_mut() {
            rec.instant(format!("sentinel:{reason}"), self.now.0);
        }
        SimTimeoutError {
            max_cycles,
            diagnostic,
        }
    }

    /// Fault-injection hook (sentinel validation only): leaks a phantom
    /// MSHR entry in CU `cu`'s L1. With `allocating == true` the entry is
    /// structurally malformed and trips the `mshr_reservation` invariant
    /// at the next sweep; with `false` it is structurally plausible but
    /// never completes, wedging the drain for the watchdog to catch.
    pub fn inject_l1_mshr_leak(&mut self, cu: usize, line: LineAddr, allocating: bool) {
        self.l1s[cu].inject_mshr_leak(line, allocating);
    }

    /// Fault-injection hook (sentinel validation only): drops one
    /// flow-control credit from CU `cu`'s L1 input queue, tripping the
    /// `credit_conservation` invariant at the next sweep.
    pub fn inject_queue_credit_loss(&mut self, cu: usize) {
        self.l1_in[cu].inject_credit_loss();
    }

    /// The current simulated cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether every launch has completed (including its release flush).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Finished
    }

    /// Queues a kernel launch. `seq` tags the launch in telemetry
    /// (`kernel:{name}#{seq}` instants); serving scenarios use a global
    /// request sequence number.
    ///
    /// On an idle (finished) system the launch phase begins immediately:
    /// the kernel starts executing `launch_overhead` cycles from `now`
    /// once the system is driven again (via
    /// [`ApuSystem::run_to_completion`] or [`ApuSystem::step`]).
    pub fn enqueue_kernel(&mut self, desc: Arc<KernelDesc>, seq: u32) {
        self.launches.push_back((desc, seq));
        if self.phase == Phase::Finished {
            self.phase = Phase::Launching {
                until: self.now + self.cfg.launch_overhead,
            };
            if let Some(rec) = self.telemetry.as_deref_mut() {
                rec.enter_phase(Self::phase_label(self.phase), self.now.0);
            }
        }
    }

    /// Number of queued launches not yet started.
    #[must_use]
    pub fn pending_launches(&self) -> usize {
        self.launches.len()
    }

    /// Advances an idle (finished) system's clock to `target` without
    /// running anything — the gap between request arrivals in a serving
    /// scenario.
    ///
    /// With time skipping enabled the stretch is warped over (in chunks
    /// that land one cycle short of each telemetry sample, so samples
    /// fire at exactly the per-cycle simulator's cycles); with
    /// `--no-skip` it is stepped cycle by cycle. Both modes leave the
    /// system bit-identical, including crossbar round-robin cursors.
    /// A `target` at or before `now` is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the system is not idle ([`ApuSystem::is_done`]).
    pub fn idle_until(&mut self, target: Cycle) {
        assert!(self.is_done(), "idle_until on a busy system");
        while self.now < target {
            if !self.skip {
                self.step();
                continue;
            }
            let mut to = target.0;
            if let Some(rec) = self.telemetry.as_deref() {
                let next_due = (self.now.0 / rec.interval() + 1) * rec.interval();
                to = to.min(next_due - 1);
            }
            if to > self.now.0 {
                let skipped = to - self.now.0;
                self.req_xbar.advance_idle_cycles(skipped);
                self.resp_xbar.advance_idle_cycles(skipped);
                self.now = Cycle(to);
                self.warps += 1;
                self.warped_cycles += skipped;
            } else {
                // One cycle short of a telemetry sample: step to fire it.
                self.step();
            }
        }
    }

    /// Switches every L1 to `l1` and every L2 slice to `l2` — the
    /// per-tenant policy (and QoS way-partition) switch at a kernel
    /// boundary in multi-tenant serving.
    ///
    /// Legal only on an idle system: at that point every cache has been
    /// drained, flushed, and flash self-invalidated, so the switch
    /// cannot strand dirty or busy lines. Lines installed under an
    /// earlier partition would still be found by probes (allocation is
    /// restricted, lookup is not), but after self-invalidation there are
    /// none.
    ///
    /// # Panics
    ///
    /// Panics if the system is not idle ([`ApuSystem::is_done`]), or if
    /// a policy is invalid for the cache geometry (see
    /// [`CacheUnit::set_policy`]).
    pub fn set_level_policies(&mut self, l1: LevelPolicy, l2: LevelPolicy) {
        assert!(
            self.is_done(),
            "cache policies can only change at an idle kernel boundary"
        );
        for c in &mut self.l1s {
            c.set_policy(l1.clone());
        }
        for c in &mut self.l2s {
            c.set_policy(l2.clone());
        }
    }

    /// [`ApuSystem::set_level_policies`] from a [`PolicyConfig`], with an
    /// optional L2 way partition (the serving scheduler's per-tenant
    /// switch).
    ///
    /// # Panics
    ///
    /// As [`ApuSystem::set_level_policies`].
    pub fn set_policy_config(&mut self, policy: &PolicyConfig, l2_partition: Option<WayRange>) {
        let mut l2 = policy.l2_policy(self.cfg.row_map());
        l2.partition = l2_partition;
        self.set_level_policies(policy.l1_policy(), l2);
    }

    /// Cumulative crossbar transfer counts `(request, response)`, for
    /// per-tenant NoC bandwidth attribution in serving scenarios (delta
    /// across a kernel = that kernel's NoC traffic).
    #[must_use]
    pub fn noc_transfers(&self) -> (u64, u64) {
        (
            self.req_xbar.stats().moved.get(),
            self.resp_xbar.stats().moved.get(),
        )
    }

    /// Runs until done.
    ///
    /// # Errors
    ///
    /// Returns [`SimTimeoutError`] if the system has not finished within
    /// `max_cycles`, or — with the sentinel enabled — as soon as an
    /// invariant check fails or the watchdog detects a wedge. The error
    /// carries a [`StallDiagnostic`] either way.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> Result<Metrics, SimTimeoutError> {
        if self.sentinel.is_none() {
            // Unchecked path: one budget compare per cycle, exactly the
            // pre-sentinel loop. Diagnostics are only built on failure.
            while !self.is_done() {
                if self.now.0 >= max_cycles {
                    return Err(self.stall_error(max_cycles, StallReason::CycleBudget));
                }
                // Probe for a warp only after a provable no-op cycle: on
                // busy cycles `next_event` would just answer "now", so
                // gating the probe keeps its cost off the critical path.
                if !self.step() {
                    self.try_warp(max_cycles);
                }
            }
            return Ok(self.metrics());
        }
        while !self.is_done() {
            if self.now.0 >= max_cycles {
                return Err(self.stall_error(max_cycles, StallReason::CycleBudget));
            }
            let acted = self.step();
            if let Some(reason) = self.sentinel_poll() {
                return Err(self.stall_error(max_cycles, reason));
            }
            if !acted {
                self.try_warp(max_cycles);
            }
        }
        // Final sweep at completion: quiescence invariants (every issued
        // request retired, MSHRs empty, queues drained) must hold.
        if !self.check_invariants_now().is_empty() {
            return Err(self.stall_error(max_cycles, StallReason::InvariantViolation));
        }
        Ok(self.metrics())
    }

    /// A snapshot of all statistics at the current cycle.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut l1 = CacheStats::default();
        for c in &self.l1s {
            l1.merge(c.stats());
        }
        let mut l2 = CacheStats::default();
        for c in &self.l2s {
            l2.merge(c.stats());
        }
        Metrics::new(
            &self.cfg,
            self.now.0,
            self.gpu.stats(),
            self.dram.stats().clone(),
            l1,
            l2,
        )
    }

    /// Advances the system one cycle.
    ///
    /// Returns whether any component acted — moved a message, issued or
    /// retired an instruction, scheduled DRAM work, or changed phase.
    /// `false` means the cycle was a provable no-op; the run loop uses
    /// that as its cue to probe `next_event` for a time warp, so busy
    /// cycles never pay the probe's cost.
    pub fn step(&mut self) -> bool {
        let now = self.now;
        let mut acted = self.tick_memory(now);
        if self.telemetry.is_none() {
            // Fast path: identical to the pre-telemetry simulator — one
            // branch per cycle, no sampling machinery in sight.
            acted |= self.advance_phase(now);
            self.now += 1;
            return acted;
        }
        let before = self.phase;
        acted |= self.advance_phase(now);
        let after = self.phase;
        if before != after && after != Phase::Finished {
            // The final phase's span stays open; `take_telemetry` closes
            // it at the run's last cycle so spans tile `[0, cycles]`.
            self.telemetry
                .as_mut()
                .expect("telemetry enabled")
                .enter_phase(Self::phase_label(after), now.0);
        }
        self.now += 1;
        if self
            .telemetry
            .as_ref()
            .is_some_and(|rec| rec.due(self.now.0))
        {
            if self
                .telemetry
                .as_deref()
                .expect("telemetry enabled")
                .registry_fixed()
            {
                // Steady state: values only, into the reused scratch
                // buffer — no allocation per sample.
                let mut values = std::mem::take(&mut self.frame_values);
                values.clear();
                self.sample_into(&mut SampleSink::Values(&mut values));
                self.telemetry
                    .as_deref_mut()
                    .expect("telemetry enabled")
                    .record_values(self.now.0, &values);
                self.frame_values = values;
            } else {
                let frame = self.sample_frame();
                self.telemetry
                    .as_mut()
                    .expect("telemetry enabled")
                    .record_frame(self.now.0, frame);
            }
        }
        acted
    }

    /// The earliest cycle at or after `now` at which any component might
    /// act, or `None` when the whole system is quiescent (nothing will
    /// ever act again without external input — only the cycle budget or
    /// the watchdog can end the run).
    ///
    /// The estimate is conservative: a component may report a cycle at
    /// which it turns out to do nothing (costing one ordinary no-op
    /// step), but must never act before its reported cycle. `Some(now)`
    /// means "active right now — do not skip".
    fn next_event(&self) -> Option<Cycle> {
        let now = self.now;
        // Cheap always-active states first.
        if !self.resp_holdover.is_empty() {
            return Some(now);
        }
        match self.phase {
            // The flush loop retries blocked writebacks every cycle.
            Phase::Flushing => return Some(now),
            Phase::DrainKernel | Phase::DrainFlush if !self.hierarchy_busy() => {
                return Some(now); // phase transition pending
            }
            _ => {}
        }
        let mut next: Option<Cycle> = None;
        let consider = |next: &mut Option<Cycle>, at: Cycle| {
            let at = at.max(now);
            if next.is_none_or(|n| at < n) {
                *next = Some(at);
            }
        };
        for q in self.l1_in.iter().chain(&self.l1_down) {
            if let Some(at) = q.next_ready() {
                consider(&mut next, at);
            }
        }
        for q in self.l2_in.iter().chain(&self.l2_down) {
            if let Some(at) = q.next_ready() {
                consider(&mut next, at);
            }
        }
        for q in self
            .dram_resp
            .iter()
            .chain(&self.l2_up)
            .chain(&self.l1_fill_in)
            .chain(&self.l1_up)
        {
            if let Some(at) = q.next_ready() {
                consider(&mut next, at);
            }
        }
        if next == Some(now) {
            return next;
        }
        if let Some(at) = self.dram.next_event(now) {
            consider(&mut next, at);
        }
        for c in self.l1s.iter().chain(&self.l2s) {
            if let Some(at) = c.next_event(now) {
                consider(&mut next, at);
            }
        }
        if next == Some(now) {
            return next;
        }
        match self.phase {
            Phase::Launching { until } => consider(&mut next, until),
            Phase::Running => {
                if let Some(at) = self.gpu.next_event(now) {
                    consider(&mut next, at);
                }
            }
            // Busy drains were handled above; while the hierarchy is
            // busy the queue / DRAM / cache sources cover every cycle
            // that could empty it.
            Phase::DrainKernel | Phase::DrainFlush | Phase::Flushing | Phase::Finished => {}
        }
        next
    }

    /// Event-driven fast-forward: if no component can act strictly
    /// before a known future cycle, jumps `now` straight to it instead
    /// of stepping through the idle stretch one cycle at a time.
    ///
    /// A warp never crosses a periodic boundary: it lands one cycle
    /// short of the next telemetry sample, the next sentinel check, and
    /// the cycle budget, so the landing step fires each at exactly the
    /// cycle the per-cycle simulator would. Combined with compensating
    /// the crossbars' round-robin cursors for the skipped idle ticks,
    /// warped runs are bit-identical to `--no-skip` runs.
    fn try_warp(&mut self, max_cycles: u64) {
        if !self.skip || self.phase == Phase::Finished {
            return;
        }
        let mut target = match self.next_event() {
            Some(at) if at <= self.now => return,
            Some(at) => at.0.min(max_cycles),
            // Quiescent: nothing will ever act again. Run out the clock
            // so the budget (or the watchdog, at its own cadence) fires
            // at exactly the per-cycle simulator's cycle.
            None => max_cycles,
        };
        if let Some(rec) = self.telemetry.as_deref() {
            let next_due = (self.now.0 / rec.interval() + 1) * rec.interval();
            target = target.min(next_due - 1);
        }
        if let Some(s) = self.sentinel.as_deref() {
            target = target.min(s.next_check.0.saturating_sub(1));
        }
        if target <= self.now.0 {
            return;
        }
        let skipped = target - self.now.0;
        // Idle ticks still rotate the crossbar round-robin cursors; keep
        // the warped run's arbitration identical to per-cycle stepping.
        self.req_xbar.advance_idle_cycles(skipped);
        self.resp_xbar.advance_idle_cycles(skipped);
        self.now = Cycle(target);
        self.warps += 1;
        self.warped_cycles += skipped;
    }

    /// Whether any request or response is anywhere in the hierarchy.
    fn hierarchy_busy(&self) -> bool {
        self.l1_in.iter().any(|q| !q.is_empty())
            || self.l1_down.iter().any(|q| !q.is_empty())
            || self.l2_in.iter().any(|q| !q.is_empty())
            || self.l2_down.iter().any(|q| !q.is_empty())
            || self.dram_resp.iter().any(|q| !q.is_empty())
            || !self.resp_holdover.is_empty()
            || self.l2_up.iter().any(|q| !q.is_empty())
            || self.l1_fill_in.iter().any(|q| !q.is_empty())
            || self.l1_up.iter().any(|q| !q.is_empty())
            || self.l1s.iter().any(CacheUnit::busy)
            || self.l2s.iter().any(CacheUnit::busy)
            || self.dram.busy()
    }

    /// Returns whether the phase machine did anything this cycle: ticked
    /// the GPU to some effect, made a transition, or worked on a flush.
    fn advance_phase(&mut self, now: Cycle) -> bool {
        match self.phase {
            Phase::Launching { until } => {
                if now >= until {
                    match self.launches.pop_front() {
                        Some((desc, seq)) => {
                            if let Some(rec) = self.telemetry.as_deref_mut() {
                                rec.instant(format!("kernel:{}#{seq}", desc.name), now.0);
                            }
                            self.gpu.start_kernel(desc, seq);
                            self.phase = Phase::Running;
                        }
                        None => self.phase = Phase::Finished,
                    }
                    true
                } else {
                    false
                }
            }
            Phase::Running => {
                let acted = self.gpu.tick(now, &mut self.l1_in);
                if self.gpu.kernel_done() {
                    self.phase = Phase::DrainKernel;
                    return true;
                }
                acted
            }
            Phase::DrainKernel => {
                if !self.hierarchy_busy() {
                    let dirty = self.l2s.iter().any(|c| !c.policy().cache_stores);
                    let _ = dirty;
                    for c in &mut self.l2s {
                        c.start_flush();
                    }
                    self.phase = Phase::Flushing;
                    true
                } else {
                    false
                }
            }
            Phase::Flushing => {
                let mut done = true;
                for (c, down) in self.l2s.iter_mut().zip(self.l2_down.iter_mut()) {
                    c.flush_tick(now, down);
                    done &= c.flush_done();
                }
                if done {
                    self.phase = Phase::DrainFlush;
                }
                // A flush in progress retries blocked writebacks every
                // cycle; `next_event` pins this phase to `now` anyway.
                true
            }
            Phase::DrainFlush => {
                if !self.hierarchy_busy() {
                    // Acquire for the next kernel: flash self-invalidation
                    // of all valid GPU cache data.
                    for c in &mut self.l1s {
                        c.self_invalidate();
                    }
                    for c in &mut self.l2s {
                        c.self_invalidate();
                    }
                    if let Some(rec) = self.telemetry.as_deref_mut() {
                        rec.instant("self_invalidate", now.0);
                    }
                    self.phase = if self.launches.is_empty() {
                        Phase::Finished
                    } else {
                        Phase::Launching {
                            until: now + self.cfg.launch_overhead,
                        }
                    };
                    true
                } else {
                    false
                }
            }
            Phase::Finished => false,
        }
    }

    /// One cycle of the memory hierarchy, ticked from DRAM upward.
    ///
    /// Returns whether any stage moved, scheduled, or serviced anything.
    fn tick_memory(&mut self, now: Cycle) -> bool {
        // 1. DRAM scheduling.
        let mut acted = self.dram.tick(now);

        // 2. DRAM responses toward their L2 slice (holdover first).
        while let Some(resp) = self.resp_holdover.pop_front() {
            let slice = self.cfg.l2_slice_of(resp.line);
            if self.dram_resp[slice].can_push() {
                self.dram_resp[slice]
                    .push(now, resp)
                    .unwrap_or_else(|_| unreachable!("checked can_push"));
                acted = true;
            } else {
                self.resp_holdover.push_front(resp);
                break;
            }
        }
        while self.resp_holdover.len() < 4 {
            match self.dram.pop_response(now) {
                Some(resp) => {
                    acted = true;
                    let slice = self.cfg.l2_slice_of(resp.line);
                    if self.dram_resp[slice].can_push() {
                        self.dram_resp[slice]
                            .push(now, resp)
                            .unwrap_or_else(|_| unreachable!("checked can_push"));
                    } else {
                        self.resp_holdover.push_back(resp);
                    }
                }
                None => break,
            }
        }

        // 3. L2 fills from DRAM responses.
        for s in 0..self.l2s.len() {
            for _ in 0..2 {
                let Some(&resp) = self.dram_resp[s].ready_front(now) else {
                    break;
                };
                match self.l2s[s].fill(now, resp, &mut self.l2_up[s]) {
                    Ok(()) => {
                        self.dram_resp[s].pop_ready(now);
                        acted = true;
                    }
                    Err(_) => break, // response queue full; retry next cycle
                }
            }
        }

        // 4. L2 accesses (with miss-replay, up to the slice's port width).
        for s in 0..self.l2s.len() {
            let (slice, l2_in, l2_down, l2_up) = (
                &mut self.l2s[s],
                &mut self.l2_in[s],
                &mut self.l2_down[s],
                &mut self.l2_up[s],
            );
            acted |= slice.service(now, l2_in, l2_down, l2_up);
        }

        // 5. L2 -> DRAM.
        for q in &mut self.l2_down {
            while let Some(req) = q.ready_front(now) {
                if self.dram.can_accept(req) {
                    let req = q.pop_ready(now).expect("head ready");
                    self.dram
                        .push(now, req)
                        .unwrap_or_else(|_| unreachable!("checked can_accept"));
                    acted = true;
                } else {
                    break;
                }
            }
        }

        // 6. Response crossbar (L2 -> L1s).
        acted |= self
            .resp_xbar
            .tick(now, &mut self.l2_up, &mut self.l1_fill_in, |r| {
                match r.origin {
                    miopt_engine::Origin::Wavefront { cu, .. } => cu as usize,
                    miopt_engine::Origin::Internal => 0,
                }
            })
            > 0;

        // 7. L1 fills.
        for i in 0..self.l1s.len() {
            for _ in 0..2 {
                let Some(&resp) = self.l1_fill_in[i].ready_front(now) else {
                    break;
                };
                match self.l1s[i].fill(now, resp, &mut self.l1_up[i]) {
                    Ok(()) => {
                        self.l1_fill_in[i].pop_ready(now);
                        acted = true;
                    }
                    Err(_) => break,
                }
            }
        }

        // 8. L1 accesses (with miss-replay).
        for i in 0..self.l1s.len() {
            acted |= self.l1s[i].service(
                now,
                &mut self.l1_in[i],
                &mut self.l1_down[i],
                &mut self.l1_up[i],
            );
        }

        // 9. Request crossbar (L1s -> L2 slices).
        let cfg = &self.cfg;
        acted |= self
            .req_xbar
            .tick(now, &mut self.l1_down, &mut self.l2_in, |r| {
                cfg.l2_slice_of(r.line)
            })
            > 0;

        // 10. Responses to the GPU.
        for i in 0..self.l1_up.len() {
            while let Some(resp) = self.l1_up[i].pop_ready(now) {
                self.gpu.on_response(resp);
                acted = true;
            }
        }
        acted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CachePolicy;
    use miopt_workloads::{by_name, SuiteConfig};

    fn run(policy: CachePolicy, name: &str) -> Metrics {
        let w = by_name(&SuiteConfig::quick(), name).unwrap();
        let mut sys = ApuSystem::new(SystemConfig::small_test(), PolicyConfig::of(policy), &w);
        sys.run_to_completion(200_000_000).expect("run finished")
    }

    #[test]
    fn softmax_runs_under_every_policy() {
        for p in CachePolicy::ALL {
            let m = run(p, "FwSoft");
            assert!(m.cycles > 0, "{p}");
            assert!(m.gpu.retired_wavefronts > 0, "{p}");
            assert!(m.dram_accesses() > 0, "{p}");
        }
    }

    #[test]
    fn caching_reduces_dram_traffic_for_rereads() {
        // FwSoft re-reads its tiny input: cached runs must hit DRAM less.
        let unc = run(CachePolicy::Uncached, "FwSoft");
        let r = run(CachePolicy::CacheR, "FwSoft");
        assert!(
            r.dram_accesses() < unc.dram_accesses(),
            "cached {} vs uncached {}",
            r.dram_accesses(),
            unc.dram_accesses()
        );
    }

    #[test]
    fn uncached_counts_no_cache_stalls() {
        let m = run(CachePolicy::Uncached, "FwSoft");
        assert_eq!(m.cache_stalls(), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(CachePolicy::CacheRW, "FwSoft");
        let b = run(CachePolicy::CacheRW, "FwSoft");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dram_accesses(), b.dram_accesses());
        assert_eq!(a.cache_stalls(), b.cache_stalls());
    }

    #[test]
    fn multi_kernel_workload_flushes_between_kernels() {
        let w = by_name(&SuiteConfig::quick(), "FwLSTM").unwrap();
        let mut sys = ApuSystem::new(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheRW),
            &w,
        );
        let m = sys.run_to_completion(2_000_000_000).expect("finished");
        // 150 launches, each at least the launch overhead apart.
        assert!(m.cycles > 150 * SystemConfig::small_test().launch_overhead);
        assert!(m.l2.self_invalidations.get() > 0 || m.l2.flush_writebacks.get() > 0);
    }

    #[test]
    fn checked_run_with_tight_cadence_completes_quietly() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut sys = ApuSystem::new(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheRW),
            &w,
        );
        sys.enable_sentinel(64, 50_000);
        assert!(sys.sentinel_enabled());
        let m = sys.run_to_completion(200_000_000).expect("healthy run");
        assert!(m.cycles > 0);
        assert!(sys.check_invariants_now().is_empty());
    }

    #[test]
    fn sentinel_catches_an_injected_credit_loss() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut sys = ApuSystem::new(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheR),
            &w,
        );
        sys.inject_queue_credit_loss(1);
        let vs = sys.check_invariants_now();
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].component, "queue.l1_in[1]");
        assert_eq!(vs[0].invariant, "credit_conservation");
        sys.enable_sentinel(64, 0);
        let err = sys.run_to_completion(200_000_000).expect_err("must halt");
        assert_eq!(err.diagnostic.reason, StallReason::InvariantViolation);
        assert!(err
            .diagnostic
            .violations
            .iter()
            .any(|v| v.component == "queue.l1_in[1]" && v.invariant == "credit_conservation"));
    }

    #[test]
    fn sentinel_catches_a_leaked_allocating_mshr_entry() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut sys = ApuSystem::new(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheR),
            &w,
        );
        sys.inject_l1_mshr_leak(2, miopt_engine::LineAddr(8), true);
        sys.enable_sentinel(64, 0);
        let err = sys.run_to_completion(200_000_000).expect_err("must halt");
        assert_eq!(err.diagnostic.reason, StallReason::InvariantViolation);
        let v = err
            .diagnostic
            .violations
            .iter()
            .find(|v| v.invariant == "mshr_reservation")
            .expect("reservation violation");
        assert_eq!(v.component, "l1[2]");
        assert!(err.diagnostic.cycle < 200, "caught at the first sweep");
    }

    #[test]
    fn watchdog_reports_a_wedged_drain_with_mshr_contents() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut sys = ApuSystem::new(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheR),
            &w,
        );
        // A structurally plausible leak: no invariant trips, but the
        // hierarchy never drains, so only the watchdog can catch it.
        sys.inject_l1_mshr_leak(0, miopt_engine::LineAddr(8), false);
        sys.enable_sentinel(64, 5_000);
        let err = sys.run_to_completion(200_000_000).expect_err("must wedge");
        assert_eq!(err.diagnostic.reason, StallReason::NoForwardProgress);
        assert!(err.diagnostic.violations.is_empty(), "plausible leak");
        let (comp, entries) = err
            .diagnostic
            .mshrs
            .iter()
            .find(|(c, _)| c == "l1[0]")
            .expect("leaked MSHR in the diagnostic");
        assert_eq!(comp, "l1[0]");
        assert!(entries[0].contains("line 0x8"), "{entries:?}");
        assert!(err.to_string().contains("halted"));
        // The budget was nowhere near exhausted: the watchdog fired first.
        assert!(err.diagnostic.cycle < 200_000_000);
    }

    #[test]
    fn time_skipping_is_bit_identical_to_per_cycle_stepping() {
        // The strongest form of the skip-ahead contract: identical
        // metrics AND an identical telemetry stream (every epoch
        // boundary, phase span, and event instant at the same cycle),
        // with the sentinel sweeping at tight cadence in both runs.
        for p in [
            CachePolicy::Uncached,
            CachePolicy::CacheR,
            CachePolicy::CacheRW,
        ] {
            let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
            let mut fast = ApuSystem::new(SystemConfig::small_test(), PolicyConfig::of(p), &w);
            let mut slow = ApuSystem::new(SystemConfig::small_test(), PolicyConfig::of(p), &w);
            slow.set_time_skip(false);
            assert!(fast.time_skip_enabled());
            assert!(!slow.time_skip_enabled());
            for sys in [&mut fast, &mut slow] {
                sys.enable_telemetry(512);
                sys.enable_sentinel(64, 50_000);
            }
            let mf = fast.run_to_completion(200_000_000).expect("skip run");
            let ms = slow.run_to_completion(200_000_000).expect("per-cycle run");
            assert_eq!(mf.cycles, ms.cycles, "{p}");
            assert_eq!(mf.dram_accesses(), ms.dram_accesses(), "{p}");
            assert_eq!(mf.cache_stalls(), ms.cache_stalls(), "{p}");
            assert_eq!(fast.take_telemetry(), slow.take_telemetry(), "{p}");
        }
    }

    #[test]
    fn budget_exhaustion_fires_at_the_same_cycle_with_skipping() {
        // A wedged quiescent system warps straight to the budget; the
        // diagnostic must report the identical halt cycle either way.
        let halt_cycle = |skip: bool| {
            let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
            let mut sys = ApuSystem::new(
                SystemConfig::small_test(),
                PolicyConfig::of(CachePolicy::CacheR),
                &w,
            );
            sys.set_time_skip(skip);
            // Watchdog off: only the budget can end the wedged drain.
            sys.enable_sentinel(64, 0);
            sys.inject_l1_mshr_leak(0, miopt_engine::LineAddr(8), false);
            let err = sys.run_to_completion(100_000).expect_err("must time out");
            assert_eq!(err.diagnostic.reason, StallReason::CycleBudget);
            err.diagnostic.cycle
        };
        assert_eq!(halt_cycle(true), halt_cycle(false));
    }

    #[test]
    fn idle_system_replays_a_workload_like_a_fresh_one() {
        // Feeding a workload's kernels one at a time into a persistent
        // idle system must retire the same work as a one-shot run.
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let one_shot = run(CachePolicy::CacheR, "FwSoft");
        let mut sys = ApuSystem::new_idle(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheR),
        );
        assert!(sys.is_done());
        assert_eq!(sys.pending_launches(), 0);
        for (i, k) in w.launches.iter().enumerate() {
            sys.enqueue_kernel(Arc::clone(k), i as u32);
            sys.run_to_completion(200_000_000).expect("kernel finished");
            assert!(sys.is_done());
        }
        let m = sys.metrics();
        assert_eq!(m.gpu.retired_wavefronts, one_shot.gpu.retired_wavefronts);
        assert_eq!(m.dram_accesses(), one_shot.dram_accesses());
        assert_eq!(m.cycles, one_shot.cycles);
    }

    #[test]
    fn idle_until_is_bit_identical_across_skip_modes() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut runs = Vec::new();
        for skip in [true, false] {
            let mut sys = ApuSystem::new_idle(
                SystemConfig::small_test(),
                PolicyConfig::of(CachePolicy::CacheR),
            );
            sys.set_time_skip(skip);
            sys.enable_telemetry(512);
            // Idle gap, kernel, idle gap, kernel — with gaps that are not
            // multiples of the telemetry interval.
            sys.idle_until(Cycle(1_700));
            sys.enqueue_kernel(Arc::clone(&w.launches[0]), 0);
            sys.run_to_completion(200_000_000).expect("first kernel");
            let resume = sys.now() + 12_345;
            sys.idle_until(resume);
            sys.enqueue_kernel(Arc::clone(&w.launches[0]), 1);
            sys.run_to_completion(200_000_000).expect("second kernel");
            let m = sys.metrics();
            runs.push((m.cycles, m.dram_accesses(), sys.take_telemetry()));
        }
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn policy_switch_at_idle_boundary_takes_effect() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut sys = ApuSystem::new_idle(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::Uncached),
        );
        sys.enqueue_kernel(Arc::clone(&w.launches[0]), 0);
        sys.run_to_completion(200_000_000).expect("uncached kernel");
        let uncached_dram = sys.metrics().dram_accesses();
        // Switch to CacheR with a half-capacity L2 partition and rerun.
        sys.set_policy_config(
            &PolicyConfig::of(CachePolicy::CacheR),
            Some(WayRange::new(0, SystemConfig::small_test().l2.ways / 2)),
        );
        sys.enqueue_kernel(Arc::clone(&w.launches[0]), 1);
        sys.run_to_completion(400_000_000).expect("cached kernel");
        let delta = sys.metrics().dram_accesses() - uncached_dram;
        assert!(
            delta < uncached_dram,
            "cached rerun must hit DRAM less: {delta} vs {uncached_dram}"
        );
        assert!(sys.check_invariants_now().is_empty());
    }

    #[test]
    fn cache_rw_coalesces_store_revisits() {
        let unc = run(CachePolicy::Uncached, "BwBN");
        let rw = run(CachePolicy::CacheRW, "BwBN");
        assert!(
            rw.dram.writes.get() < unc.dram.writes.get(),
            "rw {} vs unc {}",
            rw.dram.writes.get(),
            unc.dram.writes.get()
        );
    }
}
