use crate::{Metrics, PolicyConfig, SystemConfig};
use miopt_cache::{CacheStats, CacheUnit, LevelPolicy, WayRange};
use miopt_dram::Dram;
use miopt_engine::sentinel::{InvariantViolation, Sentinel};
use miopt_engine::{Cycle, EventWheel, LineAddr, MemReq, MemResp, TimedQueue};
use miopt_gpu::{Gpu, KernelDesc};
use miopt_noc::Crossbar;
use miopt_telemetry::{Frame, Recorder, TelemetryRun};
use miopt_workloads::Workload;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Why a run halted without completing (see [`StallDiagnostic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The configured cycle budget ran out while the system was still
    /// making (possibly glacial) progress.
    CycleBudget,
    /// The sentinel watchdog saw no retirement, queue movement, or DRAM
    /// activity for its full window: the system is wedged.
    NoForwardProgress,
    /// A component's conservation invariant was violated (see
    /// [`StallDiagnostic::violations`]).
    InvariantViolation,
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StallReason::CycleBudget => "cycle budget exhausted",
            StallReason::NoForwardProgress => "no forward progress",
            StallReason::InvariantViolation => "invariant violation",
        })
    }
}

/// A structured snapshot of a stuck simulation, captured at the moment a
/// run fails: where every in-flight request is, which invariants (if any)
/// are broken, and what the wavefronts are waiting on.
///
/// Attached to [`SimTimeoutError`]; the harness serializes it into the
/// sweep report so a wedged overnight run is diagnosable from the JSON
/// alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallDiagnostic {
    /// The cycle at which the run halted.
    pub cycle: u64,
    /// The phase label at halt time (`launch`, `run`, `drain_kernel`, …).
    pub phase: &'static str,
    /// Why the run halted.
    pub reason: StallReason,
    /// The oldest request still sitting in a hierarchy queue (by issue
    /// cycle), with the queue that holds it. `None` when all queues are
    /// empty (the wedge is inside a component, e.g. a leaked MSHR).
    pub oldest_request: Option<String>,
    /// Occupancy of every nonempty queue, in registry order.
    pub queues: Vec<(String, usize)>,
    /// Outstanding MSHR entries per cache that has any, in registry
    /// order (each entry formatted by `CacheUnit::mshr_snapshot`).
    pub mshrs: Vec<(String, Vec<String>)>,
    /// Per-CU wavefront state: `cu[i]: N resident, M loads outstanding,
    /// K accesses unissued` for every CU with resident wavefronts.
    pub wavefronts: Vec<String>,
    /// Every invariant violation found at halt time (empty unless
    /// [`StallReason::InvariantViolation`], or the stall uncovered one).
    pub violations: Vec<InvariantViolation>,
}

impl fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stall at cycle {} (phase {}): {}",
            self.cycle, self.phase, self.reason
        )?;
        for v in &self.violations {
            writeln!(f, "  violation: {v}")?;
        }
        if let Some(req) = &self.oldest_request {
            writeln!(f, "  oldest request: {req}")?;
        }
        for (name, occ) in &self.queues {
            writeln!(f, "  queue {name}: {occ} occupied")?;
        }
        for (name, entries) in &self.mshrs {
            writeln!(f, "  mshr {name}: {}", entries.join("; "))?;
        }
        for w in &self.wavefronts {
            writeln!(f, "  {w}")?;
        }
        Ok(())
    }
}

/// Returned by [`ApuSystem::run_to_completion`] when the run halts before
/// completion: the cycle budget ran out, the sentinel watchdog detected a
/// wedge, or an invariant check failed. Carries a [`StallDiagnostic`]
/// describing the halted system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTimeoutError {
    /// The cycle budget of the halted run.
    pub max_cycles: u64,
    /// What the halted system looked like.
    pub diagnostic: Box<StallDiagnostic>,
}

impl fmt::Display for SimTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.diagnostic.reason {
            StallReason::CycleBudget => {
                write!(f, "simulation exceeded {} cycles", self.max_cycles)
            }
            reason => write!(
                f,
                "simulation halted at cycle {}: {reason}",
                self.diagnostic.cycle
            ),
        }
    }
}

impl Error for SimTimeoutError {}

/// Sentinel bookkeeping: invariant-check cadence and the forward-progress
/// watchdog. Lives behind an `Option<Box<_>>` so release runs without
/// `--check-invariants` pay nothing (the same idiom as telemetry).
#[derive(Debug)]
struct SentinelState {
    /// Cycles between invariant sweeps (and watchdog fingerprints).
    check_interval: u64,
    /// Declare a wedge after this many cycles without progress
    /// (0 disables the watchdog).
    watchdog_cycles: u64,
    /// Next cycle at which to run a check.
    next_check: Cycle,
    /// Progress fingerprint at the last check.
    last_fingerprint: u64,
    /// Cycle since which the fingerprint has not changed.
    stable_since: Cycle,
}

impl SentinelState {
    /// Default cadence: sweep invariants every 4096 cycles; call the run
    /// wedged after one million cycles with no counter movement (far
    /// beyond any legitimate quiet window — the longest is a full DRAM
    /// queue draining, tens of cycles per entry).
    const DEFAULT_CHECK_INTERVAL: u64 = 4096;
    /// Default watchdog window, in cycles.
    const DEFAULT_WATCHDOG: u64 = 1_000_000;

    fn new(check_interval: u64, watchdog_cycles: u64) -> SentinelState {
        assert!(
            check_interval > 0,
            "sentinel check interval must be nonzero"
        );
        SentinelState {
            check_interval,
            watchdog_cycles,
            next_check: Cycle(check_interval),
            last_fingerprint: 0,
            stable_since: Cycle::ZERO,
        }
    }
}

/// Destination of one telemetry sample walk: the first frame of a run
/// records names and values (fixing the recorder's registry); every
/// frame after that appends values only, into a buffer reused across
/// samples. One `sample_into` walk feeds both, so the orders match by
/// construction.
enum SampleSink<'a> {
    Named(&'a mut Frame),
    Values(&'a mut Vec<u64>),
}

impl SampleSink<'_> {
    fn record(&mut self, scope: &str, stats: &dyn miopt_telemetry::StatSnapshot) {
        match self {
            SampleSink::Named(frame) => frame.record(scope, stats),
            SampleSink::Values(values) => {
                values.extend(stats.stat_pairs().iter().map(|&(_, v)| v));
            }
        }
    }

    fn record_value(&mut self, name: &str, value: u64) {
        match self {
            SampleSink::Named(frame) => frame.record_value(name, value),
            SampleSink::Values(values) => values.push(value),
        }
    }
}

// --- Event-core actors -------------------------------------------------
//
// The discrete-event core decomposes one simulated cycle into twelve
// actors, one per stage of the per-cycle reference loop. The actor id IS
// its dispatch priority within a cycle, and the ordering reproduces the
// per-cycle simulator exactly: telemetry sampling and sentinel checks
// observe the state *before* the cycle's actions (they fired after the
// previous cycle's step in the per-cycle loop), then the memory
// hierarchy ticks from DRAM upward (`tick_memory` stages 1-10), then the
// phase machine (`advance_phase`) runs last.

/// Telemetry epoch sample (fires at sampling-interval multiples).
const A_TELEMETRY: usize = 0;
/// Sentinel invariant sweep / watchdog fingerprint (fires at
/// `next_check`).
const A_SENTINEL: usize = 1;
/// DRAM scheduling plus response drain toward the L2 slices (stages 1-2).
const A_DRAM: usize = 2;
/// L2 fills from DRAM responses (stage 3).
const A_L2_FILL: usize = 3;
/// L2 access servicing with miss-replay (stage 4).
const A_L2_SERVICE: usize = 4;
/// L2 writeback/miss traffic into DRAM (stage 5).
const A_L2_TO_DRAM: usize = 5;
/// Response crossbar, L2 slices toward L1s (stage 6).
const A_RESP_XBAR: usize = 6;
/// L1 fills from the response crossbar (stage 7).
const A_L1_FILL: usize = 7;
/// L1 access servicing with miss-replay (stage 8).
const A_L1_SERVICE: usize = 8;
/// Request crossbar, L1s toward L2 slices (stage 9).
const A_REQ_XBAR: usize = 9;
/// Response delivery from the L1s to the GPU (stage 10).
const A_GPU_RESP: usize = 10;
/// The phase machine: GPU execution, drains, flushes, launches.
const A_PHASE: usize = 11;
/// Number of actors (and the width of the scheduled-cycle table).
const N_ACTORS: usize = 12;

/// "Not scheduled" sentinel for [`EventCore::scheduled`].
const NEVER: Cycle = Cycle(u64::MAX);

/// Sentinel in [`UNIT_WHEEL`] for actors without unit-level scheduling.
const NO_WHEEL: usize = usize::MAX;

/// Unit-wheel index per actor. The six replicated-unit actors — the 16
/// L2 slices' fill/service/writeback stages and the 64 L1s'
/// fill/service/response stages — schedule *per unit*, so a dispatch
/// walks only the slices or CUs with due work instead of all of them.
/// The remaining actors (DRAM, crossbars, phase, telemetry, sentinel)
/// are single components and stay actor-level.
const UNIT_WHEEL: [usize; N_ACTORS] = {
    let mut t = [NO_WHEEL; N_ACTORS];
    t[A_L2_FILL] = 0;
    t[A_L2_SERVICE] = 1;
    t[A_L2_TO_DRAM] = 2;
    t[A_L1_FILL] = 3;
    t[A_L1_SERVICE] = 4;
    t[A_GPU_RESP] = 5;
    t
};

/// Number of unit wheels (distinct non-sentinel entries of [`UNIT_WHEEL`]).
const N_UNIT_WHEELS: usize = 6;

/// Display names for the per-actor dispatch histogram, indexed by actor id.
const ACTOR_NAMES: [&str; N_ACTORS] = [
    "telemetry",
    "sentinel",
    "dram",
    "l2_fill",
    "l2_service",
    "l2_to_dram",
    "resp_xbar",
    "l1_fill",
    "l1_service",
    "req_xbar",
    "gpu_resp",
    "phase",
];

/// One actor's row in an [`EventProfile`]: where the event core's wall
/// clock and heap traffic went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventProfileRow {
    /// Event-core stage name (as in [`ApuSystem::event_stats_by_actor`]).
    pub name: &'static str,
    /// Dispatches of this actor while the profiler was enabled.
    pub events: u64,
    /// Wall-clock nanoseconds spent inside this actor's dispatches.
    pub nanos: u64,
    /// Heap allocations observed inside this actor's dispatches. Only
    /// meaningful when the process installed a counting allocator that
    /// reports into `miopt_engine::alloc_track` (zero otherwise).
    pub allocs: u64,
}

/// Per-actor cost breakdown of an event-core run, collected by
/// [`ApuSystem::enable_profiler`] and retrieved with
/// [`ApuSystem::take_profile`].
#[derive(Debug, Clone, Default)]
pub struct EventProfile {
    /// One row per event-core actor, in dispatch-priority order.
    pub actors: Vec<EventProfileRow>,
}

impl EventProfile {
    /// Total dispatches across all actors.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.actors.iter().map(|r| r.events).sum()
    }

    /// Total profiled nanoseconds across all actors.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.actors.iter().map(|r| r.nanos).sum()
    }

    /// Total heap allocations observed across all actors.
    #[must_use]
    pub fn total_allocs(&self) -> u64 {
        self.actors.iter().map(|r| r.allocs).sum()
    }
}

/// Accumulators behind [`ApuSystem::enable_profiler`], boxed so the
/// common unprofiled path carries only a null pointer check.
#[derive(Debug, Default)]
struct ProfilerState {
    events: [u64; N_ACTORS],
    nanos: [u64; N_ACTORS],
    allocs: [u64; N_ACTORS],
}

/// The event-driven scheduler: a calendar-queue wheel of actor wakeups
/// plus the earliest pending wake per actor.
///
/// The `scheduled` table makes wheel entries *lazy*: waking an actor
/// earlier than a cycle already in the wheel just inserts the earlier
/// entry and lets the stale one pop as a no-op (it no longer matches
/// `scheduled`). Within a dispatching cycle, an actor may wake another
/// actor at the *same* cycle only if the target's priority is higher
/// than the one currently dispatching (its stage is still to come, just
/// as in the per-cycle stage order); otherwise the wake clamps to the
/// next cycle.
#[derive(Debug)]
struct EventCore {
    wheel: EventWheel,
    /// Per-unit wakeups for the replicated-unit actors (see
    /// [`UNIT_WHEEL`]): wheel `UNIT_WHEEL[a]` holds, per cycle, the mask
    /// of actor `a`'s units due then. The actor-level `wheel` always
    /// carries a matching entry at the *earliest* pending unit cycle
    /// (kept by [`EventCore::wake_unit`] on insert and re-established by
    /// [`EventCore::rearm_units`] after every dispatch), so no unit
    /// entry is ever stranded behind a popped actor entry.
    units: [EventWheel; N_UNIT_WHEELS],
    /// Earliest pending wake per actor ([`NEVER`] when idle).
    scheduled: [Cycle; N_ACTORS],
    /// Actors still to dispatch in the cycle currently being processed.
    due: u64,
    /// The cycle currently being dispatched.
    now: Cycle,
    /// The actor currently dispatching (same-cycle wake arbitration).
    current: usize,
    /// Cumulative actor dispatches (the "events" of the event core).
    events: u64,
    /// Cumulative dispatches broken down by actor.
    events_by_actor: [u64; N_ACTORS],
    /// Cumulative cycles with at least one dispatch.
    active_cycles: u64,
}

impl EventCore {
    fn new() -> EventCore {
        EventCore {
            wheel: EventWheel::new(),
            units: std::array::from_fn(|_| EventWheel::new()),
            scheduled: [NEVER; N_ACTORS],
            due: 0,
            now: Cycle::ZERO,
            current: N_ACTORS,
            events: 0,
            events_by_actor: [0; N_ACTORS],
            active_cycles: 0,
        }
    }

    /// Clears all pending wakes and rebases the wheels at `now` (run
    /// entry).
    fn reset(&mut self, now: Cycle) {
        self.wheel.reset(now);
        for w in &mut self.units {
            w.reset(now);
        }
        self.scheduled = [NEVER; N_ACTORS];
        self.due = 0;
        self.now = now;
        self.current = N_ACTORS;
    }

    /// Run-entry wake: schedules `actor` no earlier than the rebased
    /// `now` (dispatch *at* `now` is allowed before the loop starts).
    fn seed(&mut self, actor: usize, at: Cycle) {
        let at = at.max(self.now);
        if at < self.scheduled[actor] {
            self.scheduled[actor] = at;
            self.wheel.insert(at, actor as u8);
        }
    }

    /// Run-entry wake of one unit of a replicated-unit actor.
    fn seed_unit(&mut self, actor: usize, at: Cycle, unit: usize) {
        let at = at.max(self.now);
        self.units[UNIT_WHEEL[actor]].insert(at, unit as u8);
        self.seed(actor, at);
    }

    /// Mid-run wake: schedules `actor` at `at`, clamped to the currently
    /// dispatching cycle's successor unless the target's stage for this
    /// cycle is still to come (strictly higher priority than the actor
    /// dispatching now).
    fn wake(&mut self, actor: usize, at: Cycle) {
        if at <= self.now {
            if actor > self.current {
                self.scheduled[actor] = self.now;
                self.due |= 1 << actor;
                return;
            }
            let at = self.now + 1;
            if at < self.scheduled[actor] {
                self.scheduled[actor] = at;
                self.wheel.insert(at, actor as u8);
            }
            return;
        }
        if at < self.scheduled[actor] {
            self.scheduled[actor] = at;
            self.wheel.insert(at, actor as u8);
        }
    }

    /// Mid-run wake of one unit of a replicated-unit actor, with the
    /// same same-cycle clamping as [`EventCore::wake`]. The unit entry
    /// lands in the actor's unit wheel; the actor-level wake keeps the
    /// earliest-pending invariant.
    fn wake_unit(&mut self, actor: usize, at: Cycle, unit: usize) {
        let at = if at <= self.now {
            if actor > self.current {
                self.now
            } else {
                self.now + 1
            }
        } else {
            at
        };
        self.units[UNIT_WHEEL[actor]].insert(at, unit as u8);
        self.wake(actor, at);
    }

    /// Pops every unit of `actor` due at or before the dispatching
    /// cycle, as a bitmask over unit indices. A unit walked as a no-op
    /// (its stale entry outlived an earlier reschedule) is harmless:
    /// every unit stage is a pure no-op without ready input.
    fn due_units(&mut self, actor: usize) -> u64 {
        let w = &mut self.units[UNIT_WHEEL[actor]];
        let mut mask = 0u64;
        while let Some(c) = w.next_cycle() {
            if c > self.now {
                break;
            }
            mask |= w.pop_next().expect("cycle just observed").1;
        }
        mask
    }

    /// Re-arms `actor` at its unit wheel's earliest pending cycle, run
    /// after each of its dispatches. This repairs the one case the lazy
    /// actor-level minimum drops: a unit pending at `t2` whose actor
    /// entry went stale when a later `t1 < t2` wake superseded it —
    /// without the re-arm that unit would sleep until the *next* wake.
    fn rearm_units(&mut self, actor: usize) {
        if let Some(c) = self.units[UNIT_WHEEL[actor]].next_cycle() {
            self.wake(actor, c);
        }
    }
}

/// Where the system is in the kernel-boundary protocol (paper Section
/// III): launch → run → drain → release flush → drain → self-invalidate →
/// next launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Host-side launch overhead until the given cycle.
    Launching { until: Cycle },
    /// Wavefronts executing.
    Running,
    /// Wavefronts done; draining in-flight memory operations.
    DrainKernel,
    /// Writing back all L2 dirty data (release at a system-scope
    /// synchronization point).
    Flushing,
    /// Draining the flush writebacks to DRAM.
    DrainFlush,
    /// All launches complete.
    Finished,
}

/// The simulated APU: the GPU of [`miopt_gpu`], per-CU L1s, the sliced
/// shared L2, request/response crossbars, and HBM2 DRAM, driven one cycle
/// at a time.
///
/// # Examples
///
/// ```
/// use miopt::{ApuSystem, CachePolicy, PolicyConfig, SystemConfig};
/// use miopt_workloads::{by_name, SuiteConfig};
///
/// let workload = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
/// let mut sys = ApuSystem::new(
///     SystemConfig::small_test(),
///     PolicyConfig::of(CachePolicy::CacheR),
///     &workload,
/// );
/// let metrics = sys.run_to_completion(50_000_000).unwrap();
/// assert!(metrics.cycles > 0);
/// ```
#[derive(Debug)]
pub struct ApuSystem {
    cfg: SystemConfig,
    gpu: Gpu,
    l1_in: Vec<TimedQueue<MemReq>>,
    l1s: Vec<CacheUnit>,
    l1_down: Vec<TimedQueue<MemReq>>,
    /// "Possibly nonempty" bit per `l1_down` queue, maintained for
    /// [`Crossbar::tick_tracked_masked`]: set whenever an L1 services
    /// (the only producer of `l1_down` traffic), cleared by the crossbar
    /// on observing the queue empty. Spurious sets are harmless; a
    /// cleared bit promises the queue is empty.
    req_pending: u64,
    req_xbar: Crossbar,
    l2_in: Vec<TimedQueue<MemReq>>,
    l2s: Vec<CacheUnit>,
    l2_down: Vec<TimedQueue<MemReq>>,
    dram: Dram,
    dram_resp: Vec<TimedQueue<MemResp>>,
    resp_holdover: VecDeque<MemResp>,
    l2_up: Vec<TimedQueue<MemResp>>,
    /// As `req_pending`, for the `l2_up` queues: set whenever an L2
    /// services or fills (the only producers of `l2_up` traffic).
    resp_pending: u64,
    resp_xbar: Crossbar,
    l1_fill_in: Vec<TimedQueue<MemResp>>,
    l1_up: Vec<TimedQueue<MemResp>>,
    now: Cycle,
    phase: Phase,
    launches: VecDeque<(Arc<KernelDesc>, u32)>,
    /// Epoch sampler; `None` (the default) keeps [`ApuSystem::step`] on a
    /// branch-only fast path with no recording overhead.
    telemetry: Option<Box<Recorder>>,
    /// Invariant checker and watchdog; `None` in release builds unless
    /// explicitly enabled, `Some` in debug builds always.
    sentinel: Option<Box<SentinelState>>,
    /// Engine selection: when true (the default),
    /// [`ApuSystem::run_to_completion`] runs the discrete-event core
    /// (pop-min → dispatch → reschedule on the calendar wheel); when
    /// false it steps every cycle — the `--no-skip` validation oracle.
    /// See [`ApuSystem::set_time_skip`].
    skip: bool,
    /// The discrete-event scheduler driving the event-core run loop.
    ev: EventCore,
    /// First cycle whose request-crossbar tick is still unaccounted: the
    /// event core ticks a crossbar only when an input head is ready, and
    /// compensates the round-robin cursor for the skipped idle rotations
    /// just before the next real tick (and at run exit).
    req_synced: Cycle,
    /// As [`ApuSystem::req_synced`], for the response crossbar.
    resp_synced: Cycle,
    /// Number of inter-event gaps crossed and total cycles in them
    /// (diagnostics for [`ApuSystem::time_skip_stats`]).
    warps: u64,
    warped_cycles: u64,
    /// Scratch buffer for steady-state telemetry samples, reused across
    /// frames so sampling allocates only on the first frame of a run.
    frame_values: Vec<u64>,
    /// Per-actor cost accumulators; `None` (the default) keeps the
    /// dispatch loop free of timing reads.
    profile: Option<Box<ProfilerState>>,
}

impl ApuSystem {
    /// Default invariant-sweep cadence for [`ApuSystem::enable_sentinel`]
    /// (cycles between sweeps).
    pub const DEFAULT_CHECK_INTERVAL: u64 = SentinelState::DEFAULT_CHECK_INTERVAL;
    /// Default watchdog window for [`ApuSystem::enable_sentinel`]
    /// (cycles without progress before declaring a wedge).
    pub const DEFAULT_WATCHDOG: u64 = SentinelState::DEFAULT_WATCHDOG;

    /// Builds a system ready to execute `workload` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]); use [`SystemConfig::builder`] or
    /// [`crate::runner::run_one`] for non-panicking validation.
    #[must_use]
    pub fn new(cfg: SystemConfig, policy: PolicyConfig, workload: &Workload) -> ApuSystem {
        let launches = workload
            .launches
            .iter()
            .enumerate()
            .map(|(i, k)| (Arc::clone(k), i as u32))
            .collect();
        Self::build(cfg, policy, launches)
    }

    /// Builds a system with no kernels queued, starting in the finished
    /// (idle) state — the persistent substrate of a serving scenario.
    ///
    /// Kernels are fed in at runtime with [`ApuSystem::enqueue_kernel`];
    /// between kernels the clock advances with [`ApuSystem::idle_until`]
    /// and policies may be switched with
    /// [`ApuSystem::set_level_policies`]. `now`, statistics and
    /// telemetry are cumulative across every kernel run on the system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]).
    #[must_use]
    pub fn new_idle(cfg: SystemConfig, policy: PolicyConfig) -> ApuSystem {
        let mut sys = Self::build(cfg, policy, VecDeque::new());
        sys.phase = Phase::Finished;
        sys
    }

    fn build(
        cfg: SystemConfig,
        policy: PolicyConfig,
        launches: VecDeque<(Arc<KernelDesc>, u32)>,
    ) -> ApuSystem {
        cfg.validate().expect("invalid system config");
        let n = cfg.n_cus;
        let s = cfg.l2_slices;
        // Per-unit event scheduling (and the crossbar/GPU activity
        // masks) index units by bit in a u64.
        assert!(n <= 64, "at most 64 CUs supported, got {n}");
        assert!(s <= 64, "at most 64 L2 slices supported, got {s}");
        let row_map = cfg.row_map();
        let l1_policy = policy.l1_policy();
        let l2_policy = policy.l2_policy(row_map);
        let mk_req = |cap: usize, lat: u64| TimedQueue::<MemReq>::new(cap, lat);
        let mk_resp = |cap: usize, lat: u64| TimedQueue::<MemResp>::new(cap, lat);
        let cap = cfg.queue_capacity;

        ApuSystem {
            gpu: Gpu::new(n, cfg.cu.clone()),
            l1_in: (0..n).map(|_| mk_req(cap, cfg.lat_cu_l1)).collect(),
            l1s: (0..n)
                .map(|i| CacheUnit::new(cfg.l1.clone(), l1_policy.clone(), i as u32))
                .collect(),
            l1_down: (0..n).map(|_| mk_req(cap, cfg.lat_l1_l2 / 2)).collect(),
            req_pending: 0,
            req_xbar: Crossbar::new(n, s, cfg.xbar_per_output),
            l2_in: (0..s)
                .map(|_| mk_req(cap, cfg.lat_l1_l2 - cfg.lat_l1_l2 / 2))
                .collect(),
            l2s: (0..s)
                .map(|i| CacheUnit::new(cfg.l2.clone(), l2_policy.clone(), 1000 + i as u32))
                .collect(),
            l2_down: (0..s).map(|_| mk_req(cap, cfg.lat_l2_dram)).collect(),
            dram: Dram::new(cfg.dram.clone()),
            dram_resp: (0..s).map(|_| mk_resp(cap, cfg.lat_dram_resp)).collect(),
            resp_holdover: VecDeque::new(),
            l2_up: (0..s).map(|_| mk_resp(cap, cfg.lat_l2_resp / 2)).collect(),
            resp_pending: 0,
            resp_xbar: Crossbar::new(s, n, cfg.xbar_per_output),
            l1_fill_in: (0..n)
                .map(|_| mk_resp(cap, cfg.lat_l2_resp - cfg.lat_l2_resp / 2))
                .collect(),
            l1_up: (0..n).map(|_| mk_resp(cap, cfg.lat_l1_resp)).collect(),
            now: Cycle::ZERO,
            phase: Phase::Launching {
                until: Cycle(cfg.launch_overhead),
            },
            launches,
            cfg,
            telemetry: None,
            // Debug (and therefore CI-test) builds always run checked;
            // release runs opt in via `enable_sentinel`.
            sentinel: cfg!(debug_assertions).then(|| {
                Box::new(SentinelState::new(
                    SentinelState::DEFAULT_CHECK_INTERVAL,
                    SentinelState::DEFAULT_WATCHDOG,
                ))
            }),
            skip: true,
            ev: EventCore::new(),
            req_synced: Cycle::ZERO,
            resp_synced: Cycle::ZERO,
            warps: 0,
            warped_cycles: 0,
            frame_values: Vec::new(),
            profile: None,
        }
    }

    /// Selects the execution engine for
    /// [`ApuSystem::run_to_completion`]: the discrete-event core when
    /// enabled (the default), per-cycle stepping when disabled (the
    /// `--no-skip` validation oracle).
    ///
    /// The two engines are bit-identical. Every actor in the event core
    /// dispatches at exactly the cycles on which the per-cycle loop's
    /// corresponding stage would have done work, in the same intra-cycle
    /// order, and telemetry samples, sentinel checks, and the cycle
    /// budget fire as scheduled events at exactly the per-cycle
    /// simulator's cycles. Disabling the event core therefore only
    /// trades away wall-clock speed; it exists for equivalence testing
    /// and for debugging the event core itself.
    pub fn set_time_skip(&mut self, enabled: bool) {
        self.skip = enabled;
    }

    /// Whether the discrete-event core is enabled.
    #[must_use]
    pub fn time_skip_enabled(&self) -> bool {
        self.skip
    }

    /// Idle-time effectiveness: `(gaps_crossed, cycles_in_gaps)` — the
    /// number of inter-event gaps the event core jumped over and the
    /// total cycles inside them ([`ApuSystem::idle_until`] warps count
    /// too). `cycles_in_gaps / now().0` is the fraction of simulated
    /// time that cost nothing at all.
    #[must_use]
    pub fn time_skip_stats(&self) -> (u64, u64) {
        (self.warps, self.warped_cycles)
    }

    /// Event-core workload: `(events_dispatched, active_cycles)` —
    /// cumulative actor dispatches and the number of simulated cycles
    /// with at least one dispatch. `events_dispatched / active_cycles`
    /// is the mean events per busy cycle (the per-cycle oracle pays ~12
    /// stage polls every cycle, busy or not); `1 - active_cycles /
    /// now().0` is the fraction of cycles the event core never touched.
    #[must_use]
    pub fn event_stats(&self) -> (u64, u64) {
        (self.ev.events, self.ev.active_cycles)
    }

    /// Per-actor breakdown of [`ApuSystem::event_stats`]: one
    /// `(stage name, dispatches)` pair per event-core actor, in dispatch
    /// order. The histogram shows where the event core spends its
    /// dispatches — the first place to look when profiling it.
    #[must_use]
    pub fn event_stats_by_actor(&self) -> [(&'static str, u64); 12] {
        let mut out = [("", 0u64); N_ACTORS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (ACTOR_NAMES[i], self.ev.events_by_actor[i]);
        }
        out
    }

    /// Turns on the per-actor cost profiler: every event-core dispatch is
    /// timed with a monotonic clock and bracketed with
    /// `miopt_engine::alloc_track` counter reads, attributing wall-clock
    /// nanoseconds and heap allocations to the dispatching actor.
    ///
    /// Allocation attribution requires the process to install a counting
    /// `#[global_allocator]` that reports into `alloc_track` (the
    /// `sim_throughput` bench does); without one the alloc columns read
    /// zero. Profiling only instruments the event-core run loop — the
    /// per-cycle `--no-skip` oracle is never profiled.
    pub fn enable_profiler(&mut self) {
        self.profile = Some(Box::default());
    }

    /// Stops profiling and returns the per-actor breakdown, or `None` if
    /// [`ApuSystem::enable_profiler`] was never called.
    pub fn take_profile(&mut self) -> Option<EventProfile> {
        self.profile.take().map(|p| EventProfile {
            actors: (0..N_ACTORS)
                .map(|a| EventProfileRow {
                    name: ACTOR_NAMES[a],
                    events: p.events[a],
                    nanos: p.nanos[a],
                    allocs: p.allocs[a],
                })
                .collect(),
        })
    }

    /// Turns on telemetry recording, sampling every counter in the system
    /// every `interval` cycles. Must be called before stepping.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (validated front ends reject this via
    /// [`crate::runner::RunOptions`] before reaching the system).
    pub fn enable_telemetry(&mut self, interval: u64) {
        let mut rec = Recorder::new(interval);
        rec.enter_phase(Self::phase_label(self.phase), self.now.0);
        self.telemetry = Some(Box::new(rec));
    }

    /// Whether telemetry recording is enabled.
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Finishes telemetry recording (flushing a final partial epoch up to
    /// the current cycle) and returns the time series, or `None` if
    /// telemetry was never enabled.
    pub fn take_telemetry(&mut self) -> Option<TelemetryRun> {
        let frame = self.telemetry.is_some().then(|| self.sample_frame());
        self.telemetry.take().map(|mut rec| {
            if let Some(frame) = frame {
                rec.record_frame(self.now.0, frame);
            }
            rec.into_run(self.now.0)
        })
    }

    /// Samples every component's cumulative counters into `sink`, in the
    /// fixed registry order (gpu, l1, l2, dram, noc, queues). The single
    /// walk serves both sampling paths — named first frame and
    /// values-only steady state — so their counter order cannot diverge.
    fn sample_into(&self, sink: &mut SampleSink<'_>) {
        sink.record("gpu", &self.gpu.stats());
        let mut l1 = CacheStats::default();
        for c in &self.l1s {
            l1.merge(c.stats());
        }
        sink.record("l1", &l1);
        let mut l2 = CacheStats::default();
        for c in &self.l2s {
            l2.merge(c.stats());
        }
        sink.record("l2", &l2);
        sink.record("dram", self.dram.stats());
        sink.record("noc.req", self.req_xbar.stats());
        sink.record("noc.resp", self.resp_xbar.stats());
        let pushed = |qs: &[TimedQueue<MemReq>]| qs.iter().map(TimedQueue::pushed).sum::<u64>();
        let pushed_r = |qs: &[TimedQueue<MemResp>]| qs.iter().map(TimedQueue::pushed).sum::<u64>();
        sink.record_value("queue.l1_in.pushed", pushed(&self.l1_in));
        sink.record_value("queue.l1_down.pushed", pushed(&self.l1_down));
        sink.record_value("queue.l2_in.pushed", pushed(&self.l2_in));
        sink.record_value("queue.l2_down.pushed", pushed(&self.l2_down));
        sink.record_value("queue.dram_resp.pushed", pushed_r(&self.dram_resp));
        sink.record_value("queue.l2_up.pushed", pushed_r(&self.l2_up));
        sink.record_value("queue.l1_fill_in.pushed", pushed_r(&self.l1_fill_in));
        sink.record_value("queue.l1_up.pushed", pushed_r(&self.l1_up));
    }

    /// Samples every counter into a named frame (first frame of a run,
    /// and the final flush in [`ApuSystem::take_telemetry`]).
    fn sample_frame(&self) -> Frame {
        let mut frame = Frame::new();
        self.sample_into(&mut SampleSink::Named(&mut frame));
        frame
    }

    /// Span name for a phase in the recorded trace.
    fn phase_label(phase: Phase) -> &'static str {
        match phase {
            Phase::Launching { .. } => "launch",
            Phase::Running => "run",
            Phase::DrainKernel => "drain_kernel",
            Phase::Flushing => "flush",
            Phase::DrainFlush => "drain_flush",
            Phase::Finished => "finished",
        }
    }

    /// Turns on invariant checking and the forward-progress watchdog for
    /// [`ApuSystem::run_to_completion`]: invariants are swept every
    /// `check_interval` cycles, and a run with no counter movement for
    /// `watchdog_cycles` cycles halts with
    /// [`StallReason::NoForwardProgress`] (`watchdog_cycles == 0`
    /// disables the watchdog). Debug builds run with both enabled at
    /// default cadence from construction.
    ///
    /// # Panics
    ///
    /// Panics if `check_interval` is zero.
    pub fn enable_sentinel(&mut self, check_interval: u64, watchdog_cycles: u64) {
        self.sentinel = Some(Box::new(SentinelState::new(
            check_interval,
            watchdog_cycles,
        )));
    }

    /// Whether invariant checking is active (always true in debug
    /// builds).
    #[must_use]
    pub fn sentinel_enabled(&self) -> bool {
        self.sentinel.is_some()
    }

    /// Sweeps every component's conservation invariants right now and
    /// returns the violations found (empty on a healthy system). Works
    /// whether or not the sentinel is enabled; enabling only adds the
    /// periodic sweep inside [`ApuSystem::run_to_completion`].
    #[must_use]
    pub fn check_invariants_now(&self) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        self.gpu.check_invariants("gpu", &mut out);
        for (i, c) in self.l1s.iter().enumerate() {
            c.check_invariants(&format!("l1[{i}]"), &mut out);
        }
        for (s, c) in self.l2s.iter().enumerate() {
            c.check_invariants(&format!("l2[{s}]"), &mut out);
        }
        self.dram.check_invariants("dram", &mut out);
        self.req_xbar.check_invariants("noc.req", &mut out);
        self.resp_xbar.check_invariants("noc.resp", &mut out);
        let mut queues = |name: &str, qs: &[TimedQueue<MemReq>]| {
            for (i, q) in qs.iter().enumerate() {
                q.check_invariants(&format!("queue.{name}[{i}]"), &mut out);
            }
        };
        queues("l1_in", &self.l1_in);
        queues("l1_down", &self.l1_down);
        queues("l2_in", &self.l2_in);
        queues("l2_down", &self.l2_down);
        let mut resp_queues = |name: &str, qs: &[TimedQueue<MemResp>]| {
            for (i, q) in qs.iter().enumerate() {
                q.check_invariants(&format!("queue.{name}[{i}]"), &mut out);
            }
        };
        resp_queues("dram_resp", &self.dram_resp);
        resp_queues("l2_up", &self.l2_up);
        resp_queues("l1_fill_in", &self.l1_fill_in);
        resp_queues("l1_up", &self.l1_up);
        // System-level: the DRAM response holdover is bounded by
        // construction (`tick_memory` stage 2 stops filling at 4).
        if self.resp_holdover.len() > 4 {
            out.push(InvariantViolation {
                component: "system".to_string(),
                invariant: "holdover_bound",
                detail: format!("{} held-over responses > bound 4", self.resp_holdover.len()),
            });
        }
        out
    }

    /// A fingerprint of every progress-indicating counter: if two
    /// successive fingerprints match, nothing retired, moved through a
    /// queue, or touched DRAM in between.
    fn progress_fingerprint(&self) -> u64 {
        let mut h = miopt_engine::hash::Fnv1a::new();
        let mut mix = |v: u64| h.write_u64(v);
        mix(self.launches.len() as u64);
        mix(match self.phase {
            Phase::Launching { .. } => 0,
            Phase::Running => 1,
            Phase::DrainKernel => 2,
            Phase::Flushing => 3,
            Phase::DrainFlush => 4,
            Phase::Finished => 5,
        });
        for (name, value) in self.gpu.stats().to_pairs() {
            mix(name.len() as u64);
            mix(value);
        }
        for (name, value) in self.dram.stats().to_pairs() {
            mix(name.len() as u64);
            mix(value);
        }
        for c in self.l1s.iter().chain(&self.l2s) {
            for (name, value) in c.stats().to_pairs() {
                mix(name.len() as u64);
                mix(value);
            }
        }
        for q in self.l1_in.iter().chain(&self.l1_down) {
            mix(q.pushed());
        }
        for q in self.l2_in.iter().chain(&self.l2_down) {
            mix(q.pushed());
        }
        for q in self
            .dram_resp
            .iter()
            .chain(&self.l2_up)
            .chain(&self.l1_fill_in)
            .chain(&self.l1_up)
        {
            mix(q.pushed());
        }
        h.finish()
    }

    /// Runs the due sentinel checks after a step; returns why the run
    /// must halt, if it must.
    fn sentinel_poll(&mut self) -> Option<StallReason> {
        let (interval, watchdog, next_check) = {
            let s = self.sentinel.as_deref()?;
            (s.check_interval, s.watchdog_cycles, s.next_check)
        };
        if self.now < next_check {
            return None;
        }
        if !self.check_invariants_now().is_empty() {
            return Some(StallReason::InvariantViolation);
        }
        let fingerprint = self.progress_fingerprint();
        // The launch phase idles by design (host-side overhead), so it is
        // exempt from the watchdog; every other phase moves counters.
        let launching = matches!(self.phase, Phase::Launching { .. });
        let now = self.now;
        let s = self.sentinel.as_deref_mut().expect("sentinel enabled");
        s.next_check = now + interval;
        if fingerprint != s.last_fingerprint || launching {
            s.last_fingerprint = fingerprint;
            s.stable_since = now;
            return None;
        }
        (watchdog > 0 && now.since(s.stable_since) >= watchdog)
            .then_some(StallReason::NoForwardProgress)
    }

    /// Captures the halted system into a [`SimTimeoutError`].
    fn stall_error(&mut self, max_cycles: u64, reason: StallReason) -> SimTimeoutError {
        let mut queues = Vec::new();
        let mut oldest: Option<(Cycle, String)> = None;
        {
            let mut req_queues = |name: &str, qs: &[TimedQueue<MemReq>]| {
                for (i, q) in qs.iter().enumerate() {
                    if q.is_empty() {
                        continue;
                    }
                    queues.push((format!("queue.{name}[{i}]"), q.len()));
                    for (_, req) in q.iter_timed() {
                        if oldest.as_ref().is_none_or(|(c, _)| req.issue_cycle < *c) {
                            oldest = Some((req.issue_cycle, format!("queue.{name}[{i}]: {req:?}")));
                        }
                    }
                }
            };
            req_queues("l1_in", &self.l1_in);
            req_queues("l1_down", &self.l1_down);
            req_queues("l2_in", &self.l2_in);
            req_queues("l2_down", &self.l2_down);
        }
        let mut resp_queues = |name: &str, qs: &[TimedQueue<MemResp>]| {
            for (i, q) in qs.iter().enumerate() {
                if !q.is_empty() {
                    queues.push((format!("queue.{name}[{i}]"), q.len()));
                }
            }
        };
        resp_queues("dram_resp", &self.dram_resp);
        resp_queues("l2_up", &self.l2_up);
        resp_queues("l1_fill_in", &self.l1_fill_in);
        resp_queues("l1_up", &self.l1_up);
        let mut mshrs = Vec::new();
        for (i, c) in self.l1s.iter().enumerate() {
            let snap = c.mshr_snapshot();
            if !snap.is_empty() {
                mshrs.push((format!("l1[{i}]"), snap));
            }
        }
        for (s, c) in self.l2s.iter().enumerate() {
            let snap = c.mshr_snapshot();
            if !snap.is_empty() {
                mshrs.push((format!("l2[{s}]"), snap));
            }
        }
        let wavefronts = self
            .gpu
            .wavefront_summary()
            .into_iter()
            .map(|(cu, active, loads, pending)| {
                format!(
                    "cu[{cu}]: {active} resident, {loads} loads outstanding, \
                     {pending} accesses unissued"
                )
            })
            .collect();
        let diagnostic = Box::new(StallDiagnostic {
            cycle: self.now.0,
            phase: Self::phase_label(self.phase),
            reason,
            oldest_request: oldest.map(|(_, s)| s),
            queues,
            mshrs,
            wavefronts,
            violations: self.check_invariants_now(),
        });
        if let Some(rec) = self.telemetry.as_deref_mut() {
            rec.instant(format!("sentinel:{reason}"), self.now.0);
        }
        SimTimeoutError {
            max_cycles,
            diagnostic,
        }
    }

    /// Fault-injection hook (sentinel validation only): leaks a phantom
    /// MSHR entry in CU `cu`'s L1. With `allocating == true` the entry is
    /// structurally malformed and trips the `mshr_reservation` invariant
    /// at the next sweep; with `false` it is structurally plausible but
    /// never completes, wedging the drain for the watchdog to catch.
    pub fn inject_l1_mshr_leak(&mut self, cu: usize, line: LineAddr, allocating: bool) {
        self.l1s[cu].inject_mshr_leak(line, allocating);
    }

    /// Fault-injection hook (sentinel validation only): drops one
    /// flow-control credit from CU `cu`'s L1 input queue, tripping the
    /// `credit_conservation` invariant at the next sweep.
    pub fn inject_queue_credit_loss(&mut self, cu: usize) {
        self.l1_in[cu].inject_credit_loss();
    }

    /// The current simulated cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether every launch has completed (including its release flush).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Finished
    }

    /// Queues a kernel launch. `seq` tags the launch in telemetry
    /// (`kernel:{name}#{seq}` instants); serving scenarios use a global
    /// request sequence number.
    ///
    /// On an idle (finished) system the launch phase begins immediately:
    /// the kernel starts executing `launch_overhead` cycles from `now`
    /// once the system is driven again (via
    /// [`ApuSystem::run_to_completion`] or [`ApuSystem::step`]).
    pub fn enqueue_kernel(&mut self, desc: Arc<KernelDesc>, seq: u32) {
        self.launches.push_back((desc, seq));
        if self.phase == Phase::Finished {
            self.phase = Phase::Launching {
                until: self.now + self.cfg.launch_overhead,
            };
            if let Some(rec) = self.telemetry.as_deref_mut() {
                rec.enter_phase(Self::phase_label(self.phase), self.now.0);
            }
        }
    }

    /// Number of queued launches not yet started.
    #[must_use]
    pub fn pending_launches(&self) -> usize {
        self.launches.len()
    }

    /// Advances an idle (finished) system's clock to `target` without
    /// running anything — the gap between request arrivals in a serving
    /// scenario.
    ///
    /// With time skipping enabled the stretch is warped over (in chunks
    /// that land one cycle short of each telemetry sample, so samples
    /// fire at exactly the per-cycle simulator's cycles); with
    /// `--no-skip` it is stepped cycle by cycle. Both modes leave the
    /// system bit-identical, including crossbar round-robin cursors.
    /// A `target` at or before `now` is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the system is not idle ([`ApuSystem::is_done`]).
    pub fn idle_until(&mut self, target: Cycle) {
        assert!(self.is_done(), "idle_until on a busy system");
        while self.now < target {
            if !self.skip {
                self.step();
                continue;
            }
            let mut to = target.0;
            if let Some(rec) = self.telemetry.as_deref() {
                to = to.min(rec.next_due(self.now.0) - 1);
            }
            if to > self.now.0 {
                let skipped = to - self.now.0;
                self.req_xbar.advance_idle_cycles(skipped);
                self.resp_xbar.advance_idle_cycles(skipped);
                self.now = Cycle(to);
                self.warps += 1;
                self.warped_cycles += skipped;
            } else {
                // One cycle short of a telemetry sample: step to fire it.
                self.step();
            }
        }
    }

    /// Switches every L1 to `l1` and every L2 slice to `l2` — the
    /// per-tenant policy (and QoS way-partition) switch at a kernel
    /// boundary in multi-tenant serving.
    ///
    /// Legal only on an idle system: at that point every cache has been
    /// drained, flushed, and flash self-invalidated, so the switch
    /// cannot strand dirty or busy lines. Lines installed under an
    /// earlier partition would still be found by probes (allocation is
    /// restricted, lookup is not), but after self-invalidation there are
    /// none.
    ///
    /// # Panics
    ///
    /// Panics if the system is not idle ([`ApuSystem::is_done`]), or if
    /// a policy is invalid for the cache geometry (see
    /// [`CacheUnit::set_policy`]).
    pub fn set_level_policies(&mut self, l1: LevelPolicy, l2: LevelPolicy) {
        assert!(
            self.is_done(),
            "cache policies can only change at an idle kernel boundary"
        );
        for c in &mut self.l1s {
            c.set_policy(l1.clone());
        }
        for c in &mut self.l2s {
            c.set_policy(l2.clone());
        }
    }

    /// [`ApuSystem::set_level_policies`] from a [`PolicyConfig`], with an
    /// optional L2 way partition (the serving scheduler's per-tenant
    /// switch).
    ///
    /// # Panics
    ///
    /// As [`ApuSystem::set_level_policies`].
    pub fn set_policy_config(&mut self, policy: &PolicyConfig, l2_partition: Option<WayRange>) {
        let mut l2 = policy.l2_policy(self.cfg.row_map());
        l2.partition = l2_partition;
        self.set_level_policies(policy.l1_policy(), l2);
    }

    /// Cumulative crossbar transfer counts `(request, response)`, for
    /// per-tenant NoC bandwidth attribution in serving scenarios (delta
    /// across a kernel = that kernel's NoC traffic).
    #[must_use]
    pub fn noc_transfers(&self) -> (u64, u64) {
        (
            self.req_xbar.stats().moved.get(),
            self.resp_xbar.stats().moved.get(),
        )
    }

    /// Runs until done.
    ///
    /// # Errors
    ///
    /// Returns [`SimTimeoutError`] if the system has not finished within
    /// `max_cycles`, or — with the sentinel enabled — as soon as an
    /// invariant check fails or the watchdog detects a wedge. The error
    /// carries a [`StallDiagnostic`] either way.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> Result<Metrics, SimTimeoutError> {
        if self.skip {
            self.run_events(max_cycles)?;
        } else {
            self.run_per_cycle(max_cycles)?;
        }
        // Final sweep at completion: quiescence invariants (every issued
        // request retired, MSHRs empty, queues drained) must hold.
        if self.sentinel.is_some() && !self.check_invariants_now().is_empty() {
            return Err(self.stall_error(max_cycles, StallReason::InvariantViolation));
        }
        Ok(self.metrics())
    }

    /// The `--no-skip` oracle: steps every cycle, polling the sentinel
    /// after each step. The event core must be bit-identical to this
    /// loop; it exists for that equivalence pin and for debugging.
    fn run_per_cycle(&mut self, max_cycles: u64) -> Result<(), SimTimeoutError> {
        while !self.is_done() {
            if self.now.0 >= max_cycles {
                return Err(self.stall_error(max_cycles, StallReason::CycleBudget));
            }
            self.step();
            if let Some(reason) = self.sentinel_poll() {
                return Err(self.stall_error(max_cycles, reason));
            }
        }
        Ok(())
    }

    /// The discrete-event run loop: pop the earliest scheduled cycle off
    /// the wheel, dispatch its due actors in priority order, let each
    /// handler reschedule its own wakeups. Cycles with no events cost
    /// nothing — there is no per-cycle probing at all.
    fn run_events(&mut self, max_cycles: u64) -> Result<(), SimTimeoutError> {
        if !self.is_done() && self.now.0 >= max_cycles {
            return Err(self.stall_error(max_cycles, StallReason::CycleBudget));
        }
        self.seed_schedule();
        while !self.is_done() {
            let next = self.ev.wheel.pop_next();
            let (t, ids) = match next {
                // Quiescent with no periodic work pending: only the
                // budget can end the run (as in per-cycle no-op laps).
                None => return Err(self.budget_stall(max_cycles)),
                Some((t, _)) if t.0 >= max_cycles => return Err(self.budget_stall(max_cycles)),
                Some(pair) => pair,
            };
            let gap = t.since(self.now);
            if gap > 0 {
                self.warps += 1;
                self.warped_cycles += gap;
            }
            self.now = t;
            self.ev.now = t;
            self.ev.due = ids;
            loop {
                let due = self.ev.due;
                if due == 0 {
                    break;
                }
                let a = due.trailing_zeros() as usize;
                self.ev.due &= !(1u64 << a);
                if self.ev.scheduled[a] != t {
                    continue; // stale wheel entry, superseded by an earlier wake
                }
                self.ev.scheduled[a] = NEVER;
                self.ev.current = a;
                self.ev.events += 1;
                self.ev.events_by_actor[a] += 1;
                let halted = if self.profile.is_some() {
                    let clock = std::time::Instant::now();
                    let allocs_before = miopt_engine::alloc_track::count();
                    let r = self.dispatch(a, t);
                    let p = self.profile.as_deref_mut().expect("checked above");
                    p.events[a] += 1;
                    p.nanos[a] += u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    p.allocs[a] += miopt_engine::alloc_track::count().saturating_sub(allocs_before);
                    r
                } else {
                    self.dispatch(a, t)
                };
                if let Some(reason) = halted {
                    // Halt with `now` at the check cycle, exactly where
                    // the per-cycle loop's post-step poll would stop.
                    self.sync_xbars_through(t);
                    return Err(self.stall_error(max_cycles, reason));
                }
            }
            self.ev.current = N_ACTORS;
            self.ev.active_cycles += 1;
            self.now = t + 1;
        }
        self.sync_xbars_through(self.now);
        Ok(())
    }

    /// Runs out the clock to the budget boundary and builds the halt
    /// error, replicating the per-cycle loop's boundary order: the
    /// telemetry sample due at `max_cycles` fires, then a sentinel check
    /// due there runs (its halt reason wins over the budget), then the
    /// budget error is built with the diagnostic at `max_cycles`.
    fn budget_stall(&mut self, max_cycles: u64) -> SimTimeoutError {
        let m = Cycle(max_cycles);
        let gap = m.since(self.now);
        if gap > 0 {
            self.warps += 1;
            self.warped_cycles += gap;
        }
        self.now = m;
        if self.ev.scheduled[A_TELEMETRY] == m {
            self.ev.scheduled[A_TELEMETRY] = NEVER;
            self.record_sample();
        }
        let mut reason = StallReason::CycleBudget;
        if self.ev.scheduled[A_SENTINEL] == m {
            self.ev.scheduled[A_SENTINEL] = NEVER;
            if let Some(r) = self.sentinel_poll() {
                reason = r;
            }
        }
        self.sync_xbars_through(m);
        self.stall_error(max_cycles, reason)
    }

    /// Accounts the crossbars' idle rotations through every cycle before
    /// `end` (exclusive), so their round-robin cursors match a per-cycle
    /// run that really ticked them every cycle.
    fn sync_xbars_through(&mut self, end: Cycle) {
        let gap = end.since(self.req_synced);
        if gap > 0 {
            self.req_xbar.advance_idle_cycles(gap);
        }
        self.req_synced = end;
        let gap = end.since(self.resp_synced);
        if gap > 0 {
            self.resp_xbar.advance_idle_cycles(gap);
        }
        self.resp_synced = end;
    }

    /// Seeds the wheel from the system's current state at run entry:
    /// every queue's head-ready time, every component's `next_event`,
    /// the phase machine, and the periodic telemetry/sentinel cadence.
    fn seed_schedule(&mut self) {
        let t0 = self.now;
        self.ev.reset(t0);
        self.req_synced = t0;
        self.resp_synced = t0;
        if let Some(rec) = self.telemetry.as_deref() {
            let at = Cycle(rec.next_due(t0.0));
            self.ev.seed(A_TELEMETRY, at);
        }
        if let Some(s) = self.sentinel.as_deref() {
            // The per-cycle loop polls only after a step, so the first
            // check of a run is never earlier than `t0 + 1`.
            let at = s.next_check.max(t0 + 1);
            self.ev.seed(A_SENTINEL, at);
        }
        if let Some(at) = self.dram.next_event(t0) {
            self.ev.seed(A_DRAM, at);
        }
        if !self.resp_holdover.is_empty() {
            self.ev.seed(A_DRAM, t0);
        }
        for s in 0..self.dram_resp.len() {
            if let Some(at) = self.dram_resp[s].next_ready() {
                self.ev.seed_unit(A_L2_FILL, at, s);
            }
        }
        for s in 0..self.l2_in.len() {
            if let Some(at) = self.l2_in[s].next_ready() {
                self.ev.seed_unit(A_L2_SERVICE, at, s);
            }
        }
        for s in 0..self.l2s.len() {
            if let Some(at) = self.l2s[s].next_event(t0) {
                self.ev.seed_unit(A_L2_SERVICE, at, s);
            }
        }
        for s in 0..self.l2_down.len() {
            if let Some(at) = self.l2_down[s].next_ready() {
                self.ev.seed_unit(A_L2_TO_DRAM, at, s);
            }
        }
        for s in 0..self.l2_up.len() {
            if let Some(at) = self.l2_up[s].next_ready() {
                self.ev.seed(A_RESP_XBAR, at);
            }
        }
        for i in 0..self.l1_fill_in.len() {
            if let Some(at) = self.l1_fill_in[i].next_ready() {
                self.ev.seed_unit(A_L1_FILL, at, i);
            }
        }
        for i in 0..self.l1_in.len() {
            if let Some(at) = self.l1_in[i].next_ready() {
                self.ev.seed_unit(A_L1_SERVICE, at, i);
            }
        }
        for i in 0..self.l1s.len() {
            if let Some(at) = self.l1s[i].next_event(t0) {
                self.ev.seed_unit(A_L1_SERVICE, at, i);
            }
        }
        for i in 0..self.l1_down.len() {
            if let Some(at) = self.l1_down[i].next_ready() {
                self.ev.seed(A_REQ_XBAR, at);
            }
        }
        for i in 0..self.l1_up.len() {
            if let Some(at) = self.l1_up[i].next_ready() {
                self.ev.seed_unit(A_GPU_RESP, at, i);
            }
        }
        match self.phase {
            Phase::Launching { until } => self.ev.seed(A_PHASE, until),
            Phase::Running => {
                if let Some(at) = self.gpu.next_event(t0) {
                    self.ev.seed(A_PHASE, at);
                }
            }
            // A flush retries blocked writebacks every cycle.
            Phase::Flushing => self.ev.seed(A_PHASE, t0),
            // An already-empty drain transitions immediately; a busy one
            // is woken by the piggyback in `dispatch`.
            Phase::DrainKernel | Phase::DrainFlush => {
                if !self.hierarchy_busy() {
                    self.ev.seed(A_PHASE, t0);
                }
            }
            Phase::Finished => {}
        }
    }

    /// Dispatches one actor at cycle `now`. Returns a halt reason only
    /// from the sentinel actor.
    fn dispatch(&mut self, actor: usize, now: Cycle) -> Option<StallReason> {
        if actor == A_SENTINEL {
            return self.ev_sentinel();
        }
        match actor {
            A_TELEMETRY => self.ev_telemetry(now),
            A_DRAM => self.ev_dram(now),
            A_L2_FILL => self.ev_l2_fill(now),
            A_L2_SERVICE => self.ev_l2_service(now),
            A_L2_TO_DRAM => self.ev_l2_to_dram(now),
            A_RESP_XBAR => self.ev_resp_xbar(now),
            A_L1_FILL => self.ev_l1_fill(now),
            A_L1_SERVICE => self.ev_l1_service(now),
            A_REQ_XBAR => self.ev_req_xbar(now),
            A_GPU_RESP => self.ev_gpu_resp(now),
            _ => self.ev_phase(now),
        }
        // A replicated-unit actor's lazy actor-level entry tracks only
        // its earliest pending unit; re-arm it at the next one now that
        // this dispatch consumed the minimum.
        if UNIT_WHEEL[actor] != NO_WHEEL {
            self.ev.rearm_units(actor);
        }
        // A drain ends on the cycle the hierarchy empties, which is
        // always a cycle some memory actor dispatched on — piggyback the
        // phase machine's busyness check onto every such cycle rather
        // than polling it.
        if (A_DRAM..=A_GPU_RESP).contains(&actor)
            && matches!(self.phase, Phase::DrainKernel | Phase::DrainFlush)
        {
            self.ev.wake(A_PHASE, now);
        }
        None
    }

    /// Actor 0: one telemetry sample, then reschedule at the next due
    /// epoch boundary.
    fn ev_telemetry(&mut self, now: Cycle) {
        self.record_sample();
        let at = self
            .telemetry
            .as_deref()
            .expect("telemetry enabled")
            .next_due(now.0);
        self.ev.wake(A_TELEMETRY, Cycle(at));
    }

    /// Actor 1: one sentinel check, rescheduling at its own next cadence
    /// unless it halts the run.
    fn ev_sentinel(&mut self) -> Option<StallReason> {
        let reason = self.sentinel_poll();
        if reason.is_none() {
            let at = self
                .sentinel
                .as_deref()
                .expect("sentinel enabled")
                .next_check;
            self.ev.wake(A_SENTINEL, at);
        }
        reason
    }

    /// Actor 2 (stages 1-2): DRAM scheduling and the response drain.
    ///
    /// DRAM reschedules on the *activity heuristic*: while it acted it
    /// wakes itself at `now + 1` — a conservative-early guess that costs
    /// at most one no-op dispatch — and only on going idle pays the
    /// exact per-bank `next_event` walk. Busy stretches thus cost one
    /// O(1) reschedule per dispatch instead of a 256-bank scan. The L2
    /// fill wakes are per-slice: only slices that received a response
    /// this dispatch are scheduled.
    fn ev_dram(&mut self, now: Cycle) {
        let (acted, pushed) = self.stage_dram(now);
        if acted {
            let mut m = pushed;
            while m != 0 {
                let s = m.trailing_zeros() as usize;
                m &= m - 1;
                if let Some(at) = self.dram_resp[s].next_ready() {
                    self.ev.wake_unit(A_L2_FILL, at, s);
                }
            }
            self.ev.wake(A_DRAM, now + 1);
            return;
        }
        if !self.resp_holdover.is_empty() {
            self.ev.wake(A_DRAM, now + 1);
        }
        if let Some(at) = self.dram.next_event(now + 1) {
            self.ev.wake(A_DRAM, at);
        }
    }

    /// Actor 3 (stage 3): L2 fills from DRAM responses. Walks only the
    /// slices due this cycle and reschedules each exactly from its own
    /// response queue (O(1) per slice).
    fn ev_l2_fill(&mut self, now: Cycle) {
        let mut m = self.ev.due_units(A_L2_FILL);
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.fill_l2_unit(now, s) {
                // A fill can free cache resources that the service stage
                // — still to run this cycle, as in the per-cycle order —
                // may use, and can produce an upward response.
                self.ev.wake_unit(A_L2_SERVICE, now, s);
                if let Some(at) = self.l2_up[s].next_ready() {
                    self.ev.wake(A_RESP_XBAR, at);
                }
            }
            if let Some(at) = self.dram_resp[s].next_ready() {
                self.ev.wake_unit(A_L2_FILL, at, s);
            }
        }
    }

    /// Actor 4 (stage 4): L2 access servicing, per due slice.
    fn ev_l2_service(&mut self, now: Cycle) {
        let mut m = self.ev.due_units(A_L2_SERVICE);
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            m &= m - 1;
            let acted = self.l2s[s].service(
                now,
                &mut self.l2_in[s],
                &mut self.l2_down[s],
                &mut self.l2_up[s],
            );
            if acted {
                self.resp_pending |= 1 << s;
                // Downstream wakes are needed only when something moved;
                // earlier pushes already scheduled their consumers.
                if let Some(at) = self.l2_down[s].next_ready() {
                    self.ev.wake_unit(A_L2_TO_DRAM, at, s);
                }
                if let Some(at) = self.l2_up[s].next_ready() {
                    self.ev.wake(A_RESP_XBAR, at);
                }
            }
            if let Some(at) = self.l2_in[s].next_ready() {
                self.ev.wake_unit(A_L2_SERVICE, at, s);
            }
            if let Some(at) = self.l2s[s].next_event(now + 1) {
                self.ev.wake_unit(A_L2_SERVICE, at, s);
            }
        }
    }

    /// Actor 5 (stage 5): L2 writeback/miss traffic into DRAM, per due
    /// slice.
    fn ev_l2_to_dram(&mut self, now: Cycle) {
        let mut m = self.ev.due_units(A_L2_TO_DRAM);
        let mut any = false;
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            m &= m - 1;
            any |= self.l2_to_dram_unit(now, s);
            if let Some(at) = self.l2_down[s].next_ready() {
                self.ev.wake_unit(A_L2_TO_DRAM, at, s);
            }
        }
        if any {
            // A request entered DRAM: waking it at `now + 1` is
            // conservative-early and far cheaper than the exact
            // per-channel `next_event` walk (the idle transition pays
            // that walk once, in `ev_dram`).
            self.ev.wake(A_DRAM, now + 1);
        }
    }

    /// Actor 6 (stage 6): response crossbar, with idle-rotation catch-up.
    /// Wakes only the L1 fill units whose queues received a response.
    fn ev_resp_xbar(&mut self, now: Cycle) {
        let gap = now.since(self.resp_synced);
        if gap > 0 {
            self.resp_xbar.advance_idle_cycles(gap);
        }
        let (moved, dsts) = self.stage_resp_xbar_tracked(now);
        self.resp_synced = now + 1;
        if moved > 0 {
            let mut m = dsts;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                if let Some(at) = self.l1_fill_in[i].next_ready() {
                    self.ev.wake_unit(A_L1_FILL, at, i);
                }
            }
            // A spurious self-dispatch with no ready head is exactly an
            // idle rotation (`tick` then touches no statistic), so the
            // conservative `now + 1` wake stays bit-identical.
            self.ev.wake(A_RESP_XBAR, now + 1);
            return;
        }
        // After a masked tick the pending bits are exactly the nonempty
        // inputs, so only those can have a future-ready head.
        let mut m = self.resp_pending;
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            m &= m - 1;
            if let Some(at) = self.l2_up[s].next_ready() {
                self.ev.wake(A_RESP_XBAR, at);
            }
        }
    }

    /// Actor 7 (stage 7): L1 fills from the response crossbar, per due
    /// CU.
    fn ev_l1_fill(&mut self, now: Cycle) {
        let mut m = self.ev.due_units(A_L1_FILL);
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.fill_l1_unit(now, i) {
                self.ev.wake_unit(A_L1_SERVICE, now, i);
                if let Some(at) = self.l1_up[i].next_ready() {
                    self.ev.wake_unit(A_GPU_RESP, at, i);
                }
            }
            if let Some(at) = self.l1_fill_in[i].next_ready() {
                self.ev.wake_unit(A_L1_FILL, at, i);
            }
        }
    }

    /// Actor 8 (stage 8): L1 access servicing, per due CU.
    fn ev_l1_service(&mut self, now: Cycle) {
        let mut m = self.ev.due_units(A_L1_SERVICE);
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            let acted = self.l1s[i].service(
                now,
                &mut self.l1_in[i],
                &mut self.l1_down[i],
                &mut self.l1_up[i],
            );
            if acted {
                self.req_pending |= 1 << i;
                if let Some(at) = self.l1_down[i].next_ready() {
                    self.ev.wake(A_REQ_XBAR, at);
                }
                if let Some(at) = self.l1_up[i].next_ready() {
                    self.ev.wake_unit(A_GPU_RESP, at, i);
                }
            }
            if let Some(at) = self.l1_in[i].next_ready() {
                self.ev.wake_unit(A_L1_SERVICE, at, i);
            }
            if let Some(at) = self.l1s[i].next_event(now + 1) {
                self.ev.wake_unit(A_L1_SERVICE, at, i);
            }
        }
    }

    /// Actor 9 (stage 9): request crossbar, with idle-rotation catch-up.
    /// Wakes only the L2 service slices whose input queues received a
    /// request.
    fn ev_req_xbar(&mut self, now: Cycle) {
        let gap = now.since(self.req_synced);
        if gap > 0 {
            self.req_xbar.advance_idle_cycles(gap);
        }
        let (moved, dsts) = self.stage_req_xbar_tracked(now);
        self.req_synced = now + 1;
        if moved > 0 {
            let mut m = dsts;
            while m != 0 {
                let s = m.trailing_zeros() as usize;
                m &= m - 1;
                if let Some(at) = self.l2_in[s].next_ready() {
                    self.ev.wake_unit(A_L2_SERVICE, at, s);
                }
            }
            self.ev.wake(A_REQ_XBAR, now + 1);
            return;
        }
        // As in `ev_resp_xbar`: the pending mask bounds the rescan to the
        // nonempty inputs.
        let mut m = self.req_pending;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if let Some(at) = self.l1_down[i].next_ready() {
                self.ev.wake(A_REQ_XBAR, at);
            }
        }
    }

    /// Actor 10 (stage 10): response delivery to the GPU, per due CU.
    fn ev_gpu_resp(&mut self, now: Cycle) {
        let mut m = self.ev.due_units(A_GPU_RESP);
        let mut any = false;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            any |= self.gpu_resp_unit(now, i);
            if let Some(at) = self.l1_up[i].next_ready() {
                self.ev.wake_unit(A_GPU_RESP, at, i);
            }
        }
        if any {
            // The phase machine runs after this stage within the cycle;
            // a delivered response can unblock a wavefront immediately.
            self.ev.wake(A_PHASE, now);
        }
    }

    /// Actor 11: the phase machine, and the only actor that reschedules
    /// across phase transitions.
    fn ev_phase(&mut self, now: Cycle) {
        let before = self.phase;
        let (acted, issued) = self.advance_phase(now);
        let after = self.phase;
        if before != after && after != Phase::Finished {
            // The final phase's span stays open; `take_telemetry` closes
            // it at the run's last cycle so spans tile `[0, cycles]`.
            if let Some(rec) = self.telemetry.as_deref_mut() {
                rec.enter_phase(Self::phase_label(after), now.0);
            }
        }
        match before {
            // The GPU may have issued loads into the L1 input queues
            // (including on the tick that finished the kernel); only the
            // CUs that acted can have pushed.
            Phase::Running if acted => {
                let mut m = issued;
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if let Some(at) = self.l1_in[i].next_ready() {
                        self.ev.wake_unit(A_L1_SERVICE, at, i);
                    }
                }
            }
            // A flush tick pushes writebacks toward DRAM.
            Phase::Flushing => {
                for s in 0..self.l2_down.len() {
                    if let Some(at) = self.l2_down[s].next_ready() {
                        self.ev.wake_unit(A_L2_TO_DRAM, at, s);
                    }
                }
            }
            _ => {}
        }
        if before != after {
            if after != Phase::Finished {
                self.ev.wake(A_PHASE, now + 1);
            }
            return;
        }
        match after {
            Phase::Launching { until } => self.ev.wake(A_PHASE, until.max(now + 1)),
            Phase::Running => {
                if acted {
                    self.ev.wake(A_PHASE, now + 1);
                } else if let Some(at) = self.gpu.next_event(now + 1) {
                    self.ev.wake(A_PHASE, at);
                }
                // Neither branch scheduling anything means every
                // wavefront is blocked on memory; actor 10 wakes the
                // phase machine when a response arrives.
            }
            Phase::Flushing => self.ev.wake(A_PHASE, now + 1),
            // Busy drains wait for the dispatch piggyback; Finished ends
            // the run.
            Phase::DrainKernel | Phase::DrainFlush | Phase::Finished => {}
        }
    }

    /// A snapshot of all statistics at the current cycle.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut l1 = CacheStats::default();
        for c in &self.l1s {
            l1.merge(c.stats());
        }
        let mut l2 = CacheStats::default();
        for c in &self.l2s {
            l2.merge(c.stats());
        }
        Metrics::new(
            &self.cfg,
            self.now.0,
            self.gpu.stats(),
            self.dram.stats().clone(),
            l1,
            l2,
        )
    }

    /// Advances the system one cycle: the full memory hierarchy tick,
    /// the phase machine, and any telemetry sample falling due — the
    /// per-cycle reference semantics the event core reproduces.
    pub fn step(&mut self) {
        let now = self.now;
        self.tick_memory(now);
        let before = self.phase;
        self.advance_phase(now);
        let after = self.phase;
        if before != after && after != Phase::Finished {
            // The final phase's span stays open; `take_telemetry` closes
            // it at the run's last cycle so spans tile `[0, cycles]`.
            if let Some(rec) = self.telemetry.as_deref_mut() {
                rec.enter_phase(Self::phase_label(after), now.0);
            }
        }
        self.now += 1;
        if self
            .telemetry
            .as_deref()
            .is_some_and(|rec| rec.due(self.now.0))
        {
            self.record_sample();
        }
    }

    /// Records one telemetry sample at the current cycle (the due check
    /// is the caller's; telemetry must be enabled).
    fn record_sample(&mut self) {
        if self
            .telemetry
            .as_deref()
            .expect("telemetry enabled")
            .registry_fixed()
        {
            // Steady state: values only, into the reused scratch
            // buffer — no allocation per sample.
            let mut values = std::mem::take(&mut self.frame_values);
            values.clear();
            self.sample_into(&mut SampleSink::Values(&mut values));
            self.telemetry
                .as_deref_mut()
                .expect("telemetry enabled")
                .record_values(self.now.0, &values);
            self.frame_values = values;
        } else {
            let frame = self.sample_frame();
            self.telemetry
                .as_mut()
                .expect("telemetry enabled")
                .record_frame(self.now.0, frame);
        }
    }

    /// Whether any request or response is anywhere in the hierarchy.
    fn hierarchy_busy(&self) -> bool {
        self.l1_in.iter().any(|q| !q.is_empty())
            || self.l1_down.iter().any(|q| !q.is_empty())
            || self.l2_in.iter().any(|q| !q.is_empty())
            || self.l2_down.iter().any(|q| !q.is_empty())
            || self.dram_resp.iter().any(|q| !q.is_empty())
            || !self.resp_holdover.is_empty()
            || self.l2_up.iter().any(|q| !q.is_empty())
            || self.l1_fill_in.iter().any(|q| !q.is_empty())
            || self.l1_up.iter().any(|q| !q.is_empty())
            || self.l1s.iter().any(CacheUnit::busy)
            || self.l2s.iter().any(CacheUnit::busy)
            || self.dram.busy()
    }

    /// Returns whether the phase machine did anything this cycle: ticked
    /// the GPU to some effect, made a transition, or worked on a flush.
    /// Returns `(acted, issued)`: whether the phase machine did anything
    /// this cycle, and — in [`Phase::Running`] — the mask of CUs that
    /// acted (the only ones that can have pushed new L1 requests, which
    /// is what the event core wakes on).
    fn advance_phase(&mut self, now: Cycle) -> (bool, u64) {
        match self.phase {
            Phase::Launching { until } => {
                if now >= until {
                    match self.launches.pop_front() {
                        Some((desc, seq)) => {
                            if let Some(rec) = self.telemetry.as_deref_mut() {
                                rec.instant(format!("kernel:{}#{seq}", desc.name), now.0);
                            }
                            self.gpu.start_kernel(desc, seq);
                            self.phase = Phase::Running;
                        }
                        None => self.phase = Phase::Finished,
                    }
                    (true, 0)
                } else {
                    (false, 0)
                }
            }
            Phase::Running => {
                let (acted, issued) = self.gpu.tick_tracked(now, &mut self.l1_in);
                if self.gpu.kernel_done() {
                    self.phase = Phase::DrainKernel;
                    return (true, issued);
                }
                (acted, issued)
            }
            Phase::DrainKernel => {
                if !self.hierarchy_busy() {
                    let dirty = self.l2s.iter().any(|c| !c.policy().cache_stores);
                    let _ = dirty;
                    for c in &mut self.l2s {
                        c.start_flush();
                    }
                    self.phase = Phase::Flushing;
                    (true, 0)
                } else {
                    (false, 0)
                }
            }
            Phase::Flushing => {
                let mut done = true;
                for (c, down) in self.l2s.iter_mut().zip(self.l2_down.iter_mut()) {
                    c.flush_tick(now, down);
                    done &= c.flush_done();
                }
                if done {
                    self.phase = Phase::DrainFlush;
                }
                // A flush in progress retries blocked writebacks every
                // cycle; `next_event` pins this phase to `now` anyway.
                (true, 0)
            }
            Phase::DrainFlush => {
                if !self.hierarchy_busy() {
                    // Acquire for the next kernel: flash self-invalidation
                    // of all valid GPU cache data.
                    for c in &mut self.l1s {
                        c.self_invalidate();
                    }
                    for c in &mut self.l2s {
                        c.self_invalidate();
                    }
                    if let Some(rec) = self.telemetry.as_deref_mut() {
                        rec.instant("self_invalidate", now.0);
                    }
                    self.phase = if self.launches.is_empty() {
                        Phase::Finished
                    } else {
                        Phase::Launching {
                            until: now + self.cfg.launch_overhead,
                        }
                    };
                    (true, 0)
                } else {
                    (false, 0)
                }
            }
            Phase::Finished => (false, 0),
        }
    }

    /// One cycle of the memory hierarchy, ticked from DRAM upward — the
    /// per-cycle reference order. The event core dispatches the same
    /// stage helpers individually, in the same order within a cycle.
    fn tick_memory(&mut self, now: Cycle) {
        self.stage_dram(now);
        self.stage_l2_fills(now);
        self.stage_l2_service(now);
        self.stage_l2_to_dram(now);
        self.stage_resp_xbar(now);
        self.stage_l1_fills(now);
        self.stage_l1_service(now);
        self.stage_req_xbar(now);
        self.stage_gpu_resp(now);
    }

    /// Stages 1-2: DRAM scheduling, then responses toward their L2 slice
    /// (holdover first). Returns whether anything happened and the mask
    /// of slices that received a response this cycle.
    fn stage_dram(&mut self, now: Cycle) -> (bool, u64) {
        let mut acted = self.dram.tick(now);
        let mut pushed = 0u64;
        while let Some(resp) = self.resp_holdover.pop_front() {
            let slice = self.cfg.l2_slice_of(resp.line);
            if self.dram_resp[slice].can_push() {
                self.dram_resp[slice]
                    .push(now, resp)
                    .unwrap_or_else(|_| unreachable!("checked can_push"));
                acted = true;
                pushed |= 1 << slice;
            } else {
                self.resp_holdover.push_front(resp);
                break;
            }
        }
        let mut cursor = 0;
        while self.resp_holdover.len() < 4 {
            match self.dram.pop_response_from(now, &mut cursor) {
                Some(resp) => {
                    acted = true;
                    let slice = self.cfg.l2_slice_of(resp.line);
                    if self.dram_resp[slice].can_push() {
                        self.dram_resp[slice]
                            .push(now, resp)
                            .unwrap_or_else(|_| unreachable!("checked can_push"));
                        pushed |= 1 << slice;
                    } else {
                        self.resp_holdover.push_back(resp);
                    }
                }
                None => break,
            }
        }
        (acted, pushed)
    }

    /// Stage 3 for one L2 slice: up to two fills from its DRAM response
    /// queue.
    fn fill_l2_unit(&mut self, now: Cycle, s: usize) -> bool {
        let mut acted = false;
        for _ in 0..2 {
            let Some(&resp) = self.dram_resp[s].ready_front(now) else {
                break;
            };
            match self.l2s[s].fill(now, resp, &mut self.l2_up[s]) {
                Ok(()) => {
                    self.dram_resp[s].pop_ready(now);
                    acted = true;
                }
                Err(_) => break, // response queue full; retry next cycle
            }
        }
        if acted {
            self.resp_pending |= 1 << s;
        }
        acted
    }

    /// Stage 3: L2 fills from DRAM responses.
    fn stage_l2_fills(&mut self, now: Cycle) -> bool {
        let mut acted = false;
        for s in 0..self.l2s.len() {
            acted |= self.fill_l2_unit(now, s);
        }
        acted
    }

    /// Stage 4: L2 accesses (with miss-replay, up to the slice's port
    /// width).
    fn stage_l2_service(&mut self, now: Cycle) -> bool {
        let mut acted = false;
        for s in 0..self.l2s.len() {
            let (slice, l2_in, l2_down, l2_up) = (
                &mut self.l2s[s],
                &mut self.l2_in[s],
                &mut self.l2_down[s],
                &mut self.l2_up[s],
            );
            if slice.service(now, l2_in, l2_down, l2_up) {
                self.resp_pending |= 1 << s;
                acted = true;
            }
        }
        acted
    }

    /// Stage 5: L2 writeback/miss traffic into DRAM.
    fn stage_l2_to_dram(&mut self, now: Cycle) -> bool {
        let mut acted = false;
        for s in 0..self.l2_down.len() {
            acted |= self.l2_to_dram_unit(now, s);
        }
        acted
    }

    /// Stage 5 for one L2 slice: drain its writeback queue into DRAM
    /// while DRAM accepts.
    fn l2_to_dram_unit(&mut self, now: Cycle, s: usize) -> bool {
        let mut acted = false;
        let q = &mut self.l2_down[s];
        while let Some(req) = q.ready_front(now) {
            if self.dram.can_accept(req) {
                let req = q.pop_ready(now).expect("head ready");
                self.dram
                    .push(now, req)
                    .unwrap_or_else(|_| unreachable!("checked can_accept"));
                acted = true;
            } else {
                break;
            }
        }
        acted
    }

    /// Stage 6: response crossbar (L2 -> L1s).
    fn stage_resp_xbar(&mut self, now: Cycle) -> bool {
        self.stage_resp_xbar_tracked(now).0 > 0
    }

    /// Stage 6, with the mask of L1 fill queues that received a
    /// response.
    fn stage_resp_xbar_tracked(&mut self, now: Cycle) -> (u64, u64) {
        self.resp_xbar.tick_tracked_masked(
            now,
            &mut self.resp_pending,
            &mut self.l2_up,
            &mut self.l1_fill_in,
            |r| match r.origin {
                miopt_engine::Origin::Wavefront { cu, .. } => cu as usize,
                miopt_engine::Origin::Internal => 0,
            },
        )
    }

    /// Stage 7 for one CU: up to two L1 fills from its response queue.
    fn fill_l1_unit(&mut self, now: Cycle, i: usize) -> bool {
        let mut acted = false;
        for _ in 0..2 {
            let Some(&resp) = self.l1_fill_in[i].ready_front(now) else {
                break;
            };
            match self.l1s[i].fill(now, resp, &mut self.l1_up[i]) {
                Ok(()) => {
                    self.l1_fill_in[i].pop_ready(now);
                    acted = true;
                }
                Err(_) => break,
            }
        }
        acted
    }

    /// Stage 7: L1 fills.
    fn stage_l1_fills(&mut self, now: Cycle) -> bool {
        let mut acted = false;
        for i in 0..self.l1s.len() {
            acted |= self.fill_l1_unit(now, i);
        }
        acted
    }

    /// Stage 8: L1 accesses (with miss-replay).
    fn stage_l1_service(&mut self, now: Cycle) -> bool {
        let mut acted = false;
        for i in 0..self.l1s.len() {
            if self.l1s[i].service(
                now,
                &mut self.l1_in[i],
                &mut self.l1_down[i],
                &mut self.l1_up[i],
            ) {
                self.req_pending |= 1 << i;
                acted = true;
            }
        }
        acted
    }

    /// Stage 9: request crossbar (L1s -> L2 slices).
    fn stage_req_xbar(&mut self, now: Cycle) -> bool {
        self.stage_req_xbar_tracked(now).0 > 0
    }

    /// Stage 9, with the mask of L2 input queues that received a
    /// request.
    fn stage_req_xbar_tracked(&mut self, now: Cycle) -> (u64, u64) {
        let cfg = &self.cfg;
        self.req_xbar.tick_tracked_masked(
            now,
            &mut self.req_pending,
            &mut self.l1_down,
            &mut self.l2_in,
            |r| cfg.l2_slice_of(r.line),
        )
    }

    /// Stage 10 for one CU: deliver its ready L1 responses to the GPU.
    fn gpu_resp_unit(&mut self, now: Cycle, i: usize) -> bool {
        let mut acted = false;
        while let Some(resp) = self.l1_up[i].pop_ready(now) {
            self.gpu.on_response(resp);
            acted = true;
        }
        acted
    }

    /// Stage 10: responses to the GPU.
    fn stage_gpu_resp(&mut self, now: Cycle) -> bool {
        let mut acted = false;
        for i in 0..self.l1_up.len() {
            acted |= self.gpu_resp_unit(now, i);
        }
        acted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CachePolicy;
    use miopt_workloads::{by_name, SuiteConfig};

    fn run(policy: CachePolicy, name: &str) -> Metrics {
        let w = by_name(&SuiteConfig::quick(), name).unwrap();
        let mut sys = ApuSystem::new(SystemConfig::small_test(), PolicyConfig::of(policy), &w);
        sys.run_to_completion(200_000_000).expect("run finished")
    }

    #[test]
    fn softmax_runs_under_every_policy() {
        for p in CachePolicy::ALL {
            let m = run(p, "FwSoft");
            assert!(m.cycles > 0, "{p}");
            assert!(m.gpu.retired_wavefronts > 0, "{p}");
            assert!(m.dram_accesses() > 0, "{p}");
        }
    }

    #[test]
    fn caching_reduces_dram_traffic_for_rereads() {
        // FwSoft re-reads its tiny input: cached runs must hit DRAM less.
        let unc = run(CachePolicy::Uncached, "FwSoft");
        let r = run(CachePolicy::CacheR, "FwSoft");
        assert!(
            r.dram_accesses() < unc.dram_accesses(),
            "cached {} vs uncached {}",
            r.dram_accesses(),
            unc.dram_accesses()
        );
    }

    #[test]
    fn uncached_counts_no_cache_stalls() {
        let m = run(CachePolicy::Uncached, "FwSoft");
        assert_eq!(m.cache_stalls(), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(CachePolicy::CacheRW, "FwSoft");
        let b = run(CachePolicy::CacheRW, "FwSoft");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dram_accesses(), b.dram_accesses());
        assert_eq!(a.cache_stalls(), b.cache_stalls());
    }

    #[test]
    fn multi_kernel_workload_flushes_between_kernels() {
        let w = by_name(&SuiteConfig::quick(), "FwLSTM").unwrap();
        let mut sys = ApuSystem::new(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheRW),
            &w,
        );
        let m = sys.run_to_completion(2_000_000_000).expect("finished");
        // 150 launches, each at least the launch overhead apart.
        assert!(m.cycles > 150 * SystemConfig::small_test().launch_overhead);
        assert!(m.l2.self_invalidations.get() > 0 || m.l2.flush_writebacks.get() > 0);
    }

    #[test]
    fn checked_run_with_tight_cadence_completes_quietly() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut sys = ApuSystem::new(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheRW),
            &w,
        );
        sys.enable_sentinel(64, 50_000);
        assert!(sys.sentinel_enabled());
        let m = sys.run_to_completion(200_000_000).expect("healthy run");
        assert!(m.cycles > 0);
        assert!(sys.check_invariants_now().is_empty());
    }

    #[test]
    fn sentinel_catches_an_injected_credit_loss() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut sys = ApuSystem::new(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheR),
            &w,
        );
        sys.inject_queue_credit_loss(1);
        let vs = sys.check_invariants_now();
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].component, "queue.l1_in[1]");
        assert_eq!(vs[0].invariant, "credit_conservation");
        sys.enable_sentinel(64, 0);
        let err = sys.run_to_completion(200_000_000).expect_err("must halt");
        assert_eq!(err.diagnostic.reason, StallReason::InvariantViolation);
        assert!(err
            .diagnostic
            .violations
            .iter()
            .any(|v| v.component == "queue.l1_in[1]" && v.invariant == "credit_conservation"));
    }

    #[test]
    fn sentinel_catches_a_leaked_allocating_mshr_entry() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut sys = ApuSystem::new(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheR),
            &w,
        );
        sys.inject_l1_mshr_leak(2, miopt_engine::LineAddr(8), true);
        sys.enable_sentinel(64, 0);
        let err = sys.run_to_completion(200_000_000).expect_err("must halt");
        assert_eq!(err.diagnostic.reason, StallReason::InvariantViolation);
        let v = err
            .diagnostic
            .violations
            .iter()
            .find(|v| v.invariant == "mshr_reservation")
            .expect("reservation violation");
        assert_eq!(v.component, "l1[2]");
        assert!(err.diagnostic.cycle < 200, "caught at the first sweep");
    }

    #[test]
    fn watchdog_reports_a_wedged_drain_with_mshr_contents() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut sys = ApuSystem::new(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheR),
            &w,
        );
        // A structurally plausible leak: no invariant trips, but the
        // hierarchy never drains, so only the watchdog can catch it.
        sys.inject_l1_mshr_leak(0, miopt_engine::LineAddr(8), false);
        sys.enable_sentinel(64, 5_000);
        let err = sys.run_to_completion(200_000_000).expect_err("must wedge");
        assert_eq!(err.diagnostic.reason, StallReason::NoForwardProgress);
        assert!(err.diagnostic.violations.is_empty(), "plausible leak");
        let (comp, entries) = err
            .diagnostic
            .mshrs
            .iter()
            .find(|(c, _)| c == "l1[0]")
            .expect("leaked MSHR in the diagnostic");
        assert_eq!(comp, "l1[0]");
        assert!(entries[0].contains("line 0x8"), "{entries:?}");
        assert!(err.to_string().contains("halted"));
        // The budget was nowhere near exhausted: the watchdog fired first.
        assert!(err.diagnostic.cycle < 200_000_000);
    }

    #[test]
    fn time_skipping_is_bit_identical_to_per_cycle_stepping() {
        // The strongest form of the skip-ahead contract: identical
        // metrics AND an identical telemetry stream (every epoch
        // boundary, phase span, and event instant at the same cycle),
        // with the sentinel sweeping at tight cadence in both runs.
        for p in [
            CachePolicy::Uncached,
            CachePolicy::CacheR,
            CachePolicy::CacheRW,
        ] {
            let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
            let mut fast = ApuSystem::new(SystemConfig::small_test(), PolicyConfig::of(p), &w);
            let mut slow = ApuSystem::new(SystemConfig::small_test(), PolicyConfig::of(p), &w);
            slow.set_time_skip(false);
            assert!(fast.time_skip_enabled());
            assert!(!slow.time_skip_enabled());
            for sys in [&mut fast, &mut slow] {
                sys.enable_telemetry(512);
                sys.enable_sentinel(64, 50_000);
            }
            let mf = fast.run_to_completion(200_000_000).expect("skip run");
            let ms = slow.run_to_completion(200_000_000).expect("per-cycle run");
            assert_eq!(mf.cycles, ms.cycles, "{p}");
            assert_eq!(mf.dram_accesses(), ms.dram_accesses(), "{p}");
            assert_eq!(mf.cache_stalls(), ms.cache_stalls(), "{p}");
            assert_eq!(fast.take_telemetry(), slow.take_telemetry(), "{p}");
        }
    }

    #[test]
    fn budget_exhaustion_fires_at_the_same_cycle_with_skipping() {
        // A wedged quiescent system warps straight to the budget; the
        // diagnostic must report the identical halt cycle either way.
        let halt_cycle = |skip: bool| {
            let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
            let mut sys = ApuSystem::new(
                SystemConfig::small_test(),
                PolicyConfig::of(CachePolicy::CacheR),
                &w,
            );
            sys.set_time_skip(skip);
            // Watchdog off: only the budget can end the wedged drain.
            sys.enable_sentinel(64, 0);
            sys.inject_l1_mshr_leak(0, miopt_engine::LineAddr(8), false);
            let err = sys.run_to_completion(100_000).expect_err("must time out");
            assert_eq!(err.diagnostic.reason, StallReason::CycleBudget);
            err.diagnostic.cycle
        };
        assert_eq!(halt_cycle(true), halt_cycle(false));
    }

    #[test]
    fn idle_system_replays_a_workload_like_a_fresh_one() {
        // Feeding a workload's kernels one at a time into a persistent
        // idle system must retire the same work as a one-shot run.
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let one_shot = run(CachePolicy::CacheR, "FwSoft");
        let mut sys = ApuSystem::new_idle(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::CacheR),
        );
        assert!(sys.is_done());
        assert_eq!(sys.pending_launches(), 0);
        for (i, k) in w.launches.iter().enumerate() {
            sys.enqueue_kernel(Arc::clone(k), i as u32);
            sys.run_to_completion(200_000_000).expect("kernel finished");
            assert!(sys.is_done());
        }
        let m = sys.metrics();
        assert_eq!(m.gpu.retired_wavefronts, one_shot.gpu.retired_wavefronts);
        assert_eq!(m.dram_accesses(), one_shot.dram_accesses());
        assert_eq!(m.cycles, one_shot.cycles);
    }

    #[test]
    fn idle_until_is_bit_identical_across_skip_modes() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut runs = Vec::new();
        for skip in [true, false] {
            let mut sys = ApuSystem::new_idle(
                SystemConfig::small_test(),
                PolicyConfig::of(CachePolicy::CacheR),
            );
            sys.set_time_skip(skip);
            sys.enable_telemetry(512);
            // Idle gap, kernel, idle gap, kernel — with gaps that are not
            // multiples of the telemetry interval.
            sys.idle_until(Cycle(1_700));
            sys.enqueue_kernel(Arc::clone(&w.launches[0]), 0);
            sys.run_to_completion(200_000_000).expect("first kernel");
            let resume = sys.now() + 12_345;
            sys.idle_until(resume);
            sys.enqueue_kernel(Arc::clone(&w.launches[0]), 1);
            sys.run_to_completion(200_000_000).expect("second kernel");
            let m = sys.metrics();
            runs.push((m.cycles, m.dram_accesses(), sys.take_telemetry()));
        }
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn policy_switch_at_idle_boundary_takes_effect() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let mut sys = ApuSystem::new_idle(
            SystemConfig::small_test(),
            PolicyConfig::of(CachePolicy::Uncached),
        );
        sys.enqueue_kernel(Arc::clone(&w.launches[0]), 0);
        sys.run_to_completion(200_000_000).expect("uncached kernel");
        let uncached_dram = sys.metrics().dram_accesses();
        // Switch to CacheR with a half-capacity L2 partition and rerun.
        sys.set_policy_config(
            &PolicyConfig::of(CachePolicy::CacheR),
            Some(WayRange::new(0, SystemConfig::small_test().l2.ways / 2)),
        );
        sys.enqueue_kernel(Arc::clone(&w.launches[0]), 1);
        sys.run_to_completion(400_000_000).expect("cached kernel");
        let delta = sys.metrics().dram_accesses() - uncached_dram;
        assert!(
            delta < uncached_dram,
            "cached rerun must hit DRAM less: {delta} vs {uncached_dram}"
        );
        assert!(sys.check_invariants_now().is_empty());
    }

    #[test]
    fn cache_rw_coalesces_store_revisits() {
        let unc = run(CachePolicy::Uncached, "BwBN");
        let rw = run(CachePolicy::CacheRW, "BwBN");
        assert!(
            rw.dram.writes.get() < unc.dram.writes.get(),
            "rw {} vs unc {}",
            rw.dram.writes.get(),
            unc.dram.writes.get()
        );
    }
}
