use crate::config::ConfigError;
use miopt_cache::{LevelPolicy, PredictorConfig, RowMap};
use std::fmt;

/// The three static GPU caching policies of paper Section III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CachePolicy {
    /// Loads and stores bypass all GPU caches.
    Uncached,
    /// Loads are cached in L1 and L2; stores bypass all GPU caches.
    CacheR,
    /// Loads are cached in L1 and L2; stores bypass the L1 and are
    /// combined in the L2 until the release flush.
    CacheRW,
}

impl CachePolicy {
    /// All three static policies, in the paper's presentation order.
    pub const ALL: [CachePolicy; 3] = [
        CachePolicy::Uncached,
        CachePolicy::CacheR,
        CachePolicy::CacheRW,
    ];
}

impl fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CachePolicy::Uncached => "Uncached",
            CachePolicy::CacheR => "CacheR",
            CachePolicy::CacheRW => "CacheRW",
        })
    }
}

/// The Section VII optimizations, applied cumulatively on `CacheRW` in the
/// paper's evaluation (AB, then AB+CR, then AB+CR+PCby).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OptimizationSet {
    /// Allocation bypass (Section VII.1): convert to bypass instead of
    /// blocking when every way of a set is busy. Applied at L1 and L2.
    pub allocation_bypass: bool,
    /// Row-locality-aware cache rinsing via a dirty-block index
    /// (Section VII.B). Applied at the L2.
    pub cache_rinsing: bool,
    /// PC-based L2 bypass prediction for loads and stores
    /// (Section VII.C).
    pub pc_bypass: bool,
}

impl OptimizationSet {
    /// No optimizations (the plain static policies).
    #[must_use]
    pub fn none() -> OptimizationSet {
        OptimizationSet::default()
    }

    /// `CacheRW-AB`.
    #[must_use]
    pub fn ab() -> OptimizationSet {
        OptimizationSet {
            allocation_bypass: true,
            ..OptimizationSet::default()
        }
    }

    /// `CacheRW-CR` (AB + rinsing, as in the paper's cumulative ladder).
    #[must_use]
    pub fn ab_cr() -> OptimizationSet {
        OptimizationSet {
            allocation_bypass: true,
            cache_rinsing: true,
            ..OptimizationSet::default()
        }
    }

    /// `CacheRW-PCby` (AB + CR + PC-based bypass).
    #[must_use]
    pub fn ab_cr_pcby() -> OptimizationSet {
        OptimizationSet {
            allocation_bypass: true,
            cache_rinsing: true,
            pc_bypass: true,
        }
    }
}

/// A complete cache configuration: a static policy plus optimizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolicyConfig {
    /// The static policy.
    pub policy: CachePolicy,
    /// Optimizations layered on top.
    pub opts: OptimizationSet,
}

impl PolicyConfig {
    /// A plain static policy.
    #[must_use]
    pub fn of(policy: CachePolicy) -> PolicyConfig {
        PolicyConfig {
            policy,
            opts: OptimizationSet::none(),
        }
    }

    /// A validated policy-plus-optimizations configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Policy`] for combinations the paper's
    /// mechanisms cannot express: any optimization on `Uncached` (there is
    /// no cache to optimize) and cache rinsing outside `CacheRW` (only
    /// write-caching produces the dirty L2 lines rinsing writes back).
    ///
    /// # Examples
    ///
    /// ```
    /// use miopt::{CachePolicy, OptimizationSet, PolicyConfig};
    ///
    /// let p = PolicyConfig::new(CachePolicy::CacheRW, OptimizationSet::ab_cr()).unwrap();
    /// assert_eq!(p.label(), "CacheRW-CR");
    /// assert!(PolicyConfig::new(CachePolicy::Uncached, OptimizationSet::ab()).is_err());
    /// ```
    pub fn new(policy: CachePolicy, opts: OptimizationSet) -> Result<PolicyConfig, ConfigError> {
        let config = PolicyConfig { policy, opts };
        config.validate()?;
        Ok(config)
    }

    /// Checks this configuration against the constraints of
    /// [`PolicyConfig::new`] (which literal-constructed configs skip).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Policy`] for inconsistent combinations.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let any_opt = self.opts.allocation_bypass || self.opts.cache_rinsing || self.opts.pc_bypass;
        if self.policy == CachePolicy::Uncached && any_opt {
            return Err(ConfigError::Policy(
                "Uncached admits no optimizations (all caches are disabled)".to_string(),
            ));
        }
        if self.opts.cache_rinsing && self.policy != CachePolicy::CacheRW {
            return Err(ConfigError::Policy(format!(
                "cache rinsing requires CacheRW (no dirty L2 lines to rinse under {})",
                self.policy
            )));
        }
        Ok(())
    }

    /// The paper's Figure 10 label for this configuration.
    #[must_use]
    pub fn label(&self) -> String {
        let base = self.policy.to_string();
        if self.opts.pc_bypass {
            format!("{base}-PCby")
        } else if self.opts.cache_rinsing {
            format!("{base}-CR")
        } else if self.opts.allocation_bypass {
            format!("{base}-AB")
        } else {
            base
        }
    }

    /// The L1 level policy this configuration implies. Stores always
    /// bypass the L1 (paper Section III).
    #[must_use]
    pub fn l1_policy(&self) -> LevelPolicy {
        match self.policy {
            CachePolicy::Uncached => LevelPolicy::disabled(),
            CachePolicy::CacheR | CachePolicy::CacheRW => LevelPolicy {
                allocation_bypass: self.opts.allocation_bypass,
                ..LevelPolicy::cache_loads_only()
            },
        }
    }

    /// The L2 level policy this configuration implies, given the DRAM row
    /// map used by the dirty-block index.
    #[must_use]
    pub fn l2_policy(&self, row_map: RowMap) -> LevelPolicy {
        let mut p = match self.policy {
            CachePolicy::Uncached => return LevelPolicy::disabled(),
            CachePolicy::CacheR => LevelPolicy::cache_loads_only(),
            CachePolicy::CacheRW => LevelPolicy::cache_loads_and_stores(),
        };
        p.allocation_bypass = self.opts.allocation_bypass;
        if self.opts.cache_rinsing {
            p.rinse = true;
            p.row_map = Some(row_map);
        }
        if self.opts.pc_bypass {
            p.pc_bypass = Some(PredictorConfig::paper());
        }
        p
    }
}

impl fmt::Display for PolicyConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The five Figure 10 ladder configurations compared against the static
/// best/worst: `CacheRW-AB`, `CacheRW-CR`, `CacheRW-PCby`.
#[must_use]
pub fn optimization_ladder() -> Vec<PolicyConfig> {
    [
        OptimizationSet::ab(),
        OptimizationSet::ab_cr(),
        OptimizationSet::ab_cr_pcby(),
    ]
    .into_iter()
    .map(|opts| {
        PolicyConfig::new(CachePolicy::CacheRW, opts).expect("ladder combinations are valid")
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(PolicyConfig::of(CachePolicy::Uncached).label(), "Uncached");
        assert_eq!(PolicyConfig::of(CachePolicy::CacheR).label(), "CacheR");
        let l = optimization_ladder();
        assert_eq!(l[0].label(), "CacheRW-AB");
        assert_eq!(l[1].label(), "CacheRW-CR");
        assert_eq!(l[2].label(), "CacheRW-PCby");
    }

    #[test]
    fn uncached_disables_both_levels() {
        let p = PolicyConfig::of(CachePolicy::Uncached);
        assert!(!p.l1_policy().enabled);
        assert!(!p.l2_policy(RowMap::new(4, 5)).enabled);
    }

    #[test]
    fn stores_never_cache_at_l1() {
        for policy in CachePolicy::ALL {
            let p = PolicyConfig::of(policy);
            assert!(!p.l1_policy().cache_stores, "{policy}");
        }
    }

    #[test]
    fn cache_rw_absorbs_stores_at_l2_only() {
        let p = PolicyConfig::of(CachePolicy::CacheRW);
        assert!(p.l2_policy(RowMap::new(4, 5)).cache_stores);
        let r = PolicyConfig::of(CachePolicy::CacheR);
        assert!(!r.l2_policy(RowMap::new(4, 5)).cache_stores);
    }

    #[test]
    fn ladder_is_cumulative() {
        let l = optimization_ladder();
        assert!(l[0].opts.allocation_bypass && !l[0].opts.cache_rinsing);
        assert!(l[1].opts.allocation_bypass && l[1].opts.cache_rinsing && !l[1].opts.pc_bypass);
        assert!(l[2].opts.allocation_bypass && l[2].opts.cache_rinsing && l[2].opts.pc_bypass);
    }

    #[test]
    fn rinse_policy_carries_row_map() {
        let p = PolicyConfig::new(CachePolicy::CacheRW, OptimizationSet::ab_cr()).unwrap();
        let lp = p.l2_policy(RowMap::new(4, 5));
        assert!(lp.rinse);
        assert!(lp.row_map.is_some());
        lp.validate().unwrap();
    }

    #[test]
    fn new_rejects_inconsistent_combinations() {
        // Every optimization set is fine on CacheRW.
        for opts in [
            OptimizationSet::none(),
            OptimizationSet::ab(),
            OptimizationSet::ab_cr(),
            OptimizationSet::ab_cr_pcby(),
        ] {
            assert!(PolicyConfig::new(CachePolicy::CacheRW, opts).is_ok());
        }
        // Uncached admits none of them.
        for opts in [
            OptimizationSet::ab(),
            OptimizationSet::ab_cr(),
            OptimizationSet::ab_cr_pcby(),
        ] {
            assert!(matches!(
                PolicyConfig::new(CachePolicy::Uncached, opts),
                Err(ConfigError::Policy(_))
            ));
        }
        // Rinsing needs write-caching; plain AB or PC bypass do not.
        assert!(PolicyConfig::new(CachePolicy::CacheR, OptimizationSet::ab()).is_ok());
        assert!(matches!(
            PolicyConfig::new(CachePolicy::CacheR, OptimizationSet::ab_cr()),
            Err(ConfigError::Policy(_))
        ));
    }
}
