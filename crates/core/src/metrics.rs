use crate::SystemConfig;
use miopt_cache::CacheStats;
use miopt_dram::DramStats;
use miopt_gpu::GpuStats;

/// Everything a single simulation run reports — the raw material for every
/// figure in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Execution time in GPU cycles (Figures 6 and 10 use this,
    /// normalized).
    pub cycles: u64,
    /// GPU-side counters (VALU ops, coalesced requests).
    pub gpu: GpuStats,
    /// DRAM counters (Figures 7, 9, 11, 13).
    pub dram: DramStats,
    /// Summed L1 statistics across CUs.
    pub l1: CacheStats,
    /// Summed L2 statistics across slices.
    pub l2: CacheStats,
    /// GPU clock, for rate metrics.
    gpu_clock_hz: f64,
}

impl Metrics {
    pub(crate) fn new(
        cfg: &SystemConfig,
        cycles: u64,
        gpu: GpuStats,
        dram: DramStats,
        l1: CacheStats,
        l2: CacheStats,
    ) -> Metrics {
        Metrics {
            cycles,
            gpu,
            dram,
            l1,
            l2,
            gpu_clock_hz: cfg.gpu_clock_hz,
        }
    }

    /// Reconstructs metrics from their components (results
    /// deserialization hook; also used to synthesize metrics in tests).
    /// The inverse of reading the public fields plus [`Metrics::gpu_clock_hz`].
    #[must_use]
    pub fn from_parts(
        cycles: u64,
        gpu: GpuStats,
        dram: DramStats,
        l1: CacheStats,
        l2: CacheStats,
        gpu_clock_hz: f64,
    ) -> Metrics {
        Metrics {
            cycles,
            gpu,
            dram,
            l1,
            l2,
            gpu_clock_hz,
        }
    }

    /// The GPU clock this run was simulated at, in Hz (needed to
    /// serialize and rebuild the rate metrics).
    #[must_use]
    pub fn gpu_clock_hz(&self) -> f64 {
        self.gpu_clock_hz
    }

    /// Wall-clock seconds of the simulated execution.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / self.gpu_clock_hz
    }

    /// Giga vector operations per second (Figure 4).
    #[must_use]
    pub fn gvops(&self) -> f64 {
        self.gpu.valu_lane_ops as f64 / self.seconds() / 1e9
    }

    /// Giga GPU memory requests per second issued to the memory system
    /// (Figure 5).
    #[must_use]
    pub fn gmrs(&self) -> f64 {
        self.gpu.memory_requests() as f64 / self.seconds() / 1e9
    }

    /// Memory accesses that reached the DRAM controller (Figures 7
    /// and 11 normalize this to the Uncached run).
    #[must_use]
    pub fn dram_accesses(&self) -> u64 {
        self.dram.accesses()
    }

    /// DRAM row-buffer hit ratio over loads and stores (Figures 9
    /// and 13).
    #[must_use]
    pub fn row_hit_ratio(&self) -> f64 {
        self.dram.row_hits.value()
    }

    /// Total cache stall cycles (L1 + L2).
    #[must_use]
    pub fn cache_stalls(&self) -> u64 {
        self.l1.stall_cycles() + self.l2.stall_cycles()
    }

    /// Cache stalls per GPU memory request (Figures 8 and 12,
    /// log scale).
    #[must_use]
    pub fn stalls_per_request(&self) -> f64 {
        let reqs = self.gpu.memory_requests();
        if reqs == 0 {
            0.0
        } else {
            self.cache_stalls() as f64 / reqs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(cycles: u64) -> Metrics {
        let gpu = GpuStats {
            valu_lane_ops: 1_600_000,
            line_loads: 1_000,
            line_stores: 600,
            ..GpuStats::default()
        };
        let mut l1 = CacheStats::default();
        l1.stall_mshr.add(100);
        let mut l2 = CacheStats::default();
        l2.stall_set_busy.add(60);
        Metrics::new(
            &SystemConfig::paper_table1(),
            cycles,
            gpu,
            DramStats::default(),
            l1,
            l2,
        )
    }

    #[test]
    fn rates_are_per_second() {
        let m = metrics(1_600_000); // 1 ms at 1.6 GHz
        assert!((m.seconds() - 1e-3).abs() < 1e-12);
        assert!((m.gvops() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn stalls_per_request_sums_levels() {
        let m = metrics(100);
        assert_eq!(m.cache_stalls(), 160);
        assert!((m.stalls_per_request() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_requests_gives_zero_stall_rate() {
        let m = Metrics::new(
            &SystemConfig::paper_table1(),
            10,
            GpuStats::default(),
            DramStats::default(),
            CacheStats::default(),
            CacheStats::default(),
        );
        assert_eq!(m.stalls_per_request(), 0.0);
    }
}
