//! `miopt` — a reproduction of *"Optimizing GPU Cache Policies for MI
//! Workloads"* (Alsop et al., IISWC 2019) as a from-scratch, cycle-level
//! GPU memory-system simulator.
//!
//! The paper characterizes 17 machine-intelligence benchmarks under three
//! static GPU caching policies and evaluates three cooperative cache
//! optimizations. This crate assembles the full simulated APU from the
//! subsystem crates and exposes the paper's experiment surface:
//!
//! * [`SystemConfig`] — the Table 1 machine (64 CUs, 16 KB L1s, 4 MB L2,
//!   HBM2 at 512 GB/s).
//! * [`CachePolicy`] / [`OptimizationSet`] / [`PolicyConfig`] — the
//!   Section III policies (`Uncached`, `CacheR`, `CacheRW`) and the
//!   Section VII optimization ladder (`-AB`, `-CR`, `-PCby`).
//! * [`ApuSystem`] — the wired system; run a workload, get [`Metrics`].
//! * [`runner`] — figure-level sweeps: every workload × every policy, and
//!   the optimization ladder against the static best/worst. Entry points
//!   return `Result<_, `[`runner::SimError`]`>`; inconsistent
//!   configurations are rejected up front as typed [`ConfigError`]s
//!   (see [`SystemConfig::builder`] and [`PolicyConfig::new`]).
//! * Telemetry — [`runner::RunOptions::telemetry_interval`] (or
//!   [`ApuSystem::enable_telemetry`]) samples every component's counters
//!   on a fixed cycle interval and records phase spans and events into a
//!   deterministic `miopt_telemetry::TelemetryRun` time series.
//! * Sentinel — [`runner::RunOptions::check_invariants`] (or
//!   [`ApuSystem::enable_sentinel`]) sweeps every component's
//!   conservation invariants on a cadence and watches for forward
//!   progress; a stuck or inconsistent run halts with a structured
//!   [`StallDiagnostic`] instead of burning its whole cycle budget.
//!   Debug builds always run checked.
//!
//! # Quickstart
//!
//! ```
//! use miopt::{ApuSystem, CachePolicy, PolicyConfig, SystemConfig};
//! use miopt_workloads::{by_name, SuiteConfig};
//!
//! // Simulate the forward-softmax layer under the CacheR policy.
//! let workload = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
//! let mut sys = ApuSystem::new(
//!     SystemConfig::small_test(),
//!     PolicyConfig::of(CachePolicy::CacheR),
//!     &workload,
//! );
//! let metrics = sys.run_to_completion(100_000_000).unwrap();
//! println!(
//!     "{} cycles, {} DRAM accesses, row hit ratio {:.1}%",
//!     metrics.cycles,
//!     metrics.dram_accesses(),
//!     metrics.row_hit_ratio() * 100.0
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod metrics;
mod policy;
pub mod runner;
mod system;

pub use config::{ConfigError, SystemConfig, SystemConfigBuilder};
// Cache-level types that appear in the public serving API
// (`ApuSystem::set_policy_config` / `set_level_policies`).
pub use metrics::Metrics;
pub use miopt_cache::{LevelPolicy, WayRange};
pub use policy::{optimization_ladder, CachePolicy, OptimizationSet, PolicyConfig};
pub use system::{
    ApuSystem, EventProfile, EventProfileRow, SimTimeoutError, StallDiagnostic, StallReason,
};
