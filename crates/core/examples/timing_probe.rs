//! Diagnostic probe: wall-clock simulation throughput for one workload
//! (reports simulated cycles per second with 10-second progress lines).
//!
//! ```text
//! cargo run --release -p miopt --example timing_probe -- FwAct CacheR
//! ```

use miopt::{ApuSystem, CachePolicy, PolicyConfig, SystemConfig};
use miopt_workloads::{by_name, SuiteConfig};
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap();
    let policy = std::env::args().nth(2).unwrap_or("CacheR".into());
    let p = match policy.as_str() {
        "Uncached" => CachePolicy::Uncached,
        "CacheRW" => CachePolicy::CacheRW,
        _ => CachePolicy::CacheR,
    };
    let w = by_name(&SuiteConfig::paper(), &name).unwrap();
    eprintln!(
        "{}: {} kernels, {:.1} MB",
        w.name,
        w.total_kernels(),
        w.footprint as f64 / 1048576.0
    );
    let t = Instant::now();
    let mut sys = ApuSystem::new(SystemConfig::paper_table1(), PolicyConfig::of(p), &w);
    let mut last = Instant::now();
    let mut steps = 0u64;
    while !sys.is_done() {
        sys.step();
        steps += 1;
        if last.elapsed().as_secs() >= 10 {
            let m = sys.metrics();
            eprintln!(
                "  t={:5.0}s cycles={} dram={} gpureq={}",
                t.elapsed().as_secs_f64(),
                steps,
                m.dram_accesses(),
                m.gpu.memory_requests()
            );
            last = Instant::now();
        }
        if t.elapsed().as_secs() > 60 {
            eprintln!("  TIMEOUT at {steps} cycles");
            break;
        }
    }
    let m = sys.metrics();
    eprintln!(
        "done: {:.1}s wall, {} cycles, {} dram, {:.1} Mcyc/s",
        t.elapsed().as_secs_f64(),
        m.cycles,
        m.dram_accesses(),
        m.cycles as f64 / t.elapsed().as_secs_f64() / 1e6
    );
}
