//! Diagnostic probe: run one workload under all three static policies at
//! the paper scale and dump every counter (used for calibration; see
//! DESIGN.md "Calibration notes").
//!
//! ```text
//! cargo run --release -p miopt --example debug_probe -- FwBN [quick]
//! ```

use miopt::{ApuSystem, CachePolicy, PolicyConfig, SystemConfig};
use miopt_workloads::{by_name, SuiteConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "FwSoft".into());
    let scale = match std::env::args().nth(2).as_deref() {
        Some("quick") => SuiteConfig::quick(),
        _ => SuiteConfig::paper(),
    };
    let w = by_name(&scale, &name).unwrap();
    println!(
        "workload {} launches={} footprint={}KB",
        w.name,
        w.total_kernels(),
        w.footprint / 1024
    );
    for p in CachePolicy::ALL {
        let mut sys = ApuSystem::new(SystemConfig::paper_table1(), PolicyConfig::of(p), &w);
        let m = sys.run_to_completion(20_000_000_000).unwrap();
        println!("{:9} cyc={:9} dram={:8} (r={} w={}) rowhit={:.3} (cl={} cf={}) l1hit%={:.1} l2hit%={:.1} gpureq={}",
            p.to_string(), m.cycles, m.dram_accesses(), m.dram.reads.get(), m.dram.writes.get(),
            m.row_hit_ratio(), m.dram.row_closed.get(), m.dram.row_conflicts.get(), m.l1.load_hit_rate()*100.0, m.l2.load_hit_rate()*100.0, m.gpu.memory_requests());
        println!("   l2 loads[hit={} merge={} miss={} byp={}] evC={} wb={} fl={} selfinv={} stHit={} stAlloc={} stByp={}",
            m.l2.load_hits.get(), m.l2.load_merges.get(), m.l2.load_misses.get(), m.l2.load_bypasses.get(),
            m.l2.evictions_clean.get(), m.l2.writebacks.get(), m.l2.flush_writebacks.get(), m.l2.self_invalidations.get(),
            m.l2.store_hits.get(), m.l2.store_allocs.get(), m.l2.store_bypasses.get());
        println!("   l1 stalls[mshr={} set={} merge={} out={} port={}] l2 stalls[mshr={} set={} merge={} out={} port={}]",
            m.l1.stall_mshr.get(), m.l1.stall_set_busy.get(), m.l1.stall_merge.get(), m.l1.stall_out_queue.get(), m.l1.stall_port.get(),
            m.l2.stall_mshr.get(), m.l2.stall_set_busy.get(), m.l2.stall_merge.get(), m.l2.stall_out_queue.get(), m.l2.stall_port.get());
    }
}
