//! GCN-like GPU compute model for the `miopt` simulator.
//!
//! Models the Table 1 GPU: 64 compute units, 4 SIMD units per CU, up to 10
//! wavefronts per SIMD, 64-wide wavefronts, single-cycle instruction issue.
//! The model is execution-driven at the *memory* level: wavefronts run
//! small programs ([`Op`]) whose memory instructions generate lane
//! addresses through a workload-supplied [`AddrGen`], are coalesced into
//! 64 B line requests, and flow into the cache hierarchy. Arithmetic is
//! represented by issue-slot occupancy (`Op::Valu`), which both limits
//! compute-bound kernels and produces the paper's Figure 4 GVOPS metric.
//!
//! Latency hiding works as on real hardware: a wavefront issues its loads,
//! keeps executing until a [`Op::WaitCnt`] requires outstanding loads to
//! drain below a threshold, and other wavefronts on the same SIMD fill the
//! stall cycles.
//!
//! # Examples
//!
//! See [`Gpu`] for a complete dispatch example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalesce;
mod cu;
mod device;
mod program;
mod wavefront;

pub use coalesce::{coalesce, coalesce_into};
pub use cu::{Cu, CuConfig};
pub use device::{Gpu, GpuStats};
pub use program::{AccessCtx, AddrGen, KernelDesc, KernelProgram, Op};
