use crate::program::KernelDesc;
use crate::wavefront::{Wavefront, WfState};
use miopt_engine::sentinel::{InvariantViolation, Sentinel};
use miopt_engine::{AccessKind, Cycle, MemReq, Origin, ReqId, TimedQueue};
use std::sync::Arc;

/// Compute-unit geometry (Table 1: 4 SIMDs, 10 wavefronts per SIMD).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CuConfig {
    /// SIMD units per CU.
    pub simds: usize,
    /// Wavefront slots per SIMD unit.
    pub wf_slots_per_simd: usize,
    /// Coalesced line requests issued to the L1 per cycle.
    pub mem_issue_per_cycle: u32,
}

impl CuConfig {
    /// The paper's Table 1 CU.
    #[must_use]
    pub fn paper() -> CuConfig {
        CuConfig {
            simds: 4,
            wf_slots_per_simd: 10,
            mem_issue_per_cycle: 1,
        }
    }

    /// A small CU for unit tests (1 SIMD, 2 slots).
    #[must_use]
    pub fn tiny_test() -> CuConfig {
        CuConfig {
            simds: 1,
            wf_slots_per_simd: 2,
            mem_issue_per_cycle: 1,
        }
    }

    /// Total wavefront slots.
    #[must_use]
    pub fn total_slots(&self) -> usize {
        self.simds * self.wf_slots_per_simd
    }
}

/// One compute unit: wavefront slots grouped by SIMD, a memory issue pipe,
/// and execution statistics.
///
/// Occupancy and pending-memory state are tracked in bitmasks so that a
/// cycle's work is proportional to the *active* wavefronts, not the slot
/// count — the simulator's inner loop.
#[derive(Debug)]
pub struct Cu {
    cfg: CuConfig,
    id: u16,
    slots: Vec<Option<Wavefront>>,
    /// Bit per slot: a wavefront is resident.
    occ_mask: u64,
    /// Bit per slot: the wavefront has coalesced requests awaiting issue.
    pending_mask: u64,
    simd_busy_until: Vec<Cycle>,
    simd_rr: Vec<usize>,
    mem_rr: u32,
    req_counter: u64,
    valu_lane_ops: u64,
    line_loads: u64,
    line_stores: u64,
    retired_wavefronts: u64,
}

impl Cu {
    /// Builds compute unit `id` (ids namespace request ids and must be
    /// unique).
    ///
    /// # Panics
    ///
    /// Panics if the geometry exceeds 64 wavefront slots (the bitmask
    /// width).
    #[must_use]
    pub fn new(cfg: CuConfig, id: u16) -> Cu {
        assert!(cfg.total_slots() <= 64, "at most 64 wavefront slots per CU");
        Cu {
            slots: (0..cfg.total_slots()).map(|_| None).collect(),
            occ_mask: 0,
            pending_mask: 0,
            simd_busy_until: vec![Cycle::ZERO; cfg.simds],
            simd_rr: vec![0; cfg.simds],
            mem_rr: 0,
            req_counter: 0,
            valu_lane_ops: 0,
            line_loads: 0,
            line_stores: 0,
            retired_wavefronts: 0,
            cfg,
            id,
        }
    }

    /// This CU's id.
    #[must_use]
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Number of empty wavefront slots.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.slots.len() - self.occ_mask.count_ones() as usize
    }

    /// Number of resident wavefronts.
    #[must_use]
    pub fn active_wavefronts(&self) -> usize {
        self.occ_mask.count_ones() as usize
    }

    /// VALU lane-operations executed (64 per VALU instruction).
    #[must_use]
    pub fn valu_lane_ops(&self) -> u64 {
        self.valu_lane_ops
    }

    /// Coalesced load requests issued to the L1.
    #[must_use]
    pub fn line_loads(&self) -> u64 {
        self.line_loads
    }

    /// Coalesced store requests issued to the L1.
    #[must_use]
    pub fn line_stores(&self) -> u64 {
        self.line_stores
    }

    /// Wavefronts that ran to completion.
    #[must_use]
    pub fn retired_wavefronts(&self) -> u64 {
        self.retired_wavefronts
    }

    /// Outstanding work across resident wavefronts, for stall diagnostics:
    /// `(resident wavefronts, load responses awaited, coalesced accesses
    /// not yet issued)`.
    #[must_use]
    pub fn outstanding_ops(&self) -> (usize, u64, usize) {
        let mut loads = 0u64;
        let mut pending = 0usize;
        for wf in self.slots.iter().flatten() {
            loads += u64::from(wf.outstanding_loads());
            pending += wf.pending.len();
        }
        (self.active_wavefronts(), loads, pending)
    }

    /// Places the wavefronts of one work-group onto this CU.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer free slots than `wfs_per_wg` (the
    /// dispatcher checks [`Cu::free_slots`] first).
    pub(crate) fn assign_wg(&mut self, kernel: &Arc<KernelDesc>, kernel_seq: u32, wg: u32) {
        let all_slots = if self.slots.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.slots.len()) - 1
        };
        for wf in 0..kernel.wfs_per_wg {
            let free = !self.occ_mask & all_slots;
            assert!(free != 0, "not enough free slots for work-group");
            let idx = free.trailing_zeros() as usize;
            self.slots[idx] = Some(Wavefront::new(Arc::clone(kernel), kernel_seq, wg, wf));
            self.occ_mask |= 1 << idx;
        }
    }

    /// Routes a load response to its wavefront.
    pub fn on_response(&mut self, slot: u16) {
        let idx = slot as usize;
        match self.slots.get_mut(idx) {
            Some(Some(wf)) => {
                wf.on_load_response();
                self.try_retire(idx);
            }
            _ => debug_assert!(false, "response for empty slot {slot}"),
        }
    }

    fn try_retire(&mut self, idx: usize) {
        let finished = matches!(
            &self.slots[idx],
            Some(wf) if wf.is_done() && wf.pending.is_empty() && wf.outstanding_loads() == 0
        );
        if finished {
            self.slots[idx] = None;
            self.occ_mask &= !(1 << idx);
            self.pending_mask &= !(1 << idx);
            self.retired_wavefronts += 1;
        }
    }

    /// The earliest cycle at or after `now` at which this CU might do
    /// work, or `None` if it is empty or every resident wavefront is
    /// waiting on a memory response.
    ///
    /// Conservative in the skip-ahead sense: the CU may wake and find it
    /// still cannot issue (an extra no-op [`Cu::tick`]), but it never
    /// reports a cycle later than its first real action.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.occ_mask == 0 {
            return None;
        }
        if self.pending_mask != 0 {
            // The memory pipe has coalesced requests to drain (or is
            // blocked on L1 backpressure, which clears while the
            // downstream queues are busy anyway).
            return Some(now);
        }
        let per = self.cfg.wf_slots_per_simd;
        let mut next: Option<Cycle> = None;
        for s in 0..self.cfg.simds {
            let base = s * per;
            let simd_mask = (self.occ_mask >> base) & ((1u64 << per) - 1);
            if simd_mask == 0 {
                continue;
            }
            // The SIMD can issue once it is free AND some wavefront is
            // runnable: min over wavefronts of max(pipe free, wake).
            let mut m = simd_mask;
            let mut earliest: Option<Cycle> = None;
            while m != 0 {
                let off = m.trailing_zeros() as usize;
                m &= m - 1;
                let wf = self.slots[base + off].as_ref().expect("occupied");
                if let Some(wake) = wf.next_wake(now) {
                    if earliest.is_none_or(|w| wake < w) {
                        earliest = Some(wake);
                    }
                }
            }
            if let Some(wake) = earliest {
                let at = wake.max(self.simd_busy_until[s]).max(now);
                if next.is_none_or(|n| at < n) {
                    next = Some(at);
                }
            }
        }
        next
    }

    /// Advances the CU one cycle: issues memory requests from wavefronts'
    /// coalescing buffers, then lets each idle SIMD issue one instruction.
    ///
    /// Returns whether anything was issued or retired this cycle; `false`
    /// means every resident wavefront is blocked (waiting on memory or a
    /// busy SIMD) and the CU provably did nothing.
    pub fn tick(&mut self, now: Cycle, l1_in: &mut TimedQueue<MemReq>) -> bool {
        if self.occ_mask == 0 {
            return false;
        }
        let mem = self.issue_memory(now, l1_in);
        self.issue_simds(now) || mem
    }

    fn issue_memory(&mut self, now: Cycle, l1_in: &mut TimedQueue<MemReq>) -> bool {
        let mut issued = 0;
        // One wavefront's coalesced group drains back-to-back before the
        // pipe rotates to the next wavefront: a vector memory instruction
        // owns the coalescer until its line requests are out, which is
        // what preserves the group's DRAM row locality downstream.
        while issued < self.cfg.mem_issue_per_cycle && self.pending_mask != 0 && l1_in.can_push() {
            let rot = self.pending_mask.rotate_right(self.mem_rr % 64);
            let idx = ((rot.trailing_zeros() + self.mem_rr) % 64) as usize;
            debug_assert!(self.pending_mask & (1 << idx) != 0);
            let wf = self.slots[idx]
                .as_mut()
                .expect("pending bit implies wavefront");
            let acc = *wf.pending.front().expect("pending bit implies requests");
            let pc = wf.kernel().pc_of(acc.op_index);
            self.req_counter += 1;
            let req = MemReq {
                id: ReqId((u64::from(self.id) << 48) | self.req_counter),
                line: acc.line,
                is_store: acc.is_store,
                kind: AccessKind::Cached,
                pc,
                origin: Origin::Wavefront {
                    cu: self.id,
                    slot: idx as u16,
                },
                issue_cycle: now,
            };
            if l1_in.push(now, req).is_err() {
                break;
            }
            wf.pending.pop_front();
            if wf.pending.is_empty() {
                self.pending_mask &= !(1 << idx);
                self.try_retire(idx);
                // Group drained: rotate to the next wavefront.
                self.mem_rr = (idx as u32 + 1) % 64;
            } else {
                // Keep draining this wavefront's group.
                self.mem_rr = idx as u32;
            }
            if acc.is_store {
                self.line_stores += 1;
            } else {
                self.line_loads += 1;
            }
            issued += 1;
        }
        issued > 0
    }

    pub(crate) fn check_masks(&self, component: &str, out: &mut Vec<InvariantViolation>) {
        for (idx, slot) in self.slots.iter().enumerate() {
            let occ = self.occ_mask & (1 << idx) != 0;
            let pend = self.pending_mask & (1 << idx) != 0;
            if occ != slot.is_some() {
                out.push(InvariantViolation {
                    component: component.to_string(),
                    invariant: "occupancy_mask",
                    detail: format!(
                        "slot {idx}: occ_mask says {occ} but slot is {}",
                        if slot.is_some() { "occupied" } else { "empty" }
                    ),
                });
            }
            let has_pending = slot.as_ref().is_some_and(|wf| !wf.pending.is_empty());
            if pend != has_pending {
                out.push(InvariantViolation {
                    component: component.to_string(),
                    invariant: "pending_mask",
                    detail: format!(
                        "slot {idx}: pending_mask says {pend} but wavefront has {} \
                         unissued coalesced accesses",
                        slot.as_ref().map_or(0, |wf| wf.pending.len())
                    ),
                });
            }
            // A wavefront with no work left must have been retired on the
            // spot (its slot freed and the retirement counter bumped); a
            // resident one means a retirement was lost.
            let should_have_retired = slot.as_ref().is_some_and(|wf| {
                wf.is_done() && wf.pending.is_empty() && wf.outstanding_loads() == 0
            });
            if should_have_retired {
                out.push(InvariantViolation {
                    component: component.to_string(),
                    invariant: "retirement_exactness",
                    detail: format!("slot {idx}: finished wavefront was never retired"),
                });
            }
        }
    }

    fn issue_simds(&mut self, now: Cycle) -> bool {
        let mut any = false;
        let per = self.cfg.wf_slots_per_simd;
        for s in 0..self.cfg.simds {
            if self.simd_busy_until[s] > now {
                continue;
            }
            let base = s * per;
            let simd_mask = (self.occ_mask >> base) & ((1u64 << per) - 1);
            if simd_mask == 0 {
                continue;
            }
            let start = self.simd_rr[s];
            for k in 0..per {
                let off = (start + k) % per;
                if simd_mask & (1 << off) == 0 {
                    continue;
                }
                let idx = base + off;
                let wf = self.slots[idx].as_mut().expect("occupied");
                if wf.state(now) == WfState::Ready {
                    let (occupancy, lane_ops) = wf.issue(now);
                    if !wf.pending.is_empty() {
                        self.pending_mask |= 1 << idx;
                    }
                    self.simd_busy_until[s] = now + occupancy;
                    self.valu_lane_ops += lane_ops;
                    self.simd_rr[s] = (off + 1) % per;
                    if wf.is_done() {
                        self.try_retire(idx);
                    }
                    any = true;
                    break;
                }
            }
        }
        any
    }
}

impl Sentinel for Cu {
    fn check_invariants(&self, component: &str, out: &mut Vec<InvariantViolation>) {
        self.check_masks(component, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{AccessCtx, AddrGen, KernelProgram, Op};
    use miopt_engine::Addr;

    fn kernel(body: Vec<Op>, iters: u32, wfs_per_wg: u32) -> Arc<KernelDesc> {
        let gen: Arc<dyn AddrGen> = Arc::new(|ctx: &AccessCtx| {
            Some(Addr(
                u64::from(ctx.wg) * 65536
                    + u64::from(ctx.wf) * 4096
                    + u64::from(ctx.iter) * 256
                    + u64::from(ctx.lane) * 4,
            ))
        });
        Arc::new(KernelDesc {
            name: "test".to_string(),
            template_id: 1,
            wgs: 1,
            wfs_per_wg,
            program: KernelProgram::new(body, iters),
            gen,
        })
    }

    fn retired_after(cu: &mut Cu, q: &mut TimedQueue<MemReq>, cycles: std::ops::Range<u64>) -> u64 {
        let before = cu.retired_wavefronts();
        for c in cycles {
            cu.tick(Cycle(c), q);
        }
        cu.retired_wavefronts() - before
    }

    #[test]
    fn compute_only_kernel_retires_without_memory() {
        let mut cu = Cu::new(CuConfig::tiny_test(), 0);
        let k = kernel(vec![Op::Valu { count: 2 }], 3, 1);
        cu.assign_wg(&k, 0, 0);
        let mut q = TimedQueue::new(8, 0);
        let retired = retired_after(&mut cu, &mut q, 0..100);
        assert_eq!(retired, 1);
        assert_eq!(cu.valu_lane_ops(), 2 * 64 * 3);
        assert!(q.is_empty());
        assert_eq!(cu.active_wavefronts(), 0);
    }

    #[test]
    fn memory_kernel_issues_and_waits_for_responses() {
        let mut cu = Cu::new(CuConfig::tiny_test(), 3);
        let k = kernel(vec![Op::Load { pattern: 0 }, Op::WaitCnt { max: 0 }], 1, 1);
        cu.assign_wg(&k, 0, 0);
        let mut q = TimedQueue::new(64, 0);
        for c in 0..10 {
            cu.tick(Cycle(c), &mut q);
        }
        assert_eq!(cu.line_loads(), 4);
        assert_eq!(cu.active_wavefronts(), 1, "blocked on waitcnt");
        let mut slots = Vec::new();
        while let Some(r) = q.pop_ready(Cycle(10)) {
            match r.origin {
                Origin::Wavefront { cu: c, slot } => {
                    assert_eq!(c, 3);
                    slots.push(slot);
                }
                Origin::Internal => panic!("wavefront requests carry origins"),
            }
        }
        for s in slots {
            cu.on_response(s);
        }
        let retired = retired_after(&mut cu, &mut q, 10..20);
        assert_eq!(retired, 1);
    }

    #[test]
    fn two_wavefronts_hide_each_others_latency() {
        let mut cu = Cu::new(CuConfig::tiny_test(), 0);
        let k = kernel(
            vec![
                Op::Load { pattern: 0 },
                Op::WaitCnt { max: 0 },
                Op::Valu { count: 1 },
            ],
            1,
            2,
        );
        cu.assign_wg(&k, 0, 0);
        let mut q = TimedQueue::new(64, 0);
        for c in 0..10 {
            cu.tick(Cycle(c), &mut q);
        }
        assert_eq!(cu.line_loads(), 8);
        assert_eq!(cu.active_wavefronts(), 2);
    }

    #[test]
    fn mem_issue_rate_is_limited() {
        let mut cu = Cu::new(CuConfig::tiny_test(), 0);
        let k = kernel(vec![Op::Load { pattern: 0 }, Op::WaitCnt { max: 0 }], 1, 1);
        cu.assign_wg(&k, 0, 0);
        let mut q = TimedQueue::new(64, 0);
        cu.tick(Cycle(0), &mut q);
        let after_first = q.len();
        cu.tick(Cycle(1), &mut q);
        let after_second = q.len();
        assert!(after_second - after_first <= 1, "1 line request per cycle");
    }

    #[test]
    fn requests_have_stable_pcs() {
        let mut cu = Cu::new(CuConfig::tiny_test(), 0);
        let k = kernel(vec![Op::Load { pattern: 0 }], 2, 1);
        cu.assign_wg(&k, 0, 0);
        let mut q = TimedQueue::new(64, 0);
        for c in 0..20 {
            cu.tick(Cycle(c), &mut q);
        }
        let pcs: Vec<_> = q.drain_all().map(|r| r.pc).collect();
        assert!(!pcs.is_empty());
        assert!(
            pcs.windows(2).all(|w| w[0] == w[1]),
            "same static instruction"
        );
    }

    #[test]
    fn backpressure_pauses_issue_without_losing_requests() {
        let mut cu = Cu::new(CuConfig::tiny_test(), 0);
        let k = kernel(vec![Op::Load { pattern: 0 }, Op::WaitCnt { max: 0 }], 1, 1);
        cu.assign_wg(&k, 0, 0);
        let mut q = TimedQueue::new(1, 0);
        let mut total = 0;
        for c in 0..50 {
            cu.tick(Cycle(c), &mut q);
            total += q.drain_all().count();
        }
        assert_eq!(total, 4, "all coalesced requests eventually issue");
    }

    /// Drives a mixed compute/memory kernel cycle by cycle and checks the
    /// skip-ahead contract: whenever the tick produces an observable
    /// action, the CU must have predicted an event at exactly that cycle.
    #[test]
    fn next_event_never_skips_an_acting_cycle() {
        let mut cu = Cu::new(CuConfig::tiny_test(), 0);
        assert_eq!(cu.next_event(Cycle(0)), None, "empty CU sleeps");
        let k = kernel(
            vec![
                Op::Valu { count: 5 },
                Op::Load { pattern: 0 },
                Op::WaitCnt { max: 0 },
            ],
            1,
            1,
        );
        cu.assign_wg(&k, 0, 0);
        let mut q = TimedQueue::new(64, 0);
        let mut now = Cycle(0);
        while cu.active_wavefronts() > 0 && now.0 < 1000 {
            let predicted = cu.next_event(now);
            let before = (
                q.len(),
                cu.valu_lane_ops(),
                cu.line_loads(),
                cu.retired_wavefronts(),
            );
            cu.tick(now, &mut q);
            let after = (
                q.len(),
                cu.valu_lane_ops(),
                cu.line_loads(),
                cu.retired_wavefronts(),
            );
            if before != after {
                assert_eq!(predicted, Some(now), "acted at {now} unpredicted");
            }
            while let Some(r) = q.pop_ready(now) {
                if let Origin::Wavefront { slot, .. } = r.origin {
                    if !r.is_store {
                        cu.on_response(slot);
                    }
                }
            }
            now += 1;
        }
        assert_eq!(cu.retired_wavefronts(), 1);
        assert_eq!(cu.next_event(now), None, "retired CU sleeps");
    }

    #[test]
    fn masks_track_occupancy() {
        let mut cu = Cu::new(CuConfig::tiny_test(), 0);
        assert_eq!(cu.free_slots(), 2);
        let k = kernel(vec![Op::Valu { count: 1 }], 1, 2);
        cu.assign_wg(&k, 0, 0);
        assert_eq!(cu.free_slots(), 0);
        assert_eq!(cu.active_wavefronts(), 2);
        let mut q = TimedQueue::new(8, 0);
        for c in 0..10 {
            cu.tick(Cycle(c), &mut q);
        }
        assert_eq!(cu.free_slots(), 2);
    }
}
