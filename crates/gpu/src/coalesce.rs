use miopt_engine::{Addr, LineAddr};

/// Coalesces up to 64 lane addresses into unique cache-line requests,
/// preserving first-touch order (the order the L1 sees them).
///
/// This is the GCN coalescer: one vector memory instruction produces one
/// request per distinct 64 B line its active lanes touch — 4 requests for a
/// dense float32 stream, up to 64 for a fully divergent gather.
///
/// # Examples
///
/// ```
/// use miopt_engine::{Addr, LineAddr};
/// use miopt_gpu::coalesce;
///
/// // A dense float32 stream: 64 lanes x 4 bytes = 4 lines.
/// let lanes = (0..64).map(|l| Some(Addr(l * 4)));
/// assert_eq!(coalesce(lanes), vec![LineAddr(0), LineAddr(1), LineAddr(2), LineAddr(3)]);
/// ```
#[must_use]
pub fn coalesce(lanes: impl IntoIterator<Item = Option<Addr>>) -> Vec<LineAddr> {
    let mut lines = Vec::with_capacity(4);
    coalesce_into(lanes, &mut lines);
    lines
}

/// Allocation-free form of [`coalesce`]: clears `out` and fills it with the
/// unique lines in first-touch order. Callers on the per-instruction hot
/// path keep a scratch buffer alive across calls so steady-state coalescing
/// performs no heap traffic at all.
pub fn coalesce_into(lanes: impl IntoIterator<Item = Option<Addr>>, out: &mut Vec<LineAddr>) {
    out.clear();
    for addr in lanes.into_iter().flatten() {
        let line = addr.line();
        if !out.contains(&line) {
            out.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_coalesces_to_one_line() {
        let lanes = (0..64).map(|_| Some(Addr(100)));
        assert_eq!(coalesce(lanes), vec![LineAddr(1)]);
    }

    #[test]
    fn divergent_gather_produces_64_lines() {
        let lanes = (0..64u64).map(|l| Some(Addr(l * 4096)));
        assert_eq!(coalesce(lanes).len(), 64);
    }

    #[test]
    fn inactive_lanes_are_skipped() {
        let lanes = (0..64u64).map(|l| if l % 2 == 0 { Some(Addr(l * 4)) } else { None });
        // Even lanes cover bytes 0..252 stride 8: still lines 0..3.
        assert_eq!(coalesce(lanes).len(), 4);
    }

    #[test]
    fn all_inactive_produces_no_requests() {
        let lanes = (0..64).map(|_| None);
        assert!(coalesce(lanes).is_empty());
    }

    #[test]
    fn order_is_first_touch() {
        let lanes = vec![Some(Addr(128)), Some(Addr(0)), Some(Addr(129))];
        assert_eq!(coalesce(lanes), vec![LineAddr(2), LineAddr(0)]);
    }

    #[test]
    fn double_precision_stream_is_8_lines() {
        let lanes = (0..64u64).map(|l| Some(Addr(l * 8)));
        assert_eq!(coalesce(lanes).len(), 8);
    }

    #[test]
    fn coalesce_into_reuses_the_buffer() {
        let mut out = vec![LineAddr(99)];
        coalesce_into((0..64).map(|l| Some(Addr(l * 4))), &mut out);
        assert_eq!(
            out,
            vec![LineAddr(0), LineAddr(1), LineAddr(2), LineAddr(3)]
        );
        coalesce_into((0..64).map(|_| Some(Addr(100))), &mut out);
        assert_eq!(out, vec![LineAddr(1)], "buffer is cleared between calls");
    }
}
