use crate::cu::{Cu, CuConfig};
use crate::program::KernelDesc;
use miopt_engine::sentinel::{InvariantViolation, Sentinel};
use miopt_engine::{Cycle, MemReq, MemResp, Origin, TimedQueue};
use std::sync::Arc;

/// Aggregated GPU execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpuStats {
    /// VALU lane-operations executed (the Figure 4 numerator).
    pub valu_lane_ops: u64,
    /// Coalesced load requests issued to the memory system.
    pub line_loads: u64,
    /// Coalesced store requests issued to the memory system.
    pub line_stores: u64,
    /// Wavefronts retired.
    pub retired_wavefronts: u64,
}

impl GpuStats {
    /// Total memory requests (the Figure 5 numerator and the Figure 8
    /// normalization denominator).
    #[must_use]
    pub fn memory_requests(&self) -> u64 {
        self.line_loads + self.line_stores
    }

    /// All counters as stable `(name, value)` pairs (results
    /// serialization hook).
    #[must_use]
    pub fn to_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("valu_lane_ops", self.valu_lane_ops),
            ("line_loads", self.line_loads),
            ("line_stores", self.line_stores),
            ("retired_wavefronts", self.retired_wavefronts),
        ]
    }

    /// Reconstructs statistics from persisted counters. `get` is queried
    /// once per field name (results deserialization hook).
    ///
    /// # Errors
    ///
    /// Returns the name of the first field `get` cannot supply.
    pub fn from_pairs(mut get: impl FnMut(&str) -> Option<u64>) -> Result<GpuStats, String> {
        let mut want =
            |name: &'static str| get(name).ok_or_else(|| format!("missing gpu stat `{name}`"));
        Ok(GpuStats {
            valu_lane_ops: want("valu_lane_ops")?,
            line_loads: want("line_loads")?,
            line_stores: want("line_stores")?,
            retired_wavefronts: want("retired_wavefronts")?,
        })
    }
}

impl miopt_telemetry::StatSnapshot for GpuStats {
    fn stat_pairs(&self) -> Vec<(&'static str, u64)> {
        self.to_pairs()
    }
}

/// "No pending action" sentinel for [`Gpu::tick_tracked`]'s wake hints.
const NEVER: Cycle = Cycle(u64::MAX);

/// State of the kernel currently being dispatched/executed.
#[derive(Debug)]
struct ActiveKernel {
    desc: Arc<KernelDesc>,
    seq: u32,
    next_wg: u32,
    /// Sum of per-CU retired counters when the kernel launched.
    retired_at_start: u64,
}

/// The GPU device: a set of compute units plus a work-group dispatcher.
///
/// The device executes one kernel at a time (the paper's workloads launch
/// kernels back-to-back with synchronization between them). The system
/// driving the device is responsible for kernel-boundary cache actions.
///
/// # Examples
///
/// ```
/// use miopt_engine::{Addr, Cycle, MemResp, TimedQueue};
/// use miopt_gpu::{AccessCtx, Gpu, CuConfig, KernelDesc, KernelProgram, Op};
/// use std::sync::Arc;
///
/// let mut gpu = Gpu::new(2, CuConfig::tiny_test());
/// let kernel = Arc::new(KernelDesc {
///     name: "stream".to_string(),
///     template_id: 0,
///     wgs: 4,
///     wfs_per_wg: 1,
///     program: KernelProgram::new(vec![Op::Load { pattern: 0 }, Op::WaitCnt { max: 0 }], 1),
///     gen: Arc::new(|ctx: &AccessCtx| Some(Addr(u64::from(ctx.wg) * 16384 + u64::from(ctx.lane) * 4))),
/// });
/// gpu.start_kernel(kernel, 0);
/// let mut l1_ins: Vec<_> = (0..2).map(|_| TimedQueue::new(64, 0)).collect();
/// let mut now = Cycle(0);
/// while !gpu.kernel_done() {
///     gpu.tick(now, &mut l1_ins);
///     // A perfect memory: answer every request immediately.
///     for q in &mut l1_ins {
///         while let Some(req) = q.pop_ready(now) {
///             if !req.is_store {
///                 gpu.on_response(MemResp::for_req(&req));
///             }
///         }
///     }
///     now += 1;
/// }
/// assert_eq!(gpu.stats().retired_wavefronts, 4);
/// ```
#[derive(Debug)]
pub struct Gpu {
    cus: Vec<Cu>,
    active: Option<ActiveKernel>,
    kernels_run: u64,
    /// Per-CU cache of [`Cu::next_event`], valid while the CU's
    /// [`Gpu::stale`] bit is clear: the earliest cycle the CU might act
    /// ([`NEVER`] = blocked until a response arrives). Lets
    /// [`Gpu::tick_tracked`] skip provably stalled CUs — a no-op
    /// `Cu::tick` mutates nothing, so skipping it is behaviorally
    /// invisible — and [`Gpu::next_event`] answer without rescanning
    /// every wavefront.
    wake_hint: Vec<Cycle>,
    /// CUs (bit per index, first 64 only) whose hint is stale because an
    /// external event — a delivered response, an assigned work-group —
    /// changed their state since it was computed. Stale CUs are always
    /// ticked and rescanned.
    stale: u64,
    /// Per-CU retired-wavefront count at the last reconciliation, and
    /// the running device total. Retires happen only inside [`Cu::tick`]
    /// (an acted CU) and [`Cu::on_response`], so reconciling at those
    /// two sites keeps the total exact while [`Gpu::kernel_done`] stays
    /// O(1) instead of summing 64 CUs every cycle.
    retired_seen: Vec<u64>,
    retired_total: u64,
}

impl Gpu {
    /// Builds a GPU with `n_cus` compute units.
    ///
    /// # Panics
    ///
    /// Panics if `n_cus` is zero.
    #[must_use]
    pub fn new(n_cus: usize, cu_cfg: CuConfig) -> Gpu {
        assert!(n_cus > 0, "GPU needs at least one CU");
        Gpu {
            cus: (0..n_cus)
                .map(|i| Cu::new(cu_cfg.clone(), i as u16))
                .collect(),
            active: None,
            kernels_run: 0,
            wake_hint: vec![NEVER; n_cus],
            stale: u64::MAX,
            retired_seen: vec![0; n_cus],
            retired_total: 0,
        }
    }

    /// Folds CU `i`'s retirements since the last reconciliation into the
    /// running total. Must be called after any operation that can retire
    /// a wavefront on that CU.
    #[inline]
    fn note_retired(&mut self, i: usize) {
        let r = self.cus[i].retired_wavefronts();
        self.retired_total += r - self.retired_seen[i];
        self.retired_seen[i] = r;
    }

    /// Whether CU `i` must be ticked/rescanned at `now` (its hint is
    /// stale or due). CUs past index 63 have no stale bit and are always
    /// hot.
    #[inline]
    fn cu_hot(&self, i: usize, now: Cycle) -> bool {
        i >= 64 || self.stale & (1 << i) != 0 || self.wake_hint[i] <= now
    }

    /// Number of compute units.
    #[must_use]
    pub fn cu_count(&self) -> usize {
        self.cus.len()
    }

    /// Begins dispatching `desc`. `seq` is the launch sequence number
    /// passed to the address generator (distinguishes e.g. RNN timesteps).
    ///
    /// # Panics
    ///
    /// Panics if a kernel is still executing.
    pub fn start_kernel(&mut self, desc: Arc<KernelDesc>, seq: u32) {
        assert!(self.kernel_done(), "previous kernel still executing");
        let retired_at_start = self.total_retired();
        self.active = Some(ActiveKernel {
            desc,
            seq,
            next_wg: 0,
            retired_at_start,
        });
        self.kernels_run += 1;
    }

    /// Whether the active kernel (if any) has retired every wavefront.
    ///
    /// Note this does not include memory-system drain: stores may still be
    /// in flight below the CUs. The system-level barrier handles that.
    #[must_use]
    pub fn kernel_done(&self) -> bool {
        match &self.active {
            None => true,
            Some(k) => {
                k.next_wg == k.desc.wgs
                    && self.total_retired() - k.retired_at_start == k.desc.total_wavefronts()
            }
        }
    }

    fn total_retired(&self) -> u64 {
        debug_assert_eq!(
            self.retired_total,
            self.cus.iter().map(Cu::retired_wavefronts).sum::<u64>(),
            "incremental retired count drifted from the per-CU truth"
        );
        self.retired_total
    }

    /// Advances the device one cycle. `l1_ins[i]` is CU `i`'s request
    /// queue toward its L1.
    ///
    /// Returns whether the device did anything — dispatched a work-group
    /// or had any CU issue or retire. `false` means every CU is provably
    /// stalled (empty or waiting on memory responses).
    ///
    /// # Panics
    ///
    /// Panics if `l1_ins.len()` differs from the CU count.
    pub fn tick(&mut self, now: Cycle, l1_ins: &mut [TimedQueue<MemReq>]) -> bool {
        self.tick_tracked(now, l1_ins).0
    }

    /// [`Gpu::tick`], additionally reporting *which* CUs acted this
    /// cycle, as a bitmask over CU indices. A CU pushes into its L1
    /// queue only on a cycle it acted, so the mask bounds the set of L1
    /// queues with new input — the event-driven core uses it to wake
    /// only those L1s. CUs at index 64 and above are not representable
    /// (the modelled device tops out at 64).
    pub fn tick_tracked(&mut self, now: Cycle, l1_ins: &mut [TimedQueue<MemReq>]) -> (bool, u64) {
        assert_eq!(l1_ins.len(), self.cus.len(), "one L1 queue per CU");
        let mut acted = self.dispatch();
        let mut mask = 0u64;
        let stale = self.stale;
        for (i, (cu, q)) in self.cus.iter_mut().zip(l1_ins.iter_mut()).enumerate() {
            if i < 64 && stale & (1 << i) == 0 && self.wake_hint[i] > now {
                // The hint proves this CU cannot act before `wake_hint[i]`
                // and nothing external touched it since the hint was
                // computed: its tick would be a no-op, so skip the scan.
                continue;
            }
            if cu.tick(now, q) {
                acted = true;
                let r = cu.retired_wavefronts();
                self.retired_total += r - self.retired_seen[i];
                self.retired_seen[i] = r;
                if i < 64 {
                    mask |= 1 << i;
                    // Issuing/retiring changed the CU's schedule; rescan
                    // next tick.
                    self.stale |= 1 << i;
                }
            } else if i < 64 {
                self.stale &= !(1 << i);
                self.wake_hint[i] = cu.next_event(now).unwrap_or(NEVER);
            }
        }
        (acted, mask)
    }

    /// Assigns pending work-groups to CUs with free slots. Returns
    /// whether any work-group was assigned.
    fn dispatch(&mut self) -> bool {
        let Some(k) = self.active.as_mut() else {
            return false;
        };
        if k.next_wg == k.desc.wgs {
            return false;
        }
        let per_wg = k.desc.wfs_per_wg as usize;
        let first = k.next_wg;
        let mut newly = 0u64;
        for (i, cu) in self.cus.iter_mut().enumerate() {
            let before = k.next_wg;
            while k.next_wg < k.desc.wgs && cu.free_slots() >= per_wg {
                cu.assign_wg(&k.desc, k.seq, k.next_wg);
                k.next_wg += 1;
            }
            if k.next_wg != before && i < 64 {
                newly |= 1 << i;
            }
            if k.next_wg == k.desc.wgs {
                break;
            }
        }
        self.stale |= newly;
        k.next_wg != first
    }

    /// The earliest cycle at or after `now` at which the device might act
    /// — dispatch a pending work-group or let a CU issue — or `None` if
    /// every CU is empty or waiting on memory responses.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if let Some(k) = &self.active {
            if k.next_wg < k.desc.wgs {
                let per_wg = k.desc.wfs_per_wg as usize;
                if self.cus.iter().any(|cu| cu.free_slots() >= per_wg) {
                    return Some(now);
                }
            }
        }
        self.cus
            .iter()
            .enumerate()
            .filter_map(|(i, cu)| {
                if self.cu_hot(i, now) {
                    cu.next_event(now)
                } else {
                    // A clean hint strictly after `now` is exact: the
                    // `max(.., now)` clamps inside `Cu::next_event` only
                    // pull times *up to* `now`, so a future hint cannot
                    // have been clamped.
                    match self.wake_hint[i] {
                        NEVER => None,
                        t => Some(t),
                    }
                }
            })
            .min()
    }

    /// Routes a load response to its wavefront.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the response does not carry a wavefront
    /// origin.
    pub fn on_response(&mut self, resp: MemResp) {
        match resp.origin {
            Origin::Wavefront { cu, slot } => {
                self.cus[cu as usize].on_response(slot);
                // A response can retire the wavefront it unblocks.
                self.note_retired(cu as usize);
                if (cu as usize) < 64 {
                    // The response may unblock a waitcnt; invalidate the
                    // CU's wake hint.
                    self.stale |= 1 << cu;
                }
            }
            Origin::Internal => debug_assert!(false, "internal response routed to GPU"),
        }
    }

    /// Aggregated statistics across all CUs.
    #[must_use]
    pub fn stats(&self) -> GpuStats {
        let mut s = GpuStats::default();
        for cu in &self.cus {
            s.valu_lane_ops += cu.valu_lane_ops();
            s.line_loads += cu.line_loads();
            s.line_stores += cu.line_stores();
            s.retired_wavefronts += cu.retired_wavefronts();
        }
        s
    }

    /// Kernels launched so far.
    #[must_use]
    pub fn kernels_run(&self) -> u64 {
        self.kernels_run
    }

    /// Per-CU outstanding work for stall diagnostics: one
    /// `(cu, resident wavefronts, loads awaited, unissued accesses)` entry
    /// per CU that still has resident wavefronts.
    #[must_use]
    pub fn wavefront_summary(&self) -> Vec<(usize, usize, u64, usize)> {
        self.cus
            .iter()
            .enumerate()
            .filter(|(_, cu)| cu.active_wavefronts() > 0)
            .map(|(i, cu)| {
                let (active, loads, pending) = cu.outstanding_ops();
                (i, active, loads, pending)
            })
            .collect()
    }
}

impl Sentinel for Gpu {
    fn check_invariants(&self, component: &str, out: &mut Vec<InvariantViolation>) {
        for (i, cu) in self.cus.iter().enumerate() {
            cu.check_invariants(&format!("{component}.cu[{i}]"), out);
        }
        // At kernel end every wavefront has retired, so no CU may still
        // hold residents or awaited responses ("outstanding-op counts hit
        // zero at kernel end").
        if self.kernel_done() {
            for (i, cu) in self.cus.iter().enumerate() {
                let (active, loads, pending) = cu.outstanding_ops();
                if active != 0 || loads != 0 || pending != 0 {
                    out.push(InvariantViolation {
                        component: format!("{component}.cu[{i}]"),
                        invariant: "kernel_end_quiescence",
                        detail: format!(
                            "kernel done but CU holds {active} wavefront(s), \
                             {loads} awaited load(s), {pending} unissued access(es)"
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{AccessCtx, AddrGen, KernelProgram, Op};
    use miopt_engine::Addr;

    fn stream_kernel(wgs: u32, wfs_per_wg: u32, iters: u32) -> Arc<KernelDesc> {
        let gen: Arc<dyn AddrGen> = Arc::new(|ctx: &AccessCtx| {
            Some(Addr(
                u64::from(ctx.wg) * 1_048_576
                    + u64::from(ctx.wf) * 65536
                    + u64::from(ctx.iter) * 256
                    + u64::from(ctx.lane) * 4,
            ))
        });
        Arc::new(KernelDesc {
            name: "stream".to_string(),
            template_id: 2,
            wgs,
            wfs_per_wg,
            program: KernelProgram::new(
                vec![
                    Op::Load { pattern: 0 },
                    Op::WaitCnt { max: 0 },
                    Op::Store { pattern: 1 },
                ],
                iters,
            ),
            gen,
        })
    }

    fn run_to_completion(gpu: &mut Gpu, limit: u64) -> u64 {
        let mut l1_ins: Vec<TimedQueue<MemReq>> = (0..gpu.cu_count())
            .map(|_| TimedQueue::new(64, 0))
            .collect();
        let mut now = Cycle(0);
        while !gpu.kernel_done() {
            gpu.tick(now, &mut l1_ins);
            for q in &mut l1_ins {
                while let Some(req) = q.pop_ready(now) {
                    if req.wants_response() {
                        gpu.on_response(MemResp::for_req(&req));
                    }
                }
            }
            now += 1;
            assert!(now.0 < limit, "kernel did not finish");
        }
        now.0
    }

    #[test]
    fn kernel_runs_to_completion_with_perfect_memory() {
        let mut gpu = Gpu::new(2, CuConfig::tiny_test());
        gpu.start_kernel(stream_kernel(6, 1, 2), 0);
        run_to_completion(&mut gpu, 10_000);
        let s = gpu.stats();
        assert_eq!(s.retired_wavefronts, 6);
        // 6 wfs x 2 iters x (4 load lines + 4 store lines).
        assert_eq!(s.line_loads, 48);
        assert_eq!(s.line_stores, 48);
    }

    #[test]
    fn work_spreads_across_cus() {
        let mut gpu = Gpu::new(4, CuConfig::tiny_test());
        gpu.start_kernel(stream_kernel(8, 1, 1), 0);
        gpu.dispatch();
        let busy = gpu.cus.iter().filter(|c| c.active_wavefronts() > 0).count();
        assert_eq!(busy, 4, "all CUs should receive work-groups");
    }

    #[test]
    fn back_to_back_kernels() {
        let mut gpu = Gpu::new(2, CuConfig::tiny_test());
        for seq in 0..3 {
            gpu.start_kernel(stream_kernel(2, 1, 1), seq);
            run_to_completion(&mut gpu, 10_000);
        }
        assert_eq!(gpu.kernels_run(), 3);
        assert_eq!(gpu.stats().retired_wavefronts, 6);
    }

    #[test]
    #[should_panic(expected = "previous kernel still executing")]
    fn overlapping_launch_panics() {
        let mut gpu = Gpu::new(1, CuConfig::tiny_test());
        gpu.start_kernel(stream_kernel(2, 1, 1), 0);
        gpu.dispatch();
        gpu.start_kernel(stream_kernel(2, 1, 1), 1);
    }

    #[test]
    fn idle_gpu_is_done() {
        let gpu = Gpu::new(1, CuConfig::tiny_test());
        assert!(gpu.kernel_done());
        assert_eq!(gpu.stats(), GpuStats::default());
    }

    #[test]
    fn next_event_reflects_dispatch_and_quiescence() {
        let mut gpu = Gpu::new(1, CuConfig::tiny_test());
        assert_eq!(gpu.next_event(Cycle(5)), None, "idle device sleeps");
        gpu.start_kernel(stream_kernel(1, 1, 1), 0);
        assert_eq!(
            gpu.next_event(Cycle(5)),
            Some(Cycle(5)),
            "pending dispatch is immediate work"
        );
        run_to_completion(&mut gpu, 10_000);
        assert_eq!(gpu.next_event(Cycle(20_000)), None, "retired device sleeps");
    }

    #[test]
    fn sentinel_stays_quiet_through_kernel_and_retirement() {
        let mut gpu = Gpu::new(2, CuConfig::tiny_test());
        gpu.start_kernel(stream_kernel(6, 1, 2), 0);
        let mut l1_ins: Vec<TimedQueue<MemReq>> = (0..gpu.cu_count())
            .map(|_| TimedQueue::new(64, 0))
            .collect();
        let mut now = Cycle(0);
        let mut out = Vec::new();
        while !gpu.kernel_done() {
            gpu.tick(now, &mut l1_ins);
            for q in &mut l1_ins {
                while let Some(req) = q.pop_ready(now) {
                    if req.wants_response() {
                        gpu.on_response(MemResp::for_req(&req));
                    }
                }
            }
            gpu.check_invariants("gpu", &mut out);
            assert!(out.is_empty(), "violations at cycle {now:?}: {out:?}");
            now += 1;
            assert!(now.0 < 10_000);
        }
        gpu.check_invariants("gpu", &mut out);
        assert!(out.is_empty(), "violations after kernel end: {out:?}");
        assert!(gpu.wavefront_summary().is_empty());
    }

    #[test]
    fn oversubscribed_grid_drains_in_waves() {
        // 2 slots per CU, 1 CU, 10 WGs: dispatch must refill as wavefronts
        // retire.
        let mut gpu = Gpu::new(1, CuConfig::tiny_test());
        gpu.start_kernel(stream_kernel(10, 1, 1), 0);
        run_to_completion(&mut gpu, 100_000);
        assert_eq!(gpu.stats().retired_wavefronts, 10);
    }
}
