use crate::program::{AccessCtx, KernelDesc, Op};
use miopt_engine::{Cycle, LineAddr};
use std::collections::VecDeque;
use std::sync::Arc;

/// A coalesced line request awaiting issue to the L1, tagged with the
/// instruction that produced it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingAccess {
    pub(crate) line: LineAddr,
    pub(crate) is_store: bool,
    pub(crate) op_index: usize,
}

/// Why a wavefront cannot issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WfState {
    /// Finished its program.
    Done,
    /// Occupied by a multi-cycle op or waiting on loads/coalesced issue.
    Waiting,
    /// Can issue its next instruction.
    Ready,
}

/// One wavefront executing a kernel program.
#[derive(Debug)]
pub(crate) struct Wavefront {
    kernel: Arc<KernelDesc>,
    kernel_seq: u32,
    wg: u32,
    wf: u32,
    ip: usize,
    iter: u32,
    busy_until: Cycle,
    outstanding_loads: u32,
    pub(crate) pending: VecDeque<PendingAccess>,
    done: bool,
    /// Scratch for the coalescer, kept alive across instructions so
    /// steady-state execution allocates nothing per memory op.
    coalesce_scratch: Vec<LineAddr>,
}

impl Wavefront {
    pub(crate) fn new(kernel: Arc<KernelDesc>, kernel_seq: u32, wg: u32, wf: u32) -> Wavefront {
        Wavefront {
            kernel,
            kernel_seq,
            wg,
            wf,
            ip: 0,
            iter: 0,
            busy_until: Cycle::ZERO,
            outstanding_loads: 0,
            // One instruction's coalesced group is at most one line per
            // lane; sizing both buffers for that worst case up front means
            // a wavefront never allocates again after construction.
            pending: VecDeque::with_capacity(64),
            done: false,
            coalesce_scratch: Vec::with_capacity(64),
        }
    }

    pub(crate) fn kernel(&self) -> &Arc<KernelDesc> {
        &self.kernel
    }

    pub(crate) fn is_done(&self) -> bool {
        self.done
    }

    pub(crate) fn outstanding_loads(&self) -> u32 {
        self.outstanding_loads
    }

    /// A load response arrived.
    pub(crate) fn on_load_response(&mut self) {
        debug_assert!(
            self.outstanding_loads > 0,
            "response without outstanding load"
        );
        self.outstanding_loads = self.outstanding_loads.saturating_sub(1);
    }

    pub(crate) fn state(&self, now: Cycle) -> WfState {
        if self.done {
            return WfState::Done;
        }
        if !self.pending.is_empty() || self.busy_until > now {
            return WfState::Waiting;
        }
        match self.kernel.program.body[self.ip] {
            Op::WaitCnt { max } if self.outstanding_loads > u32::from(max) => WfState::Waiting,
            _ => WfState::Ready,
        }
    }

    /// The earliest cycle at or after `now` at which this wavefront might
    /// issue, or `None` if only an external stimulus (a load response, the
    /// memory pipe draining `pending`) can make it runnable.
    ///
    /// The estimate is conservative: waking a wavefront that turns out to
    /// still be blocked costs one idle scheduler check, while sleeping past
    /// a runnable cycle would corrupt timing — so ties resolve toward
    /// waking early.
    pub(crate) fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        if self.done {
            // Retirement is driven by responses / the memory pipe.
            return None;
        }
        if !self.pending.is_empty() {
            // Drained by the CU's memory pipe, which is active while
            // `pending_mask` is set — the CU reports `now` itself.
            return None;
        }
        if self.busy_until > now {
            return Some(self.busy_until);
        }
        match self.kernel.program.body[self.ip] {
            Op::WaitCnt { max } if self.outstanding_loads > u32::from(max) => None,
            _ => Some(now),
        }
    }

    /// Issues the instruction at `ip`. Only call when
    /// [`state`](Wavefront::state) is [`WfState::Ready`]. Returns the
    /// SIMD-pipe occupancy in cycles and the VALU lane-ops executed.
    pub(crate) fn issue(&mut self, now: Cycle) -> (u64, u64) {
        debug_assert_eq!(self.state(now), WfState::Ready);
        let op = self.kernel.program.body[self.ip];
        let (occupancy, lane_ops) = match op {
            Op::Valu { count } => {
                // GCN issues a 64-wide wavefront over a 16-lane SIMD in 4
                // cycles per VALU instruction.
                let c = u64::from(count) * 4;
                self.busy_until = now + c;
                (c, u64::from(count) * 64)
            }
            Op::Lds { cycles } => {
                let c = u64::from(cycles);
                self.busy_until = now + c;
                (c, 0)
            }
            Op::Load { pattern } => {
                self.coalesce_into_pending(pattern, false);
                (1, 0)
            }
            Op::Store { pattern } => {
                self.coalesce_into_pending(pattern, true);
                (1, 0)
            }
            Op::WaitCnt { .. } => (1, 0),
        };
        self.advance();
        (occupancy, lane_ops)
    }

    fn coalesce_into_pending(&mut self, pattern: u16, is_store: bool) {
        let op_index = self.ip;
        let (kernel_seq, wg, wf, iter) = (self.kernel_seq, self.wg, self.wf, self.iter);
        let mut scratch = std::mem::take(&mut self.coalesce_scratch);
        let gen = &self.kernel.gen;
        let lanes = (0..64u32).map(|lane| {
            gen.lane_addr(&AccessCtx {
                kernel_seq,
                wg,
                wf,
                lane,
                iter,
                pattern,
            })
        });
        crate::coalesce_into(lanes, &mut scratch);
        for &line in &scratch {
            self.pending.push_back(PendingAccess {
                line,
                is_store,
                op_index,
            });
            if !is_store {
                self.outstanding_loads += 1;
            }
        }
        self.coalesce_scratch = scratch;
    }

    fn advance(&mut self) {
        self.ip += 1;
        if self.ip == self.kernel.program.body.len() {
            self.ip = 0;
            self.iter += 1;
            if self.iter == self.kernel.program.iters {
                self.done = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{AddrGen, KernelProgram};
    use miopt_engine::Addr;

    fn kernel(body: Vec<Op>, iters: u32) -> Arc<KernelDesc> {
        let gen: Arc<dyn AddrGen> = Arc::new(|ctx: &AccessCtx| {
            Some(Addr(u64::from(ctx.iter) * 256 + u64::from(ctx.lane) * 4))
        });
        Arc::new(KernelDesc {
            name: "test".to_string(),
            template_id: 1,
            wgs: 1,
            wfs_per_wg: 1,
            program: KernelProgram::new(body, iters),
            gen,
        })
    }

    #[test]
    fn valu_occupies_pipe_and_counts_ops() {
        let mut wf = Wavefront::new(kernel(vec![Op::Valu { count: 4 }], 1), 0, 0, 0);
        assert_eq!(wf.state(Cycle(0)), WfState::Ready);
        let (occ, ops) = wf.issue(Cycle(0));
        assert_eq!(occ, 16, "4 SIMD cycles per 64-wide VALU instruction");
        assert_eq!(ops, 256);
        assert!(wf.is_done());
    }

    #[test]
    fn load_coalesces_and_tracks_outstanding() {
        let mut wf = Wavefront::new(
            kernel(vec![Op::Load { pattern: 0 }, Op::WaitCnt { max: 0 }], 1),
            0,
            0,
            0,
        );
        wf.issue(Cycle(0));
        assert_eq!(wf.pending.len(), 4); // 64 lanes x 4 B = 4 lines
        assert_eq!(wf.outstanding_loads(), 4);
        // Waiting: pending requests must issue first.
        assert_eq!(wf.state(Cycle(1)), WfState::Waiting);
        wf.pending.clear();
        // Still waiting on the waitcnt until responses arrive.
        assert_eq!(wf.state(Cycle(1)), WfState::Waiting);
        for _ in 0..4 {
            wf.on_load_response();
        }
        assert_eq!(wf.state(Cycle(1)), WfState::Ready);
        wf.issue(Cycle(1)); // the waitcnt retires
        assert!(wf.is_done());
    }

    #[test]
    fn iterations_advance_addresses() {
        let mut wf = Wavefront::new(kernel(vec![Op::Load { pattern: 0 }], 2), 0, 0, 0);
        wf.issue(Cycle(0));
        let first: Vec<_> = wf.pending.drain(..).map(|p| p.line).collect();
        assert!(!wf.is_done());
        wf.issue(Cycle(1));
        let second: Vec<_> = wf.pending.drain(..).map(|p| p.line).collect();
        assert_ne!(first, second, "iter feeds the address generator");
        assert!(wf.is_done());
    }

    #[test]
    fn multicycle_op_delays_next_issue() {
        let mut wf = Wavefront::new(
            kernel(vec![Op::Valu { count: 10 }, Op::Valu { count: 1 }], 1),
            0,
            0,
            0,
        );
        wf.issue(Cycle(0));
        assert_eq!(wf.state(Cycle(20)), WfState::Waiting);
        assert_eq!(wf.state(Cycle(40)), WfState::Ready);
    }

    #[test]
    fn waitcnt_allows_partial_outstanding() {
        let mut wf = Wavefront::new(
            kernel(vec![Op::Load { pattern: 0 }, Op::WaitCnt { max: 4 }], 1),
            0,
            0,
            0,
        );
        wf.issue(Cycle(0));
        wf.pending.clear();
        // 4 outstanding <= max 4: ready immediately.
        assert_eq!(wf.state(Cycle(1)), WfState::Ready);
    }

    #[test]
    fn next_wake_tracks_the_blocking_reason() {
        let mut wf = Wavefront::new(
            kernel(
                vec![
                    Op::Valu { count: 10 },
                    Op::Load { pattern: 0 },
                    Op::WaitCnt { max: 0 },
                ],
                1,
            ),
            0,
            0,
            0,
        );
        assert_eq!(wf.next_wake(Cycle(0)), Some(Cycle(0)), "ready to issue");
        wf.issue(Cycle(0)); // VALU occupies the wavefront for 40 cycles.
        assert_eq!(wf.next_wake(Cycle(1)), Some(Cycle(40)));
        wf.issue(Cycle(40)); // Load fills the coalescing buffer.
        assert_eq!(
            wf.next_wake(Cycle(41)),
            None,
            "pending issue is the memory pipe's event, not a timer"
        );
        wf.pending.clear();
        assert_eq!(
            wf.next_wake(Cycle(41)),
            None,
            "blocked waitcnt wakes on a response, not a cycle"
        );
        for _ in 0..4 {
            wf.on_load_response();
        }
        assert_eq!(wf.next_wake(Cycle(41)), Some(Cycle(41)));
        wf.issue(Cycle(41)); // The waitcnt retires the program.
        assert_eq!(wf.next_wake(Cycle(42)), None, "done wavefronts sleep");
    }

    #[test]
    fn stores_do_not_count_outstanding_loads() {
        let mut wf = Wavefront::new(kernel(vec![Op::Store { pattern: 0 }], 1), 0, 0, 0);
        wf.issue(Cycle(0));
        assert_eq!(wf.outstanding_loads(), 0);
        assert_eq!(wf.pending.len(), 4);
        assert!(wf.pending.iter().all(|p| p.is_store));
    }
}
