use miopt_engine::{Addr, Pc};
use std::fmt;
use std::sync::Arc;

/// One instruction of a wavefront program.
///
/// Programs are deliberately small: they model the *shape* of a kernel's
/// inner loop (arithmetic density, memory instructions, synchronization),
/// not its semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `count` back-to-back vector ALU instructions; occupies the SIMD
    /// issue pipe for `count` cycles and contributes `64 * count` vector
    /// operations to the GVOPS metric.
    Valu {
        /// Number of consecutive VALU instructions.
        count: u32,
    },
    /// A vector load; lane addresses come from the kernel's [`AddrGen`]
    /// with this pattern slot.
    Load {
        /// Pattern slot passed to the address generator.
        pattern: u16,
    },
    /// A vector store (same addressing as [`Op::Load`]).
    Store {
        /// Pattern slot passed to the address generator.
        pattern: u16,
    },
    /// LDS (scratchpad) traffic; occupies the issue pipe like `Valu` but
    /// contributes no vector ops or memory requests.
    Lds {
        /// Occupancy in cycles.
        cycles: u32,
    },
    /// Block until outstanding loads of this wavefront are `<= max`
    /// (the GCN `s_waitcnt vmcnt(max)` idiom).
    WaitCnt {
        /// Maximum outstanding loads allowed to proceed.
        max: u8,
    },
}

/// A wavefront program: a loop body executed `iters` times.
#[derive(Debug, Clone)]
pub struct KernelProgram {
    /// The loop body.
    pub body: Vec<Op>,
    /// Iterations of the body per wavefront.
    pub iters: u32,
}

impl KernelProgram {
    /// Builds a program.
    ///
    /// # Panics
    ///
    /// Panics if the body is empty or `iters` is zero.
    #[must_use]
    pub fn new(body: Vec<Op>, iters: u32) -> KernelProgram {
        assert!(!body.is_empty(), "program body must be nonempty");
        assert!(iters > 0, "program must iterate at least once");
        KernelProgram { body, iters }
    }

    /// Total VALU lane-operations one wavefront will execute.
    #[must_use]
    pub fn valu_lane_ops(&self) -> u64 {
        let per_iter: u64 = self
            .body
            .iter()
            .map(|op| match op {
                Op::Valu { count } => u64::from(*count) * 64,
                _ => 0,
            })
            .sum();
        per_iter * u64::from(self.iters)
    }
}

/// Everything an address generator may condition on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCtx {
    /// Kernel launch sequence number within the workload (distinguishes
    /// e.g. RNN timesteps).
    pub kernel_seq: u32,
    /// Work-group id.
    pub wg: u32,
    /// Wavefront index within the work-group.
    pub wf: u32,
    /// Lane (work-item within the wavefront), `0..64`.
    pub lane: u32,
    /// Loop iteration of the wavefront program.
    pub iter: u32,
    /// Pattern slot of the memory instruction.
    pub pattern: u16,
}

/// Generates per-lane byte addresses for a kernel's memory instructions.
///
/// Implementations are pure functions of the context, which keeps the
/// simulation deterministic and wavefronts independent.
pub trait AddrGen: Send + Sync {
    /// The address lane `ctx.lane` accesses, or `None` if the lane is
    /// inactive for this instruction.
    fn lane_addr(&self, ctx: &AccessCtx) -> Option<Addr>;
}

impl<F> AddrGen for F
where
    F: Fn(&AccessCtx) -> Option<Addr> + Send + Sync,
{
    fn lane_addr(&self, ctx: &AccessCtx) -> Option<Addr> {
        self(ctx)
    }
}

/// A kernel to dispatch: grid shape, program, and address generator.
#[derive(Clone)]
pub struct KernelDesc {
    /// Human-readable kernel name.
    pub name: String,
    /// Stable id of the *static* kernel (same across repeated launches);
    /// memory-instruction PCs are derived from it, so the PC predictor
    /// sees one PC per static instruction as on real hardware.
    pub template_id: u16,
    /// Work-groups in the grid.
    pub wgs: u32,
    /// Wavefronts per work-group.
    pub wfs_per_wg: u32,
    /// The per-wavefront program.
    pub program: KernelProgram,
    /// Lane address generator.
    pub gen: Arc<dyn AddrGen>,
}

impl fmt::Debug for KernelDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelDesc")
            .field("name", &self.name)
            .field("template_id", &self.template_id)
            .field("wgs", &self.wgs)
            .field("wfs_per_wg", &self.wfs_per_wg)
            .field("program", &self.program)
            .finish_non_exhaustive()
    }
}

impl KernelDesc {
    /// Total wavefronts this kernel dispatches.
    #[must_use]
    pub fn total_wavefronts(&self) -> u64 {
        u64::from(self.wgs) * u64::from(self.wfs_per_wg)
    }

    /// The PC of the memory instruction at `op_index` in the body.
    ///
    /// Stable across launches of the same template so reuse predictors can
    /// learn per static instruction.
    #[must_use]
    pub fn pc_of(&self, op_index: usize) -> Pc {
        Pc((u32::from(self.template_id) << 8) | (op_index as u32 & 0xFF))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_gen() -> Arc<dyn AddrGen> {
        Arc::new(|ctx: &AccessCtx| Some(Addr(u64::from(ctx.lane) * 4)))
    }

    #[test]
    fn valu_lane_ops_counts_lanes_times_iters() {
        let p = KernelProgram::new(
            vec![
                Op::Valu { count: 3 },
                Op::Load { pattern: 0 },
                Op::Valu { count: 1 },
            ],
            5,
        );
        assert_eq!(p.valu_lane_ops(), (3 + 1) * 64 * 5);
    }

    #[test]
    fn pc_is_stable_and_distinct_per_op() {
        let k = KernelDesc {
            name: "k".to_string(),
            template_id: 7,
            wgs: 1,
            wfs_per_wg: 1,
            program: KernelProgram::new(vec![Op::Load { pattern: 0 }], 1),
            gen: stream_gen(),
        };
        assert_eq!(k.pc_of(0), k.pc_of(0));
        assert_ne!(k.pc_of(0), k.pc_of(1));
        let k2 = KernelDesc {
            template_id: 8,
            ..k.clone()
        };
        assert_ne!(k.pc_of(0), k2.pc_of(0));
    }

    #[test]
    fn closures_are_addr_gens() {
        let g = stream_gen();
        let ctx = AccessCtx {
            kernel_seq: 0,
            wg: 0,
            wf: 0,
            lane: 3,
            iter: 0,
            pattern: 0,
        };
        assert_eq!(g.lane_addr(&ctx), Some(Addr(12)));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_body_panics() {
        let _ = KernelProgram::new(vec![], 1);
    }

    #[test]
    fn total_wavefronts_multiplies_grid() {
        let k = KernelDesc {
            name: "k".to_string(),
            template_id: 0,
            wgs: 10,
            wfs_per_wg: 4,
            program: KernelProgram::new(vec![Op::Valu { count: 1 }], 1),
            gen: stream_gen(),
        };
        assert_eq!(k.total_wavefronts(), 40);
    }
}
