//! Regenerates every table and figure of the paper's evaluation.
//!
//! This binary is a thin wrapper over the `miopt-harness` CLI — the
//! sweeps run through the parallel job pool with result caching and a
//! provenance report under `results/runs/`. It exists so the historical
//! entry point keeps working:
//!
//! ```text
//! cargo run -p miopt-bench --release --bin figures -- [--scale paper|quick]
//!     [--only <workload>[,<workload>...]] [--csv <dir>]
//!     [--table1] [--table2] [--fig4] ... [--fig13] [--all]
//!     [--jobs N] [--serial] [--no-cache] [--compare] ...
//! ```
//!
//! See `miopt_harness::cli` for the full flag reference.

fn main() {
    let args = miopt_harness::cli::parse_args(std::env::args().skip(1));
    std::process::exit(miopt_harness::cli::run(&args));
}
