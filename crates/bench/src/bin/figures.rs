//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p miopt-bench --release --bin figures -- [--scale paper|quick]
//!     [--only <workload>[,<workload>...]] [--csv <dir>]
//!     [--table1] [--table2] [--fig4] ... [--fig13] [--all]
//! ```
//!
//! With no figure selector, everything is regenerated (`--all`).

use miopt::runner::{run_ladder_with_statics, run_static_sweep, LadderResult, RunResult};
use miopt::{SystemConfig};
use miopt_bench::{fig10, fig11, fig12, fig13, fig4, fig5, fig6, fig7, fig8, fig9, FigureData};
use miopt_workloads::{suite, SuiteConfig, Workload};
use std::collections::BTreeSet;
use std::time::Instant;

struct Args {
    scale: SuiteConfig,
    only: Option<BTreeSet<String>>,
    csv_dir: Option<String>,
    selected: BTreeSet<String>,
}

fn parse_args() -> Args {
    let mut scale = SuiteConfig::paper();
    let mut only = None;
    let mut csv_dir = None;
    let mut selected = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                scale = match v.as_str() {
                    "paper" => SuiteConfig::paper(),
                    "quick" => SuiteConfig::quick(),
                    other => panic!("unknown scale {other:?} (use paper|quick)"),
                };
            }
            "--only" => {
                let v = args.next().expect("--only needs a value");
                only = Some(v.split(',').map(|s| s.to_lowercase()).collect());
            }
            "--csv" => csv_dir = Some(args.next().expect("--csv needs a directory")),
            "--all" => {
                selected.extend(
                    ["table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"]
                        .map(String::from),
                );
            }
            s if s.starts_with("--") => {
                selected.insert(s.trim_start_matches("--").to_string());
            }
            other => panic!("unexpected argument {other:?}"),
        }
    }
    if selected.is_empty() {
        selected.extend(
            ["table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"]
                .map(String::from),
        );
    }
    Args {
        scale,
        only,
        csv_dir,
        selected,
    }
}

fn print_table1(cfg: &SystemConfig) {
    println!("== Table 1: Key simulated system parameters ==");
    println!("GPU clock                {:.0} MHz", cfg.gpu_clock_hz / 1e6);
    println!("# of CUs                 {}", cfg.n_cus);
    println!("# SIMD units per CU      {}", cfg.cu.simds);
    println!("Max wavefronts per SIMD  {}", cfg.cu.wf_slots_per_simd);
    println!(
        "GPU L1 D-cache per CU    {} KB, 64B line, {}-way write-through",
        cfg.l1.bytes() / 1024,
        cfg.l1.ways
    );
    println!(
        "GPU L2 cache             {} MB ({} slices), 64B line, {}-way",
        cfg.l2.bytes() * cfg.l2_slices as u64 / (1024 * 1024),
        cfg.l2_slices,
        cfg.l2.ways
    );
    println!(
        "Main memory              HBM2, {} channels, {} banks/channel, ~{:.0} GB/s",
        cfg.dram.channels,
        cfg.dram.banks,
        f64::from(cfg.dram.channels) * 64.0 * cfg.gpu_clock_hz / cfg.dram.t_burst as f64 / 1e9
    );
    println!();
}

fn print_table2(workloads: &[Workload]) {
    println!("== Table 2: Studied MI workloads ==");
    println!(
        "{:10} {:>14} {:>14} {:>16}",
        "workload", "unique kernels", "total kernels", "footprint"
    );
    for w in workloads {
        let fp = w.footprint_bytes();
        let fp_str = if fp >= 1024 * 1024 {
            format!("{:.1} MB", fp as f64 / (1024.0 * 1024.0))
        } else {
            format!("{:.1} KB", fp as f64 / 1024.0)
        };
        println!(
            "{:10} {:>14} {:>14} {:>16}",
            w.name,
            w.unique_kernels(),
            w.total_kernels(),
            fp_str
        );
    }
    println!();
}

fn emit(fig: &FigureData, csv_dir: Option<&str>, file: &str) {
    println!("{}", fig.to_table());
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{file}.csv");
        std::fs::write(&path, fig.to_csv()).expect("write csv");
        println!("(wrote {path})");
    }
}

fn main() {
    let args = parse_args();
    let cfg = SystemConfig::paper_table1();
    let mut workloads = suite(&args.scale);
    if let Some(only) = &args.only {
        workloads.retain(|w| only.contains(&w.name.to_lowercase()));
        assert!(!workloads.is_empty(), "--only matched no workloads");
    }
    let sel = |s: &str| args.selected.contains(s);

    if sel("table1") {
        print_table1(&cfg);
    }
    if sel("table2") {
        print_table2(&workloads);
    }

    let need_sweep = ["fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"]
        .iter()
        .any(|f| sel(f));
    if !need_sweep {
        return;
    }

    eprintln!(
        "running static sweep: {} workloads x 3 policies ...",
        workloads.len()
    );
    let t0 = Instant::now();
    let sweep = run_static_sweep(&cfg, &workloads);
    eprintln!("static sweep done in {:.1}s", t0.elapsed().as_secs_f64());

    let csv = args.csv_dir.as_deref();
    if sel("fig4") {
        emit(&fig4(&sweep), csv, "fig4_gvops");
    }
    if sel("fig5") {
        emit(&fig5(&sweep), csv, "fig5_gmrs");
    }
    if sel("fig6") {
        emit(&fig6(&sweep), csv, "fig6_exec_time");
    }
    if sel("fig7") {
        emit(&fig7(&sweep), csv, "fig7_dram_accesses");
    }
    if sel("fig8") {
        emit(&fig8(&sweep), csv, "fig8_cache_stalls");
    }
    if sel("fig9") {
        emit(&fig9(&sweep), csv, "fig9_row_hits");
    }

    let need_ladder = ["fig10", "fig11", "fig12", "fig13"].iter().any(|f| sel(f));
    if !need_ladder {
        return;
    }
    eprintln!(
        "running optimization ladder: {} workloads x 3 configs ...",
        workloads.len()
    );
    let t1 = Instant::now();
    let ladders: Vec<LadderResult> = workloads
        .iter()
        .zip(sweep)
        .map(|(w, statics): (&Workload, Vec<RunResult>)| run_ladder_with_statics(&cfg, w, statics))
        .collect();
    eprintln!("ladder done in {:.1}s", t1.elapsed().as_secs_f64());

    if sel("fig10") {
        emit(&fig10(&ladders), csv, "fig10_opt_exec_time");
    }
    if sel("fig11") {
        emit(&fig11(&ladders), csv, "fig11_opt_dram");
    }
    if sel("fig12") {
        emit(&fig12(&ladders), csv, "fig12_opt_stalls");
    }
    if sel("fig13") {
        emit(&fig13(&ladders), csv, "fig13_opt_rows");
    }
}
