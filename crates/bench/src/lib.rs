//! Benchmark-harness compatibility layer.
//!
//! The figure-extraction pipeline (`FigureData`, `fig4`–`fig13`) moved
//! into [`miopt_harness::figures`] so the `miopt-harness` CLI and this
//! crate's `figures` binary share one implementation running through the
//! parallel sweep orchestrator. This crate re-exports it so existing
//! `miopt_bench::fig6(...)` callers keep compiling; new code should
//! depend on `miopt-harness` directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use miopt_harness::figures::{
    fig10, fig11, fig12, fig13, fig4, fig5, fig6, fig7, fig8, fig9, FigureData,
};

/// Minimal measurement loop for the `harness = false` benches.
///
/// The benches used to run under Criterion; that dependency is gone so
/// the workspace builds with no registry access (see the workspace
/// `Cargo.toml`). This keeps the same shape — named measurements, a
/// few samples, min/median/max — with `std` only.
pub mod timing {
    use std::hint::black_box;
    use std::time::Instant;

    /// Times `f` over `samples` iterations (after one warmup) and prints
    /// `name: median (min .. max)`. Returns the median seconds.
    pub fn measure<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> f64 {
        assert!(samples > 0, "need at least one sample");
        black_box(f());
        let mut times: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        println!(
            "{name:48} {:>9.2} ms  ({:.2} .. {:.2} ms, n={samples})",
            median * 1e3,
            times[0] * 1e3,
            times[times.len() - 1] * 1e3,
        );
        median
    }
}
