//! Sweep-orchestration scaling: serial vs parallel wall time for the
//! figures grid, the headline measurement of the `miopt-harness` worker
//! pool.
//!
//! The sweep is embarrassingly parallel, so on an N-core machine the
//! pool should approach an N-fold speedup (on a single-core machine the
//! ratio is ~1.0 and this bench only verifies the pool adds no
//! meaningful overhead). Both paths are also checked byte-identical,
//! which is the determinism property everything else rests on.

use miopt::runner::SweepSpec;
use miopt::SystemConfig;
use miopt_bench::timing::measure;
use miopt_harness::pool::PoolOptions;
use miopt_harness::sweep::{run_sweep, SweepOptions};
use miopt_workloads::{by_name, SuiteConfig};
use std::sync::Arc;

fn main() {
    let s = SuiteConfig::quick();
    let workloads = ["CM", "BwBN", "FwGRU"]
        .iter()
        .map(|n| by_name(&s, n).expect("suite workload"))
        .collect();
    let spec = Arc::new(SweepSpec::figures(SystemConfig::small_test(), workloads));
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "sweep: {} jobs ({} workloads x {} policies), {cores} core(s) available",
        spec.job_count(),
        spec.workloads.len(),
        spec.policies.len(),
    );

    let opts_with = |workers: usize| SweepOptions {
        pool: PoolOptions {
            workers,
            ..PoolOptions::default()
        },
        cache: None,
    };

    let serial = measure("sweep_serial_1_worker", 3, || {
        run_sweep(&spec, "bench-serial", &opts_with(1))
    });
    let parallel = measure(&format!("sweep_parallel_{cores}_workers"), 3, || {
        run_sweep(&spec, "bench-parallel", &opts_with(0))
    });
    println!("speedup: {:.2}x", serial / parallel.max(1e-12));

    // Determinism: both executors must produce bit-identical metrics.
    let a = run_sweep(&spec, "a", &opts_with(1));
    let b = run_sweep(&spec, "b", &opts_with(0));
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.job, y.job);
        assert_eq!(
            x.result.as_ref().unwrap().metrics,
            y.result.as_ref().unwrap().metrics,
            "serial and parallel sweeps must agree bit-for-bit"
        );
    }
    println!("serial and parallel outcomes are bit-identical");
}
