//! Figure-regeneration benches, one measurement per paper table/figure
//! group.
//!
//! Each measurement regenerates the figure's data for a representative
//! workload subset at the quick suite scale (so a full pass stays
//! minutes, not hours); the full-scale regeneration lives in the
//! `miopt-harness` binary. What is measured is the wall time of the
//! simulation itself — the throughput of the simulator on each
//! experiment — while the body asserts the figure's qualitative property
//! as a side effect.

use miopt::runner::{run_ladder_with_statics, run_one, run_static_sweep, RunResult};
use miopt::{CachePolicy, PolicyConfig, SystemConfig};
use miopt_bench::timing::measure;
use miopt_bench::{fig10, fig11, fig12, fig13, fig4, fig5, fig6, fig7, fig8, fig9};
use miopt_workloads::{by_name, SuiteConfig, Workload};

fn cfg() -> SystemConfig {
    SystemConfig::small_test()
}

fn subset() -> Vec<Workload> {
    // One representative per category: insensitive (CM), reuse sensitive
    // (BwBN), many-kernel (FwGRU).
    let s = SuiteConfig::quick();
    ["CM", "BwBN", "FwGRU"]
        .iter()
        .map(|n| by_name(&s, n).expect("suite workload"))
        .collect()
}

fn main() {
    measure("table2_suite_construction", 10, || {
        let suite = miopt_workloads::suite(&SuiteConfig::quick());
        assert_eq!(suite.len(), 17);
        suite
    });

    let w = by_name(&SuiteConfig::quick(), "BwBN").unwrap();
    measure("fig04_gvops_cacher_run", 10, || {
        let r = run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::CacheR)).expect("run finishes");
        assert!(r.metrics.gvops() > 0.0);
        r
    });
    measure("fig05_gmrs_cacher_run", 10, || {
        let r = run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::CacheR)).expect("run finishes");
        assert!(r.metrics.gmrs() > 0.0);
        r
    });

    let workloads = subset();
    measure("fig06_09_static_sweep_and_extract", 10, || {
        let sweep = run_static_sweep(&cfg(), &workloads).expect("sweep finishes");
        let f6 = fig6(&sweep);
        let f7 = fig7(&sweep);
        let f8 = fig8(&sweep);
        let f9 = fig9(&sweep);
        let f4 = fig4(&sweep);
        let f5 = fig5(&sweep);
        // Fig 6 invariant: Uncached column is 1.0.
        assert!(f6.series[0].1.iter().all(|v| (*v - 1.0).abs() < 1e-9));
        // Fig 7 invariant: BwBN's CacheR cuts DRAM traffic.
        let bwbn = f7.workloads.iter().position(|w| w == "BwBN").unwrap();
        assert!(f7.series[1].1[bwbn] < 1.0);
        // Fig 9 invariant: ratios are probabilities.
        assert!(f9
            .series
            .iter()
            .all(|(_, v)| v.iter().all(|x| (0.0..=1.0).contains(x))));
        (f4, f5, f6, f7, f8, f9)
    });

    measure("fig10_13_ladder_and_extract", 10, || {
        let statics: Vec<RunResult> = CachePolicy::ALL
            .iter()
            .map(|&p| run_one(&cfg(), &w, PolicyConfig::of(p)).expect("run finishes"))
            .collect();
        let ladder = vec![run_ladder_with_statics(&cfg(), &w, statics).expect("ladder finishes")];
        let f10 = fig10(&ladder);
        let f11 = fig11(&ladder);
        let f12 = fig12(&ladder);
        let f13 = fig13(&ladder);
        // Fig 10 invariant: StaticBest is exactly 1.0.
        assert!((f10.series[0].1[0] - 1.0).abs() < 1e-12);
        (f10, f11, f12, f13)
    });
}
