//! Criterion benches, one group per paper table/figure.
//!
//! Each bench regenerates the figure's data for a representative workload
//! subset at the quick suite scale (so `cargo bench` stays minutes, not
//! hours); the full-scale regeneration lives in the `figures` binary
//! (`cargo run -p miopt-bench --release --bin figures`). What Criterion
//! measures here is the wall time of the simulation itself — i.e. the
//! throughput of the simulator on each experiment — while the bench body
//! asserts the figure's qualitative property as a side effect.

use criterion::{criterion_group, criterion_main, Criterion};
use miopt::runner::{run_ladder_with_statics, run_one, run_static_sweep, RunResult};
use miopt::{CachePolicy, PolicyConfig, SystemConfig};
use miopt_bench::{fig10, fig11, fig12, fig13, fig4, fig5, fig6, fig7, fig8, fig9};
use miopt_workloads::{by_name, SuiteConfig, Workload};
use std::hint::black_box;

fn cfg() -> SystemConfig {
    SystemConfig::small_test()
}

fn subset() -> Vec<Workload> {
    // One representative per category: insensitive (CM), reuse sensitive
    // (BwBN), many-kernel (FwGRU).
    let s = SuiteConfig::quick();
    ["CM", "BwBN", "FwGRU"]
        .iter()
        .map(|n| by_name(&s, n).expect("suite workload"))
        .collect()
}

fn sweep_of(workloads: &[Workload]) -> Vec<Vec<RunResult>> {
    run_static_sweep(&cfg(), workloads)
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_suite_construction", |b| {
        b.iter(|| {
            let suite = miopt_workloads::suite(black_box(&SuiteConfig::quick()));
            assert_eq!(suite.len(), 17);
            suite
        });
    });
}

fn bench_fig4_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_05_bandwidth");
    g.sample_size(10);
    let w = by_name(&SuiteConfig::quick(), "BwBN").unwrap();
    g.bench_function("fig04_gvops_cacher_run", |b| {
        b.iter(|| {
            let r = run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::CacheR));
            assert!(r.metrics.gvops() > 0.0);
            r
        });
    });
    g.bench_function("fig05_gmrs_cacher_run", |b| {
        b.iter(|| {
            let r = run_one(&cfg(), &w, PolicyConfig::of(CachePolicy::CacheR));
            assert!(r.metrics.gmrs() > 0.0);
            r
        });
    });
    g.finish();
}

fn bench_fig6_to_9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_09_static_sweep");
    g.sample_size(10);
    let workloads = subset();
    g.bench_function("static_sweep_and_extract", |b| {
        b.iter(|| {
            let sweep = sweep_of(black_box(&workloads));
            let f6 = fig6(&sweep);
            let f7 = fig7(&sweep);
            let f8 = fig8(&sweep);
            let f9 = fig9(&sweep);
            let f4 = fig4(&sweep);
            let f5 = fig5(&sweep);
            // Fig 6 invariant: Uncached column is 1.0.
            assert!(f6.series[0].1.iter().all(|v| (*v - 1.0).abs() < 1e-9));
            // Fig 7 invariant: BwBN's CacheR cuts DRAM traffic.
            let bwbn = f7.workloads.iter().position(|w| w == "BwBN").unwrap();
            assert!(f7.series[1].1[bwbn] < 1.0);
            // Fig 9 invariant: ratios are probabilities.
            assert!(f9.series.iter().all(|(_, v)| v.iter().all(|x| (0.0..=1.0).contains(x))));
            (f4, f5, f6, f7, f8, f9)
        });
    });
    g.finish();
}

fn bench_fig10_to_13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_13_ladder");
    g.sample_size(10);
    let w = by_name(&SuiteConfig::quick(), "BwBN").unwrap();
    g.bench_function("ladder_and_extract", |b| {
        b.iter(|| {
            let statics: Vec<RunResult> = CachePolicy::ALL
                .iter()
                .map(|&p| run_one(&cfg(), &w, PolicyConfig::of(p)))
                .collect();
            let ladder = vec![run_ladder_with_statics(&cfg(), &w, statics)];
            let f10 = fig10(&ladder);
            let f11 = fig11(&ladder);
            let f12 = fig12(&ladder);
            let f13 = fig13(&ladder);
            // Fig 10 invariant: StaticBest is exactly 1.0.
            assert!((f10.series[0].1[0] - 1.0).abs() < 1e-12);
            (f10, f11, f12, f13)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table2,
    bench_fig4_fig5,
    bench_fig6_to_9,
    bench_fig10_to_13
);
criterion_main!(benches);
