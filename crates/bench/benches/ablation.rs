//! Ablation benches for the design choices DESIGN.md calls out: MSHR
//! depth, dirty-block-index capacity, and L2 flush width. Each
//! measurement runs the affected configuration and reports simulator
//! wall time; the simulated cycle counts are asserted non-degenerate as
//! a side effect.

use miopt::runner::run_one;
use miopt::{CachePolicy, OptimizationSet, PolicyConfig, SystemConfig, SystemConfigBuilder};
use miopt_bench::timing::measure;
use miopt_workloads::{by_name, SuiteConfig};

fn main() {
    let bwbn = by_name(&SuiteConfig::quick(), "BwBN").unwrap();
    for mshr in [4usize, 8, 16] {
        let cfg = SystemConfigBuilder::from_base(SystemConfig::small_test())
            .map_l1(|l1| l1.mshr_entries = mshr)
            .build()
            .expect("ablation config is valid");
        measure(&format!("ablation_l1_mshr_depth/{mshr}"), 10, || {
            let r =
                run_one(&cfg, &bwbn, PolicyConfig::of(CachePolicy::CacheR)).expect("run finishes");
            assert!(r.metrics.cycles > 0);
            r.metrics.cycles
        });
    }

    let bwpool = by_name(&SuiteConfig::quick(), "BwPool").unwrap();
    for rows in [4usize, 16, 64] {
        let cfg = SystemConfigBuilder::from_base(SystemConfig::small_test())
            .map_l2(|l2| l2.dbi_rows = rows)
            .build()
            .expect("ablation config is valid");
        let policy = PolicyConfig::new(CachePolicy::CacheRW, OptimizationSet::ab_cr())
            .expect("CacheRW admits AB+CR");
        measure(&format!("ablation_dbi_rows/{rows}"), 10, || {
            let r = run_one(&cfg, &bwpool, policy).expect("run finishes");
            assert!(r.metrics.cycles > 0);
            (r.metrics.cycles, r.metrics.row_hit_ratio())
        });
    }

    for width in [1u32, 2, 8] {
        let cfg = SystemConfigBuilder::from_base(SystemConfig::small_test())
            .map_l2(|l2| l2.flush_width = width)
            .build()
            .expect("ablation config is valid");
        measure(&format!("ablation_flush_width/{width}"), 10, || {
            let r =
                run_one(&cfg, &bwbn, PolicyConfig::of(CachePolicy::CacheRW)).expect("run finishes");
            r.metrics.cycles
        });
    }
}
