//! Ablation benches for the design choices DESIGN.md calls out: MSHR
//! depth, dirty-block-index capacity, and PC-predictor threshold. Each
//! bench runs the affected configuration and reports the simulated cycle
//! count through Criterion's measurement of simulator wall time (the
//! simulated outcomes are printed once per configuration on the first
//! iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use miopt::runner::run_one;
use miopt::{CachePolicy, OptimizationSet, PolicyConfig, SystemConfig};
use miopt_workloads::{by_name, SuiteConfig};

fn bench_mshr_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_l1_mshr_depth");
    g.sample_size(10);
    let w = by_name(&SuiteConfig::quick(), "BwBN").unwrap();
    for mshr in [4usize, 8, 16] {
        let mut cfg = SystemConfig::small_test();
        cfg.l1.mshr_entries = mshr;
        g.bench_with_input(BenchmarkId::from_parameter(mshr), &cfg, |b, cfg| {
            b.iter(|| {
                let r = run_one(cfg, &w, PolicyConfig::of(CachePolicy::CacheR));
                assert!(r.metrics.cycles > 0);
                r.metrics.cycles
            });
        });
    }
    g.finish();
}

fn bench_dbi_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dbi_rows");
    g.sample_size(10);
    let w = by_name(&SuiteConfig::quick(), "BwPool").unwrap();
    for rows in [4usize, 16, 64] {
        let mut cfg = SystemConfig::small_test();
        cfg.l2.dbi_rows = rows;
        let policy = PolicyConfig {
            policy: CachePolicy::CacheRW,
            opts: OptimizationSet::ab_cr(),
        };
        g.bench_with_input(BenchmarkId::from_parameter(rows), &cfg, |b, cfg| {
            b.iter(|| {
                let r = run_one(cfg, &w, policy);
                assert!(r.metrics.cycles > 0);
                (r.metrics.cycles, r.metrics.row_hit_ratio())
            });
        });
    }
    g.finish();
}

fn bench_flush_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_flush_width");
    g.sample_size(10);
    let w = by_name(&SuiteConfig::quick(), "BwBN").unwrap();
    for width in [1u32, 2, 8] {
        let mut cfg = SystemConfig::small_test();
        cfg.l2.flush_width = width;
        g.bench_with_input(BenchmarkId::from_parameter(width), &cfg, |b, cfg| {
            b.iter(|| {
                let r = run_one(cfg, &w, PolicyConfig::of(CachePolicy::CacheRW));
                r.metrics.cycles
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mshr_depth, bench_dbi_capacity, bench_flush_width);
criterion_main!(benches);
