//! Simulator throughput: simulated cycles per wall-second with the
//! discrete-event core (the default) vs `--no-skip` per-cycle stepping.
//!
//! Latency-bound runs — few wavefronts covering long DRAM round trips,
//! the `Uncached` RNN configurations above all — spend most simulated
//! cycles with every component provably idle. The per-cycle oracle pays
//! ~12 stage polls on every one of those cycles; the event core never
//! visits them at all, so its cost scales with *events dispatched*
//! rather than *cycles simulated*. Bandwidth-bound runs keep the
//! hierarchy busy nearly every cycle, so their ratio mostly measures
//! dispatch overhead against straight-line polling.
//!
//! Besides wall time, each case reports the event core's work ratio:
//! events dispatched vs cycles simulated (and the fraction of cycles
//! that needed no event at all), which is the structural explanation
//! for the speedup.
//!
//! Two machines are measured: the paper's Table 1 APU, and the same
//! memory system seen from a 4x-clocked GPU (`latency4x`) — every
//! interconnect/DRAM hop takes 4x as many core cycles, the modern-GPU
//! regime where an uncached DRAM round trip costs several hundred
//! cycles. The more latency-bound the machine, the larger the idle
//! stretches and the bigger the win from never stepping through them.
//!
//! Pass a path argument to also write the measurements as JSON; the
//! event-core trajectory file `BENCH_eventcore.json` is written next to
//! it:
//!
//! ```text
//! cargo bench -p miopt-bench --bench sim_throughput -- results/BENCH_skipahead.json
//! ```

use miopt::runner::{run_one_with, RunOptions};
use miopt::{ApuSystem, CachePolicy, EventProfile, PolicyConfig, SystemConfig};
use miopt_bench::timing::measure;
use miopt_workloads::{by_name, SuiteConfig};
use std::alloc::{GlobalAlloc, Layout, System};

/// System allocator wrapper that reports every allocation into
/// `miopt_engine::alloc_track`, so the profiled runs below can attribute
/// heap traffic per event-core actor. One relaxed atomic increment per
/// allocation — irrelevant to the timed runs now that the steady-state
/// hot path allocates nothing.
struct CountingAlloc;

// SAFETY: defers entirely to the system allocator; the wrapper only adds
// a side-effect-free counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        miopt_engine::alloc_track::note_alloc();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        miopt_engine::alloc_track::note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        miopt_engine::alloc_track::note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Entry {
    config: &'static str,
    workload: &'static str,
    policy: String,
    cycles: u64,
    events: u64,
    active_cycles: u64,
    skip_secs: f64,
    no_skip_secs: f64,
    profile: EventProfile,
}

/// Pulls `(config, workload, policy) -> event_secs` pairs out of a
/// previously checked-in `BENCH_eventcore.json`, so the hot-path report
/// can state its speedup against the recorded trajectory. Hand-rolled
/// scan (the workspace has no JSON dependency); tolerant of missing
/// files and unknown schemas — baselines are best-effort.
fn eventcore_baseline(path: &std::path::Path) -> Vec<(String, String, String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let field = |obj: &str, key: &str| -> Option<String> {
        let pat = format!("\"{key}\":");
        let at = obj.find(&pat)? + pat.len();
        let rest = obj[at..].trim_start();
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_string())
    };
    text.split('{')
        .filter(|obj| obj.contains("\"event_secs\""))
        .filter_map(|obj| {
            Some((
                field(obj, "config")?,
                field(obj, "workload")?,
                field(obj, "policy")?,
                field(obj, "event_secs")?.parse::<f64>().ok()?,
            ))
        })
        .collect()
}

/// The Table 1 memory system as seen from a GPU clocked 4x higher:
/// identical topology and bandwidth, every latency in core cycles
/// scaled by 4.
fn latency4x() -> SystemConfig {
    let mut cfg = SystemConfig::paper_table1();
    cfg.lat_cu_l1 *= 4;
    cfg.lat_l1_resp *= 4;
    cfg.lat_l1_l2 *= 4;
    cfg.lat_l2_resp *= 4;
    cfg.lat_l2_dram *= 4;
    cfg.lat_dram_resp *= 4;
    cfg.validate().expect("scaled config is valid");
    cfg
}

fn main() {
    // Cargo forwards its own `--bench` flag to the binary; the JSON
    // output path is the first non-flag argument.
    let out_path = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    let s = SuiteConfig::quick();
    let paper = SystemConfig::paper_table1();
    let lat4 = latency4x();
    // Latency-bound RNN configs and one bandwidth-bound control, on both
    // machines.
    let cases = [
        ("paper", &paper, "FwGRU", CachePolicy::Uncached),
        ("paper", &paper, "FwLSTM", CachePolicy::Uncached),
        ("paper", &paper, "FwGRU", CachePolicy::CacheRW),
        ("paper", &paper, "BwBN", CachePolicy::CacheRW),
        ("latency4x", &lat4, "FwGRU", CachePolicy::Uncached),
        ("latency4x", &lat4, "FwLSTM", CachePolicy::Uncached),
    ];
    let mut entries = Vec::new();
    for (cfg_name, cfg, name, policy) in cases {
        let w = by_name(&s, name).expect("suite workload");
        let p = PolicyConfig::of(policy);
        let mut cycles = 0u64;
        let label = format!("{cfg_name}/{name}/{p}");
        let skip_secs = measure(&format!("{label} events"), 3, || {
            let r = run_one_with(cfg, &w, p, &RunOptions::default()).expect("run");
            cycles = r.metrics.cycles;
        });
        let per_cycle = RunOptions {
            no_skip: true,
            ..RunOptions::default()
        };
        let no_skip_secs = measure(&format!("{label} no-skip"), 3, || {
            run_one_with(cfg, &w, p, &per_cycle).expect("run");
        });
        // One untimed, profiled run through `ApuSystem` directly for the
        // event core's work counters and the per-actor cost breakdown
        // (`run_one_with` reports only metrics).
        let mut sys = ApuSystem::new((*cfg).clone(), p, &w);
        sys.enable_profiler();
        sys.run_to_completion(per_cycle.max_cycles).expect("run");
        let (events, active_cycles) = sys.event_stats();
        let profile = sys.take_profile().expect("profiler enabled");
        println!(
            "{label}: {cycles} cycles; {:.1}M cyc/s event-driven vs {:.1}M cyc/s per-cycle; \
             speedup {:.2}x",
            cycles as f64 / skip_secs / 1e6,
            cycles as f64 / no_skip_secs / 1e6,
            no_skip_secs / skip_secs.max(1e-12),
        );
        println!(
            "{label}: {events} events over {active_cycles} active cycles \
             ({:.1}% of cycles event-free, {:.3} events/cycle)",
            100.0 * (1.0 - active_cycles as f64 / cycles.max(1) as f64),
            events as f64 / cycles.max(1) as f64,
        );
        println!(
            "{label}: {:.0} ns/event timed; profiled run: {} allocs \
             ({:.4} allocs/event)",
            skip_secs * 1e9 / events.max(1) as f64,
            profile.total_allocs(),
            profile.total_allocs() as f64 / profile.total_events().max(1) as f64,
        );
        for row in profile.actors.iter().filter(|r| r.events > 0) {
            println!(
                "    {:12} {:>10} events  {:>6.0} ns/event  {:>8} allocs",
                row.name,
                row.events,
                row.nanos as f64 / row.events as f64,
                row.allocs,
            );
        }
        entries.push(Entry {
            config: cfg_name,
            workload: name,
            policy: p.label(),
            cycles,
            events,
            active_cycles,
            skip_secs,
            no_skip_secs,
            profile,
        });
    }
    let best = entries
        .iter()
        .map(|e| e.no_skip_secs / e.skip_secs.max(1e-12))
        .fold(0.0f64, f64::max);
    println!("best speedup: {best:.2}x");

    if let Some(path) = out_path {
        // Cargo runs benches from the package directory; resolve the
        // documented `results/...` form against the workspace root.
        let path = {
            let p = std::path::PathBuf::from(&path);
            if p.is_absolute() {
                p
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(p)
            }
        };
        let path = path.to_string_lossy().into_owned();
        // Snapshot the checked-in event-core trajectory before this run
        // overwrites it: the hot-path report states its speedup against
        // the *previous* recording.
        let results_dir = std::path::Path::new(&path)
            .parent()
            .unwrap_or_else(|| std::path::Path::new("."))
            .to_path_buf();
        let baseline = eventcore_baseline(&results_dir.join("BENCH_eventcore.json"));
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let rows: Vec<String> = entries
            .iter()
            .map(|e| {
                format!(
                    "    {{\"config\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \
                     \"cycles\": {}, \"skip_secs\": {:.6}, \"no_skip_secs\": {:.6}, \
                     \"speedup\": {:.3}}}",
                    e.config,
                    e.workload,
                    e.policy,
                    e.cycles,
                    e.skip_secs,
                    e.no_skip_secs,
                    e.no_skip_secs / e.skip_secs.max(1e-12),
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"sim_throughput\",\n  \"schema\": \"miopt-skipahead-v2\",\n  \
             \"unix_time\": {unix_time},\n  \"suite\": \"quick\",\n  \
             \"entries\": [\n{}\n  ]\n}}\n",
            rows.join(",\n"),
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("(wrote {path})");

        // The event-core trajectory file lives next to the skip-ahead
        // one and additionally records the dispatch-work counters that
        // explain each speedup.
        let ev_path = std::path::Path::new(&path)
            .parent()
            .unwrap_or_else(|| std::path::Path::new("."))
            .join("BENCH_eventcore.json");
        let rows: Vec<String> = entries
            .iter()
            .map(|e| {
                format!(
                    "    {{\"config\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \
                     \"cycles\": {}, \"events\": {}, \"active_cycles\": {}, \
                     \"events_per_cycle\": {:.4}, \"event_free_frac\": {:.4}, \
                     \"event_secs\": {:.6}, \"no_skip_secs\": {:.6}, \"speedup\": {:.3}}}",
                    e.config,
                    e.workload,
                    e.policy,
                    e.cycles,
                    e.events,
                    e.active_cycles,
                    e.events as f64 / e.cycles.max(1) as f64,
                    1.0 - e.active_cycles as f64 / e.cycles.max(1) as f64,
                    e.skip_secs,
                    e.no_skip_secs,
                    e.no_skip_secs / e.skip_secs.max(1e-12),
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"sim_throughput\",\n  \"schema\": \"miopt-eventcore-v1\",\n  \
             \"unix_time\": {unix_time},\n  \"suite\": \"quick\",\n  \
             \"entries\": [\n{}\n  ]\n}}\n",
            rows.join(",\n"),
        );
        let ev_display = ev_path.display().to_string();
        std::fs::write(&ev_path, json).expect("write eventcore json");
        println!("(wrote {ev_display})");

        // The hot-path report: per-actor ns/event and allocs/event from
        // the profiled runs, with each case's timed wall clock compared
        // against the previously checked-in event-core trajectory.
        let hot_path = results_dir.join("BENCH_hotpath.json");
        let rows: Vec<String> = entries
            .iter()
            .map(|e| {
                let base = baseline
                    .iter()
                    .find(|(c, w, p, _)| c == e.config && w == e.workload && *p == e.policy)
                    .map(|(_, _, _, secs)| *secs);
                let actor_rows: Vec<String> = e
                    .profile
                    .actors
                    .iter()
                    .filter(|r| r.events > 0)
                    .map(|r| {
                        format!(
                            "        {{\"name\": \"{}\", \"events\": {}, \
                             \"ns_per_event\": {:.1}, \"allocs\": {}}}",
                            r.name,
                            r.events,
                            r.nanos as f64 / r.events as f64,
                            r.allocs,
                        )
                    })
                    .collect();
                format!(
                    "    {{\"config\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \
                     \"cycles\": {}, \"events\": {}, \"event_secs\": {:.6}, \
                     \"ns_per_event\": {:.1}, \"allocs\": {}, \"allocs_per_event\": {:.6}, \
                     \"baseline_event_secs\": {}, \"speedup_vs_eventcore\": {},\n      \
                     \"actors\": [\n{}\n      ]}}",
                    e.config,
                    e.workload,
                    e.policy,
                    e.cycles,
                    e.events,
                    e.skip_secs,
                    e.skip_secs * 1e9 / e.events.max(1) as f64,
                    e.profile.total_allocs(),
                    e.profile.total_allocs() as f64 / e.profile.total_events().max(1) as f64,
                    base.map_or_else(|| "null".to_string(), |b| format!("{b:.6}")),
                    base.map_or_else(
                        || "null".to_string(),
                        |b| format!("{:.3}", b / e.skip_secs.max(1e-12)),
                    ),
                    actor_rows.join(",\n"),
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"sim_throughput\",\n  \"schema\": \"miopt-hotpath-v1\",\n  \
             \"unix_time\": {unix_time},\n  \"suite\": \"quick\",\n  \
             \"counting_allocator\": true,\n  \
             \"entries\": [\n{}\n  ]\n}}\n",
            rows.join(",\n"),
        );
        let hot_display = hot_path.display().to_string();
        std::fs::write(&hot_path, json).expect("write hotpath json");
        println!("(wrote {hot_display})");
    }
}
