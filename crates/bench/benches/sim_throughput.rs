//! Simulator throughput: simulated cycles per wall-second with the
//! discrete-event core (the default) vs `--no-skip` per-cycle stepping.
//!
//! Latency-bound runs — few wavefronts covering long DRAM round trips,
//! the `Uncached` RNN configurations above all — spend most simulated
//! cycles with every component provably idle. The per-cycle oracle pays
//! ~12 stage polls on every one of those cycles; the event core never
//! visits them at all, so its cost scales with *events dispatched*
//! rather than *cycles simulated*. Bandwidth-bound runs keep the
//! hierarchy busy nearly every cycle, so their ratio mostly measures
//! dispatch overhead against straight-line polling.
//!
//! Besides wall time, each case reports the event core's work ratio:
//! events dispatched vs cycles simulated (and the fraction of cycles
//! that needed no event at all), which is the structural explanation
//! for the speedup.
//!
//! Two machines are measured: the paper's Table 1 APU, and the same
//! memory system seen from a 4x-clocked GPU (`latency4x`) — every
//! interconnect/DRAM hop takes 4x as many core cycles, the modern-GPU
//! regime where an uncached DRAM round trip costs several hundred
//! cycles. The more latency-bound the machine, the larger the idle
//! stretches and the bigger the win from never stepping through them.
//!
//! Pass a path argument to also write the measurements as JSON; the
//! event-core trajectory file `BENCH_eventcore.json` is written next to
//! it:
//!
//! ```text
//! cargo bench -p miopt-bench --bench sim_throughput -- results/BENCH_skipahead.json
//! ```

use miopt::runner::{run_one_with, RunOptions};
use miopt::{ApuSystem, CachePolicy, PolicyConfig, SystemConfig};
use miopt_bench::timing::measure;
use miopt_workloads::{by_name, SuiteConfig};

struct Entry {
    config: &'static str,
    workload: &'static str,
    policy: String,
    cycles: u64,
    events: u64,
    active_cycles: u64,
    skip_secs: f64,
    no_skip_secs: f64,
}

/// The Table 1 memory system as seen from a GPU clocked 4x higher:
/// identical topology and bandwidth, every latency in core cycles
/// scaled by 4.
fn latency4x() -> SystemConfig {
    let mut cfg = SystemConfig::paper_table1();
    cfg.lat_cu_l1 *= 4;
    cfg.lat_l1_resp *= 4;
    cfg.lat_l1_l2 *= 4;
    cfg.lat_l2_resp *= 4;
    cfg.lat_l2_dram *= 4;
    cfg.lat_dram_resp *= 4;
    cfg.validate().expect("scaled config is valid");
    cfg
}

fn main() {
    // Cargo forwards its own `--bench` flag to the binary; the JSON
    // output path is the first non-flag argument.
    let out_path = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    let s = SuiteConfig::quick();
    let paper = SystemConfig::paper_table1();
    let lat4 = latency4x();
    // Latency-bound RNN configs and one bandwidth-bound control, on both
    // machines.
    let cases = [
        ("paper", &paper, "FwGRU", CachePolicy::Uncached),
        ("paper", &paper, "FwLSTM", CachePolicy::Uncached),
        ("paper", &paper, "FwGRU", CachePolicy::CacheRW),
        ("paper", &paper, "BwBN", CachePolicy::CacheRW),
        ("latency4x", &lat4, "FwGRU", CachePolicy::Uncached),
        ("latency4x", &lat4, "FwLSTM", CachePolicy::Uncached),
    ];
    let mut entries = Vec::new();
    for (cfg_name, cfg, name, policy) in cases {
        let w = by_name(&s, name).expect("suite workload");
        let p = PolicyConfig::of(policy);
        let mut cycles = 0u64;
        let label = format!("{cfg_name}/{name}/{p}");
        let skip_secs = measure(&format!("{label} events"), 3, || {
            let r = run_one_with(cfg, &w, p, &RunOptions::default()).expect("run");
            cycles = r.metrics.cycles;
        });
        let per_cycle = RunOptions {
            no_skip: true,
            ..RunOptions::default()
        };
        let no_skip_secs = measure(&format!("{label} no-skip"), 3, || {
            run_one_with(cfg, &w, p, &per_cycle).expect("run");
        });
        // One untimed run through `ApuSystem` directly for the event
        // core's work counters (`run_one_with` reports only metrics).
        let mut sys = ApuSystem::new((*cfg).clone(), p, &w);
        sys.run_to_completion(per_cycle.max_cycles).expect("run");
        let (events, active_cycles) = sys.event_stats();
        println!(
            "{label}: {cycles} cycles; {:.1}M cyc/s event-driven vs {:.1}M cyc/s per-cycle; \
             speedup {:.2}x",
            cycles as f64 / skip_secs / 1e6,
            cycles as f64 / no_skip_secs / 1e6,
            no_skip_secs / skip_secs.max(1e-12),
        );
        println!(
            "{label}: {events} events over {active_cycles} active cycles \
             ({:.1}% of cycles event-free, {:.3} events/cycle)",
            100.0 * (1.0 - active_cycles as f64 / cycles.max(1) as f64),
            events as f64 / cycles.max(1) as f64,
        );
        entries.push(Entry {
            config: cfg_name,
            workload: name,
            policy: p.label(),
            cycles,
            events,
            active_cycles,
            skip_secs,
            no_skip_secs,
        });
    }
    let best = entries
        .iter()
        .map(|e| e.no_skip_secs / e.skip_secs.max(1e-12))
        .fold(0.0f64, f64::max);
    println!("best speedup: {best:.2}x");

    if let Some(path) = out_path {
        // Cargo runs benches from the package directory; resolve the
        // documented `results/...` form against the workspace root.
        let path = {
            let p = std::path::PathBuf::from(&path);
            if p.is_absolute() {
                p
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(p)
            }
        };
        let path = path.to_string_lossy().into_owned();
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let rows: Vec<String> = entries
            .iter()
            .map(|e| {
                format!(
                    "    {{\"config\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \
                     \"cycles\": {}, \"skip_secs\": {:.6}, \"no_skip_secs\": {:.6}, \
                     \"speedup\": {:.3}}}",
                    e.config,
                    e.workload,
                    e.policy,
                    e.cycles,
                    e.skip_secs,
                    e.no_skip_secs,
                    e.no_skip_secs / e.skip_secs.max(1e-12),
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"sim_throughput\",\n  \"schema\": \"miopt-skipahead-v2\",\n  \
             \"unix_time\": {unix_time},\n  \"suite\": \"quick\",\n  \
             \"entries\": [\n{}\n  ]\n}}\n",
            rows.join(",\n"),
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("(wrote {path})");

        // The event-core trajectory file lives next to the skip-ahead
        // one and additionally records the dispatch-work counters that
        // explain each speedup.
        let ev_path = std::path::Path::new(&path)
            .parent()
            .unwrap_or_else(|| std::path::Path::new("."))
            .join("BENCH_eventcore.json");
        let rows: Vec<String> = entries
            .iter()
            .map(|e| {
                format!(
                    "    {{\"config\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \
                     \"cycles\": {}, \"events\": {}, \"active_cycles\": {}, \
                     \"events_per_cycle\": {:.4}, \"event_free_frac\": {:.4}, \
                     \"event_secs\": {:.6}, \"no_skip_secs\": {:.6}, \"speedup\": {:.3}}}",
                    e.config,
                    e.workload,
                    e.policy,
                    e.cycles,
                    e.events,
                    e.active_cycles,
                    e.events as f64 / e.cycles.max(1) as f64,
                    1.0 - e.active_cycles as f64 / e.cycles.max(1) as f64,
                    e.skip_secs,
                    e.no_skip_secs,
                    e.no_skip_secs / e.skip_secs.max(1e-12),
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"sim_throughput\",\n  \"schema\": \"miopt-eventcore-v1\",\n  \
             \"unix_time\": {unix_time},\n  \"suite\": \"quick\",\n  \
             \"entries\": [\n{}\n  ]\n}}\n",
            rows.join(",\n"),
        );
        let ev_display = ev_path.display().to_string();
        std::fs::write(&ev_path, json).expect("write eventcore json");
        println!("(wrote {ev_display})");
    }
}
