//! Simulator throughput: simulated cycles per wall-second with
//! event-driven time skipping on (the default) vs off (`--no-skip`).
//!
//! Latency-bound runs — few wavefronts covering long DRAM round trips,
//! the `Uncached` RNN configurations above all — spend most simulated
//! cycles with every component provably idle, which is exactly what the
//! time skipper warps over. Bandwidth-bound runs keep the hierarchy busy
//! nearly every cycle, so their ratio stays near 1.0 and mostly measures
//! the `next_event` overhead.
//!
//! Two machines are measured: the paper's Table 1 APU, and the same
//! memory system seen from a 4x-clocked GPU (`latency4x`) — every
//! interconnect/DRAM hop takes 4x as many core cycles, the modern-GPU
//! regime where an uncached DRAM round trip costs several hundred
//! cycles. The more latency-bound the machine, the larger the idle
//! stretches and the bigger the win from skipping them.
//!
//! Pass a path argument to also write the measurements as JSON (the
//! `results/BENCH_skipahead.json` trajectory file):
//!
//! ```text
//! cargo bench -p miopt-bench --bench sim_throughput -- results/BENCH_skipahead.json
//! ```

use miopt::runner::{run_one_with, RunOptions};
use miopt::{CachePolicy, PolicyConfig, SystemConfig};
use miopt_bench::timing::measure;
use miopt_workloads::{by_name, SuiteConfig};

struct Entry {
    config: &'static str,
    workload: &'static str,
    policy: String,
    cycles: u64,
    skip_secs: f64,
    no_skip_secs: f64,
}

/// The Table 1 memory system as seen from a GPU clocked 4x higher:
/// identical topology and bandwidth, every latency in core cycles
/// scaled by 4.
fn latency4x() -> SystemConfig {
    let mut cfg = SystemConfig::paper_table1();
    cfg.lat_cu_l1 *= 4;
    cfg.lat_l1_resp *= 4;
    cfg.lat_l1_l2 *= 4;
    cfg.lat_l2_resp *= 4;
    cfg.lat_l2_dram *= 4;
    cfg.lat_dram_resp *= 4;
    cfg.validate().expect("scaled config is valid");
    cfg
}

fn main() {
    // Cargo forwards its own `--bench` flag to the binary; the JSON
    // output path is the first non-flag argument.
    let out_path = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    let s = SuiteConfig::quick();
    let paper = SystemConfig::paper_table1();
    let lat4 = latency4x();
    // Latency-bound RNN configs and one bandwidth-bound control, on both
    // machines.
    let cases = [
        ("paper", &paper, "FwGRU", CachePolicy::Uncached),
        ("paper", &paper, "FwLSTM", CachePolicy::Uncached),
        ("paper", &paper, "FwGRU", CachePolicy::CacheRW),
        ("paper", &paper, "BwBN", CachePolicy::CacheRW),
        ("latency4x", &lat4, "FwGRU", CachePolicy::Uncached),
        ("latency4x", &lat4, "FwLSTM", CachePolicy::Uncached),
    ];
    let mut entries = Vec::new();
    for (cfg_name, cfg, name, policy) in cases {
        let w = by_name(&s, name).expect("suite workload");
        let p = PolicyConfig::of(policy);
        let mut cycles = 0u64;
        let label = format!("{cfg_name}/{name}/{p}");
        let skip_secs = measure(&format!("{label} skip"), 3, || {
            let r = run_one_with(cfg, &w, p, &RunOptions::default()).expect("run");
            cycles = r.metrics.cycles;
        });
        let per_cycle = RunOptions {
            no_skip: true,
            ..RunOptions::default()
        };
        let no_skip_secs = measure(&format!("{label} no-skip"), 3, || {
            run_one_with(cfg, &w, p, &per_cycle).expect("run");
        });
        println!(
            "{label}: {cycles} cycles; {:.1}M cyc/s skipped vs {:.1}M cyc/s per-cycle; \
             speedup {:.2}x",
            cycles as f64 / skip_secs / 1e6,
            cycles as f64 / no_skip_secs / 1e6,
            no_skip_secs / skip_secs.max(1e-12),
        );
        entries.push(Entry {
            config: cfg_name,
            workload: name,
            policy: p.label(),
            cycles,
            skip_secs,
            no_skip_secs,
        });
    }
    let best = entries
        .iter()
        .map(|e| e.no_skip_secs / e.skip_secs.max(1e-12))
        .fold(0.0f64, f64::max);
    println!("best speedup: {best:.2}x");

    if let Some(path) = out_path {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let rows: Vec<String> = entries
            .iter()
            .map(|e| {
                format!(
                    "    {{\"config\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \
                     \"cycles\": {}, \"skip_secs\": {:.6}, \"no_skip_secs\": {:.6}, \
                     \"speedup\": {:.3}}}",
                    e.config,
                    e.workload,
                    e.policy,
                    e.cycles,
                    e.skip_secs,
                    e.no_skip_secs,
                    e.no_skip_secs / e.skip_secs.max(1e-12),
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"sim_throughput\",\n  \"schema\": \"miopt-skipahead-v2\",\n  \
             \"unix_time\": {unix_time},\n  \"suite\": \"quick\",\n  \
             \"entries\": [\n{}\n  ]\n}}\n",
            rows.join(",\n"),
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("(wrote {path})");
    }
}
