//! End-to-end proof of the store's crash-safety contract:
//!
//! * a WAL truncated at **every** byte offset recovers to a valid
//!   prefix — no panic, no phantom records;
//! * a crash injected at **every** byte of the write stream (via
//!   [`miopt_store::FaultIo`]) leaves a store that reopens and reports
//!   exactly the durable prefix;
//! * interior damage (bit flips, sequence gaps) is classified as
//!   corruption, quarantined, and reported with byte offsets — never
//!   silently dropped.

use miopt_store::{
    encode_frame, Durability, FaultIo, Record, RecoveryKind, StoreError, StoreOptions, Wal,
    SEGMENT_HEADER_LEN,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("miopt-store-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn payload(i: u64) -> Vec<u8> {
    format!(
        "{{\"job\":{i},\"metric\":\"l2.load_hits\",\"value\":{}}}",
        i * 7
    )
    .into_bytes()
}

fn opts(segment_bytes: u64) -> StoreOptions {
    StoreOptions {
        durability: Durability::PerRecord,
        segment_bytes,
    }
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

#[test]
fn round_trip_across_reopen() {
    let dir = tmp("round-trip");
    let opened = Wal::open(&dir, opts(1 << 20)).unwrap();
    assert_eq!(opened.recovery.kind, RecoveryKind::Fresh);
    assert_eq!(opened.records.len(), 0);
    for i in 0..10 {
        let seq = opened.wal.append(&payload(i)).unwrap();
        assert_eq!(seq, i + 1);
    }
    assert_eq!(opened.wal.last_seq(), 10);
    drop(opened);

    let reopened = Wal::open(&dir, opts(1 << 20)).unwrap();
    assert_eq!(reopened.recovery.kind, RecoveryKind::Clean);
    assert_eq!(reopened.recovery.last_seq, 10);
    assert_eq!(reopened.records.len(), 10);
    for (i, rec) in reopened.records.iter().enumerate() {
        assert_eq!(rec.seq, i as u64 + 1);
        assert_eq!(rec.payload, payload(i as u64));
    }
    // Appending continues from the recovered sequence.
    assert_eq!(reopened.wal.append(b"more").unwrap(), 11);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn segments_roll_and_recover() {
    let dir = tmp("roll");
    // Tiny segments: every record or two forces a roll.
    let opened = Wal::open(&dir, opts(96)).unwrap();
    for i in 0..20 {
        opened.wal.append(&payload(i)).unwrap();
    }
    drop(opened);
    let segs = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "seg")
        })
        .count();
    assert!(segs > 3, "expected several segments, got {segs}");
    let reopened = Wal::open(&dir, opts(96)).unwrap();
    assert_eq!(reopened.records.len(), 20);
    assert_eq!(reopened.recovery.kind, RecoveryKind::Clean);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole property: truncate the log at EVERY byte offset of the
/// final segment; recovery must always succeed with exactly the records
/// whose frames fit inside the cut, and appending must work afterwards.
#[test]
fn truncation_at_every_byte_offset_recovers_the_valid_prefix() {
    let base = tmp("truncate-all");
    let master = base.join("master");
    let opened = Wal::open(&master, opts(1 << 20)).unwrap();
    for i in 0..6 {
        opened.wal.append(&payload(i)).unwrap();
    }
    drop(opened);

    let inspection = Wal::inspect(&master).unwrap();
    assert_eq!(inspection.segments.len(), 1);
    let seg = &inspection.segments[0];
    let seg_name = seg.path.file_name().unwrap().to_owned();
    let ends = seg.record_ends.clone();
    let total = seg.bytes;
    assert_eq!(ends.len(), 6);
    assert_eq!(*ends.last().unwrap(), total);

    for cut in 0..=total {
        let victim = base.join(format!("cut-{cut}"));
        copy_dir(&master, &victim);
        let seg_path = victim.join(&seg_name);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg_path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let survivors = ends.iter().filter(|&&e| e <= cut).count();
        let reopened = Wal::open(&victim, opts(1 << 20))
            .unwrap_or_else(|e| panic!("cut at byte {cut} failed to recover: {e}"));
        assert_eq!(
            reopened.records.len(),
            survivors,
            "cut at byte {cut}: wrong prefix"
        );
        for (i, rec) in reopened.records.iter().enumerate() {
            assert_eq!(rec.payload, payload(i as u64), "cut at byte {cut}");
        }
        let clean = cut == total || ends.contains(&cut) || cut == SEGMENT_HEADER_LEN;
        match &reopened.recovery.kind {
            RecoveryKind::Clean => assert!(clean, "cut at byte {cut} should be torn"),
            RecoveryKind::TornTail { dropped_bytes, .. } => {
                assert!(!clean, "cut at byte {cut} should be clean");
                let clean_len = if cut < SEGMENT_HEADER_LEN {
                    0 // header itself torn: the whole file is dropped
                } else {
                    ends.iter()
                        .rfind(|&&e| e <= cut)
                        .copied()
                        .unwrap_or(SEGMENT_HEADER_LEN)
                };
                assert_eq!(*dropped_bytes, cut - clean_len, "cut at byte {cut}");
            }
            RecoveryKind::Fresh => panic!("cut at byte {cut} reported fresh"),
        }
        // The repaired store keeps working.
        let next = reopened.wal.append(b"after-recovery").unwrap();
        assert_eq!(next, survivors as u64 + 1);
        drop(reopened);
        let again = Wal::open(&victim, opts(1 << 20)).unwrap();
        assert_eq!(again.records.len(), survivors + 1);
        assert_eq!(again.recovery.kind, RecoveryKind::Clean);
        std::fs::remove_dir_all(&victim).unwrap();
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// A bit flip inside a complete frame is corruption, not a tear: the
/// store must refuse to open, quarantine the file, and report the byte
/// offset and sequence numbers.
#[test]
fn bit_flip_is_classified_as_corruption_and_quarantined() {
    let dir = tmp("bit-flip");
    let opened = Wal::open(&dir, opts(1 << 20)).unwrap();
    for i in 0..4 {
        opened.wal.append(&payload(i)).unwrap();
    }
    drop(opened);
    let inspection = Wal::inspect(&dir).unwrap();
    let seg_path = inspection.segments[0].path.clone();
    // Flip a payload byte in record 2 (between end of record 1 and 2).
    let flip_at = (inspection.segments[0].record_ends[0] + 25) as usize;
    let mut bytes = std::fs::read(&seg_path).unwrap();
    bytes[flip_at] ^= 0x40;
    std::fs::write(&seg_path, &bytes).unwrap();

    let err = Wal::open(&dir, opts(1 << 20)).unwrap_err();
    match &err {
        StoreError::Corrupt {
            offset,
            expected_seq,
            quarantined,
            detail,
            ..
        } => {
            assert_eq!(*offset, inspection.segments[0].record_ends[0]);
            assert_eq!(*expected_seq, 2);
            assert!(*quarantined, "damaged segment must be quarantined");
            assert!(detail.contains("checksum"), "detail: {detail}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let mut aside = seg_path.clone().into_os_string();
    aside.push(".quarantined");
    assert!(Path::new(&aside).exists(), "quarantined file missing");
    assert!(!seg_path.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Damage in a sealed (non-final) segment is never a torn tail, even
/// when it looks like one: interior truncation means records are
/// missing from the middle of the log.
#[test]
fn damage_in_a_sealed_segment_is_corruption() {
    let dir = tmp("sealed-damage");
    let opened = Wal::open(&dir, opts(96)).unwrap();
    for i in 0..12 {
        opened.wal.append(&payload(i)).unwrap();
    }
    drop(opened);
    let inspection = Wal::inspect(&dir).unwrap();
    assert!(inspection.segments.len() >= 2);
    let first_seg = inspection.segments[0].path.clone();
    let len = std::fs::metadata(&first_seg).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&first_seg)
        .unwrap()
        .set_len(len - 3)
        .unwrap();
    let err = Wal::open(&dir, opts(96)).unwrap_err();
    assert!(
        matches!(err, StoreError::Corrupt { .. }),
        "expected Corrupt, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A forged frame with the wrong sequence number (but a valid checksum)
/// is caught as a sequence gap with both numbers reported.
#[test]
fn sequence_gap_is_reported_with_both_numbers() {
    let dir = tmp("seq-gap");
    let opened = Wal::open(&dir, opts(1 << 20)).unwrap();
    opened.wal.append(b"one").unwrap();
    drop(opened);
    let inspection = Wal::inspect(&dir).unwrap();
    let seg_path = inspection.segments[0].path.clone();
    // Append a validly-checksummed frame with seq 5 instead of 2.
    let mut bytes = std::fs::read(&seg_path).unwrap();
    bytes.extend_from_slice(&encode_frame(5, b"interloper"));
    std::fs::write(&seg_path, &bytes).unwrap();
    let err = Wal::open(&dir, opts(1 << 20)).unwrap_err();
    match err {
        StoreError::Corrupt {
            expected_seq,
            found_seq,
            detail,
            ..
        } => {
            assert_eq!(expected_seq, 2);
            assert_eq!(found_seq, Some(5));
            assert!(detail.contains("gap"), "detail: {detail}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_folds_sealed_segments_into_a_snapshot() {
    let dir = tmp("compact");
    let opened = Wal::open(&dir, opts(96)).unwrap();
    for i in 0..10 {
        opened.wal.append(&payload(i)).unwrap();
    }
    let stats = opened.wal.compact().unwrap();
    assert!(stats.folded_segments > 0);
    assert!(stats.snapshot_records > 0);
    // Appending keeps working mid-lifecycle, and a second compaction
    // folds the newly sealed segments into the next snapshot.
    for i in 10..16 {
        opened.wal.append(&payload(i)).unwrap();
    }
    opened.wal.compact().unwrap();
    drop(opened);

    let snaps = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "snap")
        })
        .count();
    assert_eq!(snaps, 1, "superseded snapshots must be removed");

    let reopened = Wal::open(&dir, opts(96)).unwrap();
    assert_eq!(reopened.records.len(), 16);
    assert!(reopened.recovery.from_snapshot > 0);
    for (i, rec) in reopened.records.iter().enumerate() {
        assert_eq!(rec.payload, payload(i as u64));
        assert_eq!(rec.seq, i as u64 + 1);
    }
    assert_eq!(reopened.wal.append(b"post-snapshot").unwrap(), 17);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full crash matrix: kill the write path at every byte of the
/// store's write stream. Every record whose append returned `Ok` must
/// survive recovery; the in-flight record must vanish cleanly.
#[test]
fn injected_crash_at_every_byte_recovers_exactly_the_durable_prefix() {
    let base = tmp("fault-matrix");
    // Dry run to size the full write stream.
    let dry = base.join("dry");
    let opened = Wal::open(&dry, opts(128)).unwrap();
    let n_records = 8u64;
    for i in 0..n_records {
        opened.wal.append(&payload(i)).unwrap();
    }
    drop(opened);
    let total: u64 = std::fs::read_dir(&dry)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();

    for budget in 0..=total {
        let victim = base.join(format!("kill-{budget}"));
        let io = FaultIo::new(budget);
        let mut ok = 0u64;
        match Wal::open_with_io(&victim, opts(128), Arc::new(io.clone())) {
            Ok(opened) => {
                for i in 0..n_records {
                    match opened.wal.append(&payload(i)) {
                        Ok(_) => ok += 1,
                        Err(_) => break,
                    }
                }
            }
            Err(_) => {
                // Crashed while creating the store; nothing durable yet.
            }
        }

        let recovered = Wal::open(&victim, opts(128))
            .unwrap_or_else(|e| panic!("budget {budget}: recovery failed: {e}"));
        assert_eq!(
            recovered.records.len() as u64,
            ok,
            "budget {budget}: recovery disagrees with the acknowledged prefix"
        );
        for (i, rec) in recovered.records.iter().enumerate() {
            assert_eq!(rec.payload, payload(i as u64), "budget {budget}");
        }
        // The recovered store accepts appends at the right sequence.
        assert_eq!(recovered.wal.append(b"rebirth").unwrap(), ok + 1);
        std::fs::remove_dir_all(&victim).unwrap();
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Relaxed durability modes still recover the clean-shutdown log and
/// never corrupt structure.
#[test]
fn batch_and_never_durability_round_trip() {
    for durability in [Durability::PerBatch(4), Durability::Never] {
        let dir = tmp(match durability {
            Durability::PerBatch(_) => "batch",
            _ => "never",
        });
        let o = StoreOptions {
            durability,
            segment_bytes: 256,
        };
        let opened = Wal::open(&dir, o).unwrap();
        for i in 0..9 {
            opened.wal.append(&payload(i)).unwrap();
        }
        opened.wal.sync().unwrap();
        drop(opened);
        let reopened = Wal::open(&dir, o).unwrap();
        assert_eq!(reopened.records.len(), 9);
        assert_eq!(reopened.recovery.kind, RecoveryKind::Clean);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn inspect_reports_torn_and_corrupt_without_repairing() {
    let dir = tmp("inspect");
    let opened = Wal::open(&dir, opts(1 << 20)).unwrap();
    for i in 0..3 {
        opened.wal.append(&payload(i)).unwrap();
    }
    drop(opened);

    let clean = Wal::inspect(&dir).unwrap();
    assert_eq!(clean.state, "clean");
    assert!(clean.healthy);
    assert_eq!(clean.records.len(), 3);
    assert_eq!(clean.last_seq, 3);

    // Tear the tail: inspect reports it but leaves the file alone.
    let seg_path = clean.segments[0].path.clone();
    let torn_len = clean.segments[0].record_ends[1] + 7;
    std::fs::OpenOptions::new()
        .write(true)
        .open(&seg_path)
        .unwrap()
        .set_len(torn_len)
        .unwrap();
    let torn = Wal::inspect(&dir).unwrap();
    assert!(torn.state.starts_with("torn tail"), "state: {}", torn.state);
    assert!(torn.healthy, "a torn tail is recoverable");
    assert_eq!(torn.records.len(), 2);
    assert_eq!(
        std::fs::metadata(&seg_path).unwrap().len(),
        torn_len,
        "inspect must not repair"
    );

    // Corrupt the interior: unhealthy, still no mutation.
    let mut bytes = std::fs::read(&seg_path).unwrap();
    let flip = SEGMENT_HEADER_LEN as usize + 22;
    bytes[flip] ^= 0xff;
    std::fs::write(&seg_path, &bytes).unwrap();
    let corrupt = Wal::inspect(&dir).unwrap();
    assert!(!corrupt.healthy);
    assert!(
        corrupt.state.starts_with("corrupt"),
        "state: {}",
        corrupt.state
    );
    assert!(seg_path.exists(), "inspect must not quarantine");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Payloads survive byte-for-byte, including empty and binary ones.
#[test]
fn arbitrary_payloads_round_trip() {
    let dir = tmp("payloads");
    let cases: Vec<Vec<u8>> = vec![
        Vec::new(),
        vec![0u8; 1],
        (0..=255u8).collect(),
        vec![0xff; 4096],
        b"{\"nested\":{\"json\":[1,2,3]}}\n".to_vec(),
    ];
    let opened = Wal::open(&dir, opts(512)).unwrap();
    for c in &cases {
        opened.wal.append(c).unwrap();
    }
    drop(opened);
    let reopened = Wal::open(&dir, opts(512)).unwrap();
    let got: Vec<Vec<u8>> = reopened
        .records
        .iter()
        .map(|r: &Record| r.payload.clone())
        .collect();
    assert_eq!(got, cases);
    let _ = std::fs::remove_dir_all(&dir);
}
