//! The store's filesystem seam: a small trait the WAL writes through,
//! a production implementation, and a deterministic crash-injecting
//! implementation for tests.
//!
//! Everything the WAL does to disk goes through [`WalIo`], so the
//! crash-injection harness can cut the write path at an exact byte
//! offset — at a record boundary, or in the middle of a frame — and
//! then prove that recovery reopens the store and reports exactly the
//! durable prefix. Production code uses [`StdIo`]; tests construct a
//! [`FaultIo`] with a byte budget.
//!
//! The module also hosts the two durability helpers the rest of the
//! workspace reuses directly: [`sync_dir`] (fsync a directory so a
//! create/rename is durable, not just ordered) and [`atomic_replace`]
//! (write-fsync-rename-fsync, so a power cut can never leave a missing
//! or half-written file where a complete one was promised).

use std::fs::File;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// An open, append-only file handle.
pub trait WalFile: Send {
    /// Writes all of `buf` (or fails).
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()>;
    /// Flushes the file's data and metadata to stable storage (fsync).
    fn sync(&mut self) -> std::io::Result<()>;
}

/// The filesystem operations a WAL performs.
pub trait WalIo: Send + Sync {
    /// Creates the directory (and parents) if missing.
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()>;
    /// Creates (truncating) a file for appending.
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn WalFile>>;
    /// Opens an existing file for appending.
    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn WalFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Truncates a file to `len` bytes.
    fn set_len(&self, path: &Path, len: u64) -> std::io::Result<()>;
    /// Renames a file (atomic within a directory on POSIX).
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> std::io::Result<()>;
    /// Lists the entries of a directory (files only, unsorted).
    fn list(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>>;
    /// Fsyncs a directory so entry creates/renames inside it are durable.
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()>;
}

/// Fsyncs a directory. On POSIX, renaming or creating a file is only
/// durable once the *directory* holding the entry has been synced; a
/// power cut before that can forget the entry entirely even though the
/// file's own bytes were fsynced.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Durably replaces `path` with `contents`: write to a temp file in the
/// same directory, fsync it, rename over the target, fsync the parent
/// directory. Readers never observe a torn file, and a power cut at any
/// instant leaves either the old complete file or the new complete file
/// — never a missing or empty one.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn atomic_replace(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(contents)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        sync_dir(parent)?;
    }
    Ok(())
}

/// The production [`WalIo`]: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdIo;

struct StdFile(File);

impl WalFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync(&mut self) -> std::io::Result<()> {
        self.0.sync_all()
    }
}

impl WalIo for StdIo {
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)
    }
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn WalFile>> {
        Ok(Box::new(StdFile(File::create(path)?)))
    }
    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn WalFile>> {
        Ok(Box::new(StdFile(File::options().append(true).open(path)?)))
    }
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }
    fn set_len(&self, path: &Path, len: u64) -> std::io::Result<()> {
        File::options().write(true).open(path)?.set_len(len)
    }
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove(&self, path: &Path) -> std::io::Result<()> {
        std::fs::remove_file(path)
    }
    fn list(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        sync_dir(dir)
    }
}

/// Shared state of a [`FaultIo`]: the remaining write budget in bytes
/// and whether the injected crash has fired.
#[derive(Debug)]
struct FaultState {
    remaining: AtomicU64,
    written: AtomicU64,
    dead: AtomicBool,
}

/// A crash-injecting [`WalIo`] for tests: writes pass through to the
/// real filesystem until a byte budget is exhausted, at which point the
/// in-flight write is cut mid-buffer (the allowed prefix *is* written,
/// like a torn page) and every subsequent operation fails — exactly the
/// observable behaviour of a process killed at that byte.
///
/// The budget counts bytes handed to [`WalFile::write_all`] across all
/// files, so a kill point is a single offset into the store's whole
/// write stream: segment headers, record frames, everything.
#[derive(Debug, Clone)]
pub struct FaultIo {
    state: Arc<FaultState>,
}

impl FaultIo {
    /// An injector that crashes the write path after `budget` bytes.
    #[must_use]
    pub fn new(budget: u64) -> FaultIo {
        FaultIo {
            state: Arc::new(FaultState {
                remaining: AtomicU64::new(budget),
                written: AtomicU64::new(0),
                dead: AtomicBool::new(false),
            }),
        }
    }

    /// Whether the injected crash has fired.
    #[must_use]
    pub fn dead(&self) -> bool {
        self.state.dead.load(Ordering::SeqCst)
    }

    /// Total bytes actually written before (and including) the crash.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.state.written.load(Ordering::SeqCst)
    }

    fn crashed() -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::BrokenPipe, "injected crash")
    }

    fn check(&self) -> std::io::Result<()> {
        if self.dead() {
            Err(FaultIo::crashed())
        } else {
            Ok(())
        }
    }
}

struct FaultFile {
    inner: File,
    state: Arc<FaultState>,
}

impl WalFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        if self.state.dead.load(Ordering::SeqCst) {
            return Err(FaultIo::crashed());
        }
        let want = buf.len() as u64;
        let remaining = self.state.remaining.load(Ordering::SeqCst);
        let allow = remaining.min(want);
        self.inner.write_all(&buf[..allow as usize])?;
        self.state.remaining.fetch_sub(allow, Ordering::SeqCst);
        self.state.written.fetch_add(allow, Ordering::SeqCst);
        if allow < want {
            // The crash: part of the buffer reached the file, the rest
            // never will, and the process is "gone" from here on.
            self.state.dead.store(true, Ordering::SeqCst);
            return Err(FaultIo::crashed());
        }
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        if self.state.dead.load(Ordering::SeqCst) {
            return Err(FaultIo::crashed());
        }
        self.inner.sync_all()
    }
}

impl WalIo for FaultIo {
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        self.check()?;
        StdIo.create_dir_all(dir)
    }
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn WalFile>> {
        self.check()?;
        Ok(Box::new(FaultFile {
            inner: File::create(path)?,
            state: Arc::clone(&self.state),
        }))
    }
    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn WalFile>> {
        self.check()?;
        Ok(Box::new(FaultFile {
            inner: File::options().append(true).open(path)?,
            state: Arc::clone(&self.state),
        }))
    }
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.check()?;
        StdIo.read(path)
    }
    fn set_len(&self, path: &Path, len: u64) -> std::io::Result<()> {
        self.check()?;
        StdIo.set_len(path, len)
    }
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.check()?;
        StdIo.rename(from, to)
    }
    fn remove(&self, path: &Path) -> std::io::Result<()> {
        self.check()?;
        StdIo.remove(path)
    }
    fn list(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        self.check()?;
        StdIo.list(dir)
    }
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        self.check()?;
        StdIo.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("miopt-store-io-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_replace_swaps_whole_files() {
        let dir = tmp("replace");
        let path = dir.join("report.json");
        atomic_replace(&path, b"v1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v1");
        atomic_replace(&path, b"version two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"version two");
        // The temp file never lingers.
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_io_cuts_the_write_stream_at_the_exact_byte() {
        let dir = tmp("fault");
        let path = dir.join("f");
        let io = FaultIo::new(10);
        let mut f = io.create(&path).unwrap();
        f.write_all(b"123456").unwrap(); // 6 of 10
        let err = f.write_all(b"abcdefgh").unwrap_err(); // 4 allowed, then crash
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert!(io.dead());
        assert_eq!(io.written(), 10);
        assert_eq!(std::fs::read(&path).unwrap(), b"123456abcd");
        // Every later operation fails too — the process is "gone".
        assert!(f.sync().is_err());
        assert!(io.create(&dir.join("g")).is_err());
        assert!(io.rename(&path, &dir.join("h")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
