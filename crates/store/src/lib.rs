//! `miopt-store`: a checksummed, crash-recoverable result store.
//!
//! The harness's journals (sweep and serve) need one property above
//! all: **a crash at any byte must be recoverable, and recovery must
//! say exactly what survived.** This crate provides that as a
//! segmented write-ahead log ([`Wal`]) with:
//!
//! * per-record framing — length prefix, monotonic sequence number,
//!   and an FNV-1a 64 checksum over all of it, so torn writes and bit
//!   flips are *distinguishable*;
//! * a recovery pass that classifies damage: a clean tail opens, a
//!   torn final record is truncated and appending continues, and
//!   mid-segment corruption quarantines the segment and surfaces a
//!   typed [`StoreError::Corrupt`] carrying the byte offset and the
//!   sequence gap;
//! * configurable durability ([`Durability`]): fsync per record, per
//!   batch, or never — with fsync-the-parent-directory after every
//!   file create/rename regardless, so the log's structure survives
//!   power loss even when record data is allowed to lag;
//! * snapshot + compaction ([`Wal::compact`]): sealed segments fold
//!   into a single checksummed snapshot without blocking appenders.
//!
//! The crash-injection seam lives in [`io`]: every filesystem touch
//! goes through the [`io::WalIo`] trait, and [`io::FaultIo`] kills the
//! write path at an exact byte offset so tests can prove recovery at
//! *every* record boundary and at chosen offsets inside a record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod io;
mod wal;

pub use error::StoreError;
pub use io::{atomic_replace, sync_dir, FaultIo, StdIo};
pub use wal::{
    encode_frame, CompactionStats, Durability, Inspection, Opened, Record, Recovery, RecoveryKind,
    SegmentStatus, StoreOptions, Wal, FRAME_HEADER_LEN, MAX_RECORD_LEN, SEGMENT_HEADER_LEN,
    SEGMENT_MAGIC, SNAPSHOT_HEADER_LEN, SNAPSHOT_MAGIC,
};
