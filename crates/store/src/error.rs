//! The typed error surface of the result store.

use std::path::PathBuf;

/// Why a store operation failed.
///
/// The interesting variant is [`StoreError::Corrupt`]: recovery found
/// damage it refuses to repair silently (a checksum mismatch in the
/// middle of a segment, a sequence gap, a mangled header). The damaged
/// segment is quarantined on disk (renamed with a `.quarantined`
/// suffix) so the bytes survive for forensics, and the error carries
/// the byte offset and the sequence numbers needed to say exactly what
/// was lost.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// What the store was doing (`"create"`, `"read"`, `"append"`,
        /// `"fsync"`, `"rename"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Recovery found damage that is not a torn tail: the store refuses
    /// to open rather than silently dropping interior records.
    Corrupt {
        /// The damaged segment or snapshot file (its original path;
        /// when `quarantined` is set the file now carries a
        /// `.quarantined` suffix).
        file: PathBuf,
        /// Byte offset of the damage within the file.
        offset: u64,
        /// The sequence number recovery expected at that offset.
        expected_seq: u64,
        /// The sequence number actually found, when the frame was
        /// readable at all.
        found_seq: Option<u64>,
        /// Human-readable description of the damage.
        detail: String,
        /// Whether the damaged file was renamed aside.
        quarantined: bool,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store {op} failed for {}: {source}", path.display())
            }
            StoreError::Corrupt {
                file,
                offset,
                expected_seq,
                found_seq,
                detail,
                quarantined,
            } => {
                write!(
                    f,
                    "store corruption in {} at byte offset {offset}: {detail} \
                     (expected sequence {expected_seq}",
                    file.display()
                )?;
                match found_seq {
                    Some(found) => write!(f, ", found {found})")?,
                    None => write!(f, ", frame unreadable)")?,
                }
                if *quarantined {
                    write!(
                        f,
                        "; the damaged file was quarantined as {}.quarantined",
                        file.display()
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { .. } => None,
        }
    }
}

impl From<StoreError> for std::io::Error {
    fn from(e: StoreError) -> std::io::Error {
        match e {
            StoreError::Io { source, .. } => source,
            corrupt => std::io::Error::new(std::io::ErrorKind::InvalidData, corrupt.to_string()),
        }
    }
}

impl StoreError {
    /// Shorthand for wrapping an I/O error with operation context.
    pub(crate) fn io(
        op: &'static str,
        path: &std::path::Path,
        source: std::io::Error,
    ) -> StoreError {
        StoreError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}
