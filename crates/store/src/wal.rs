//! The segmented write-ahead log: record framing, crash recovery, and
//! snapshot compaction.
//!
//! # On-disk layout
//!
//! A store is a directory of segment files plus at most one snapshot:
//!
//! ```text
//! <dir>/
//!   0000000000000001.seg          segments, named by first sequence
//!   00000000000000a3.seg          number; the highest one is active
//!   0000000000000042.snap         folded prefix (seq 1..=0x42)
//! ```
//!
//! Every segment starts with a 24-byte header (`magic, base_seq, crc`)
//! and then holds contiguous record frames:
//!
//! ```text
//! | len: u32 LE | seq: u64 LE | crc: u64 LE | payload: len bytes |
//! ```
//!
//! `crc` is FNV-1a 64 over `len ‖ seq ‖ payload`, so a frame vouches
//! for its own boundaries, its position in the log, and its contents.
//! Sequence numbers start at 1 and increase by exactly one across
//! segment boundaries; a gap is never legal.
//!
//! # Recovery
//!
//! [`Wal::open`] classifies damage rather than guessing:
//!
//! * **clean tail** — every frame checks out: open for append.
//! * **torn tail** — the final segment ends in an incomplete frame
//!   (the expected shape of a crash mid-append): truncate to the last
//!   whole record and continue. [`Recovery`] reports the byte offset
//!   and how many bytes were dropped.
//! * **corruption** — a checksum mismatch on a *complete* frame, a
//!   sequence gap, an implausible length, or any damage before the
//!   final segment: the damaged file is quarantined (renamed aside)
//!   and [`StoreError::Corrupt`] reports the byte offset and sequence
//!   numbers. Interior damage is never silently dropped.
//!
//! # Durability
//!
//! [`Durability`] picks the fsync cadence for appends. Independent of
//! it, the store always fsyncs files before sealing or renaming them
//! and fsyncs the directory after every create/rename, so the
//! *structure* of the log is crash-safe even under
//! [`Durability::Never`].

use crate::error::StoreError;
use crate::io::{StdIo, WalFile, WalIo};
use miopt_engine::hash::Fnv1a;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"MIOWAL01";
/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"MIOSNAP1";
/// Byte length of a segment header (`magic ‖ base_seq ‖ crc`).
pub const SEGMENT_HEADER_LEN: u64 = 24;
/// Byte length of a record frame header (`len ‖ seq ‖ crc`).
pub const FRAME_HEADER_LEN: u64 = 20;
/// Byte length of a snapshot header (`magic ‖ first ‖ last ‖ count ‖ crc`).
pub const SNAPSHOT_HEADER_LEN: u64 = 40;
/// Sanity bound on a single record's payload. A length field above
/// this is classified as corruption, not a torn write: real appends
/// never produce it, so it must be a damaged length prefix.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

/// When appends reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// fsync after every record: a crash loses at most the in-flight
    /// append. The default, and what the harness journals use.
    PerRecord,
    /// fsync after every `n` records: bounded loss, amortized cost.
    PerBatch(u32),
    /// Never fsync record data (the OS flushes eventually). Segment
    /// seals, snapshot renames, and directory updates are still
    /// fsynced, so the log structure survives; only tail records are
    /// at risk.
    Never,
}

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// The fsync cadence for appends.
    pub durability: Durability,
    /// Roll to a new segment once the active one reaches this many
    /// bytes. Small segments mean more frequent compaction
    /// opportunities; large ones mean fewer files.
    pub segment_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            durability: Durability::PerRecord,
            segment_bytes: 1 << 20,
        }
    }
}

/// One durable record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The record's sequence number (1-based, gap-free).
    pub seq: u64,
    /// The payload bytes, exactly as appended.
    pub payload: Vec<u8>,
}

/// How the store came back up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryKind {
    /// The directory held no prior state.
    Fresh,
    /// Every frame verified; nothing was repaired.
    Clean,
    /// The final segment ended in an incomplete frame — the expected
    /// crash shape — and was truncated to the last whole record.
    TornTail {
        /// The repaired segment.
        file: PathBuf,
        /// Byte offset the file was truncated to.
        offset: u64,
        /// Bytes dropped beyond the last whole record.
        dropped_bytes: u64,
    },
}

/// The recovery report of one [`Wal::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Durable records recovered (snapshot + segments).
    pub records: u64,
    /// Highest durable sequence number (0 when empty).
    pub last_seq: u64,
    /// Of `records`, how many came from the snapshot.
    pub from_snapshot: u64,
    /// What recovery found and did.
    pub kind: RecoveryKind,
}

/// An opened store: the handle, the recovery report, and every durable
/// record in sequence order.
pub struct Opened {
    /// The store, ready for appends.
    pub wal: Wal,
    /// What recovery found and did.
    pub recovery: Recovery,
    /// Every durable record, in sequence order.
    pub records: Vec<Record>,
}

impl std::fmt::Debug for Opened {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Opened")
            .field("dir", &self.wal.dir)
            .field("recovery", &self.recovery)
            .field("records", &self.records.len())
            .finish()
    }
}

/// What [`Wal::compact`] folded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Sealed segments folded into the snapshot.
    pub folded_segments: usize,
    /// Records now carried by the snapshot.
    pub snapshot_records: u64,
    /// Size of the new snapshot file in bytes.
    pub snapshot_bytes: u64,
}

/// Read-only health report of one segment (see [`Wal::inspect`]).
#[derive(Debug, Clone)]
pub struct SegmentStatus {
    /// The segment file.
    pub path: PathBuf,
    /// First sequence number the segment holds (from its header), when
    /// the header was readable.
    pub base_seq: Option<u64>,
    /// Whole records verified in this segment.
    pub records: u64,
    /// File length in bytes.
    pub bytes: u64,
    /// Byte offset just past each verified record — every legal
    /// truncation point, in order. (The first entry is past record 1,
    /// i.e. header + one frame.)
    pub record_ends: Vec<u64>,
    /// Damage description, when the scan stopped early.
    pub damage: Option<String>,
}

/// Read-only store diagnosis (see [`Wal::inspect`]): what recovery
/// *would* find, without repairing, truncating, or quarantining
/// anything. This is what `miopt-harness query --journals` prints.
#[derive(Debug, Clone)]
pub struct Inspection {
    /// Durable records (snapshot + verified segment records).
    pub records: Vec<Record>,
    /// Highest durable sequence number (0 when empty).
    pub last_seq: u64,
    /// Records carried by the snapshot, when one exists.
    pub snapshot_records: u64,
    /// Per-segment status, in sequence order.
    pub segments: Vec<SegmentStatus>,
    /// `"clean"`, `"torn tail …"`, or `"corrupt …"`.
    pub state: String,
    /// Whether a plain [`Wal::open`] would succeed (clean or torn
    /// tail; `false` means it would quarantine and error).
    pub healthy: bool,
}

/// Encodes one record frame.
#[must_use]
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_RECORD_LEN as usize,
        "record payload exceeds MAX_RECORD_LEN"
    );
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    let mut h = Fnv1a::new();
    h.write(&len.to_le_bytes());
    h.write(&seq.to_le_bytes());
    h.write(payload);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn encode_segment_header(base_seq: u64) -> [u8; SEGMENT_HEADER_LEN as usize] {
    let mut out = [0u8; SEGMENT_HEADER_LEN as usize];
    out[..8].copy_from_slice(SEGMENT_MAGIC);
    out[8..16].copy_from_slice(&base_seq.to_le_bytes());
    let mut h = Fnv1a::new();
    h.write(SEGMENT_MAGIC);
    h.write(&base_seq.to_le_bytes());
    out[16..24].copy_from_slice(&h.finish().to_le_bytes());
    out
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Damage found while scanning a file.
#[derive(Debug, Clone)]
struct Damage {
    /// Byte offset of the damage.
    offset: u64,
    /// Whether the damage is consistent with a torn trailing write
    /// (an incomplete frame at end of file) rather than interior
    /// corruption.
    torn: bool,
    /// The sequence number expected at the damage point.
    expected_seq: u64,
    /// The sequence number found, when the frame header was readable.
    found_seq: Option<u64>,
    /// Description.
    detail: String,
}

/// The result of scanning one segment file.
#[derive(Debug)]
struct SegScan {
    /// Base sequence from the header, when the header verified.
    base: Option<u64>,
    /// Whole verified records.
    records: Vec<Record>,
    /// Byte offset just past each verified record.
    record_ends: Vec<u64>,
    /// Offset every verified byte ends at (the truncation point on a
    /// torn tail).
    clean_len: u64,
    /// Why the scan stopped, if it did.
    damage: Option<Damage>,
}

/// Scans a segment file. Pure: no filesystem access, no repair.
fn scan_segment(bytes: &[u8]) -> SegScan {
    let mut scan = SegScan {
        base: None,
        records: Vec::new(),
        record_ends: Vec::new(),
        clean_len: 0,
        damage: None,
    };
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        scan.damage = Some(Damage {
            offset: bytes.len() as u64,
            torn: true,
            expected_seq: 0,
            found_seq: None,
            detail: format!(
                "incomplete segment header ({} of {SEGMENT_HEADER_LEN} bytes)",
                bytes.len()
            ),
        });
        return scan;
    }
    if &bytes[..8] != SEGMENT_MAGIC {
        scan.damage = Some(Damage {
            offset: 0,
            torn: false,
            expected_seq: 0,
            found_seq: None,
            detail: "bad segment magic".to_string(),
        });
        return scan;
    }
    let base = u64_at(bytes, 8);
    let mut h = Fnv1a::new();
    h.write(SEGMENT_MAGIC);
    h.write(&base.to_le_bytes());
    if u64_at(bytes, 16) != h.finish() {
        scan.damage = Some(Damage {
            offset: 16,
            torn: false,
            expected_seq: 0,
            found_seq: None,
            detail: "segment header checksum mismatch".to_string(),
        });
        return scan;
    }
    scan.base = Some(base);
    scan.clean_len = SEGMENT_HEADER_LEN;
    let mut offset = SEGMENT_HEADER_LEN as usize;
    loop {
        let expected_seq = base + scan.records.len() as u64;
        let rem = bytes.len() - offset;
        if rem == 0 {
            return scan;
        }
        if rem < FRAME_HEADER_LEN as usize {
            scan.damage = Some(Damage {
                offset: offset as u64,
                torn: true,
                expected_seq,
                found_seq: None,
                detail: format!(
                    "incomplete record frame ({rem} of {FRAME_HEADER_LEN} header bytes)"
                ),
            });
            return scan;
        }
        let len = u32_at(bytes, offset);
        if len > MAX_RECORD_LEN {
            scan.damage = Some(Damage {
                offset: offset as u64,
                torn: false,
                expected_seq,
                found_seq: None,
                detail: format!("implausible record length {len}"),
            });
            return scan;
        }
        let seq = u64_at(bytes, offset + 4);
        let end = offset + FRAME_HEADER_LEN as usize + len as usize;
        if end > bytes.len() {
            scan.damage = Some(Damage {
                offset: offset as u64,
                torn: true,
                expected_seq,
                found_seq: Some(seq),
                detail: format!(
                    "record extends past end of file ({} of {} bytes)",
                    bytes.len() - offset,
                    FRAME_HEADER_LEN + u64::from(len)
                ),
            });
            return scan;
        }
        let payload = &bytes[offset + FRAME_HEADER_LEN as usize..end];
        let mut h = Fnv1a::new();
        h.write(&len.to_le_bytes());
        h.write(&seq.to_le_bytes());
        h.write(payload);
        if u64_at(bytes, offset + 12) != h.finish() {
            scan.damage = Some(Damage {
                offset: offset as u64,
                torn: false,
                expected_seq,
                found_seq: Some(seq),
                detail: "record checksum mismatch on a complete frame".to_string(),
            });
            return scan;
        }
        if seq != expected_seq {
            scan.damage = Some(Damage {
                offset: offset as u64,
                torn: false,
                expected_seq,
                found_seq: Some(seq),
                detail: "sequence gap".to_string(),
            });
            return scan;
        }
        scan.records.push(Record {
            seq,
            payload: payload.to_vec(),
        });
        offset = end;
        scan.record_ends.push(offset as u64);
        scan.clean_len = offset as u64;
    }
}

/// Parses a snapshot file. Returns `(first, last, records)` or a
/// damage description with its byte offset.
fn scan_snapshot(bytes: &[u8]) -> Result<(u64, u64, Vec<Record>), (u64, String)> {
    if bytes.len() < SNAPSHOT_HEADER_LEN as usize {
        return Err((
            bytes.len() as u64,
            format!(
                "incomplete snapshot header ({} of {SNAPSHOT_HEADER_LEN} bytes)",
                bytes.len()
            ),
        ));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err((0, "bad snapshot magic".to_string()));
    }
    let first = u64_at(bytes, 8);
    let last = u64_at(bytes, 16);
    let count = u64_at(bytes, 24);
    let mut h = Fnv1a::new();
    h.write(SNAPSHOT_MAGIC);
    h.write(&first.to_le_bytes());
    h.write(&last.to_le_bytes());
    h.write(&count.to_le_bytes());
    if u64_at(bytes, 32) != h.finish() {
        return Err((32, "snapshot header checksum mismatch".to_string()));
    }
    let mut records = Vec::new();
    let mut offset = SNAPSHOT_HEADER_LEN as usize;
    for i in 0..count {
        let expected_seq = first + i;
        if bytes.len() - offset < FRAME_HEADER_LEN as usize {
            return Err((offset as u64, "snapshot truncated mid-frame".to_string()));
        }
        let len = u32_at(bytes, offset);
        if len > MAX_RECORD_LEN {
            return Err((offset as u64, format!("implausible record length {len}")));
        }
        let seq = u64_at(bytes, offset + 4);
        let end = offset + FRAME_HEADER_LEN as usize + len as usize;
        if end > bytes.len() {
            return Err((offset as u64, "snapshot truncated mid-record".to_string()));
        }
        let payload = &bytes[offset + FRAME_HEADER_LEN as usize..end];
        let mut h = Fnv1a::new();
        h.write(&len.to_le_bytes());
        h.write(&seq.to_le_bytes());
        h.write(payload);
        if u64_at(bytes, offset + 12) != h.finish() {
            return Err((offset as u64, "record checksum mismatch".to_string()));
        }
        if seq != expected_seq {
            return Err((
                offset as u64,
                format!("sequence gap (expected {expected_seq}, found {seq})"),
            ));
        }
        records.push(Record {
            seq,
            payload: payload.to_vec(),
        });
        offset = end;
    }
    if offset != bytes.len() {
        return Err((
            offset as u64,
            format!(
                "{} trailing bytes after the last record",
                bytes.len() - offset
            ),
        ));
    }
    if count > 0 && last != first + count - 1 {
        return Err((16, "snapshot header count/last mismatch".to_string()));
    }
    Ok((first, last, records))
}

fn segment_name(base_seq: u64) -> String {
    format!("{base_seq:016x}.seg")
}

fn snapshot_name(last_seq: u64) -> String {
    format!("{last_seq:016x}.snap")
}

/// Files in `dir`, split into (segments sorted by base, snapshots
/// sorted by last seq, leftover temp files).
#[allow(clippy::type_complexity)]
fn dir_contents(
    io: &dyn WalIo,
    dir: &Path,
) -> Result<(Vec<(u64, PathBuf)>, Vec<(u64, PathBuf)>, Vec<PathBuf>), StoreError> {
    let mut segs = Vec::new();
    let mut snaps = Vec::new();
    let mut tmps = Vec::new();
    for path in io.list(dir).map_err(|e| StoreError::io("list", dir, e))? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let parse16 = |stem: &str| u64::from_str_radix(stem, 16).ok();
        if let Some(stem) = name.strip_suffix(".seg") {
            if let Some(n) = parse16(stem) {
                segs.push((n, path));
            }
        } else if let Some(stem) = name.strip_suffix(".snap") {
            if let Some(n) = parse16(stem) {
                snaps.push((n, path));
            }
        } else if name.ends_with(".tmp") {
            tmps.push(path);
        }
    }
    segs.sort();
    snaps.sort();
    Ok((segs, snaps, tmps))
}

/// Appender state behind the [`Wal`]'s lock.
struct Appender {
    file: Box<dyn WalFile>,
    seg_path: PathBuf,
    seg_len: u64,
    next_seq: u64,
    unsynced: u32,
    /// Sealed (immutable, fully verified) segments, oldest first.
    sealed: Vec<PathBuf>,
    snapshot: Option<PathBuf>,
}

/// A crash-recoverable, checksummed, segmented write-ahead log.
///
/// Appends are thread-safe (`&self`); [`Wal::compact`] runs
/// concurrently with appenders, holding the append lock only to read
/// and update bookkeeping, never across file I/O on sealed segments.
pub struct Wal {
    dir: PathBuf,
    opts: StoreOptions,
    io: Arc<dyn WalIo>,
    inner: Mutex<Appender>,
}

impl Wal {
    /// Opens (creating if missing) the store in `dir` with the
    /// production filesystem.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures; [`StoreError::Corrupt`]
    /// when recovery finds interior damage (the damaged file is
    /// quarantined first).
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<Opened, StoreError> {
        Wal::open_with_io(dir, opts, Arc::new(StdIo))
    }

    /// Opens the store through a caller-supplied I/O layer (the crash
    /// injection seam; see [`crate::io::FaultIo`]).
    ///
    /// # Errors
    ///
    /// As [`Wal::open`].
    pub fn open_with_io(
        dir: &Path,
        opts: StoreOptions,
        io: Arc<dyn WalIo>,
    ) -> Result<Opened, StoreError> {
        assert!(
            opts.segment_bytes > SEGMENT_HEADER_LEN,
            "segment_bytes must exceed the segment header"
        );
        io.create_dir_all(dir)
            .map_err(|e| StoreError::io("create", dir, e))?;
        if let Some(parent) = dir.parent().filter(|p| !p.as_os_str().is_empty()) {
            // Make the directory entry itself durable.
            let _ = io.sync_dir(parent);
        }
        let (segs, snaps, tmps) = dir_contents(io.as_ref(), dir)?;
        for tmp in tmps {
            // Leftover from a crash mid-compaction: never renamed, so
            // never part of the log.
            io.remove(&tmp)
                .map_err(|e| StoreError::io("remove", &tmp, e))?;
        }

        // Load the newest snapshot; delete superseded ones.
        let mut records: Vec<Record> = Vec::new();
        let mut snapshot_path = None;
        let mut from_snapshot = 0u64;
        let mut expected = 1u64;
        if let Some((_, path)) = snaps.last() {
            let bytes = io.read(path).map_err(|e| StoreError::io("read", path, e))?;
            match scan_snapshot(&bytes) {
                Ok((_first, last, recs)) => {
                    from_snapshot = recs.len() as u64;
                    records = recs;
                    expected = last + 1;
                    snapshot_path = Some(path.clone());
                }
                Err((offset, detail)) => {
                    return Err(quarantine(io.as_ref(), dir, path, offset, 0, None, detail));
                }
            }
            for (_, stale) in &snaps[..snaps.len() - 1] {
                io.remove(stale)
                    .map_err(|e| StoreError::io("remove", stale, e))?;
            }
        }

        // Replay segments in order.
        let mut kind = if snapshot_path.is_none() && segs.is_empty() {
            RecoveryKind::Fresh
        } else {
            RecoveryKind::Clean
        };
        let mut active: Option<(PathBuf, u64)> = None; // (path, byte length)
        let n = segs.len();
        for (i, (_, path)) in segs.iter().enumerate() {
            let bytes = io.read(path).map_err(|e| StoreError::io("read", path, e))?;
            let scan = scan_segment(&bytes);
            let is_last = i == n - 1;
            let mut clean_len = scan.clean_len;
            if let Some(d) = &scan.damage {
                if !(d.torn && is_last) {
                    return Err(quarantine(
                        io.as_ref(),
                        dir,
                        path,
                        d.offset,
                        d.expected_seq,
                        d.found_seq,
                        d.detail.clone(),
                    ));
                }
                // The expected crash shape: truncate the tail.
                if scan.base.is_none() {
                    // Not even the header survived; drop the file and
                    // recreate the segment below.
                    io.remove(path)
                        .map_err(|e| StoreError::io("remove", path, e))?;
                    io.sync_dir(dir)
                        .map_err(|e| StoreError::io("fsync", dir, e))?;
                    kind = RecoveryKind::TornTail {
                        file: path.clone(),
                        offset: 0,
                        dropped_bytes: bytes.len() as u64,
                    };
                    continue;
                }
                io.set_len(path, clean_len)
                    .map_err(|e| StoreError::io("truncate", path, e))?;
                kind = RecoveryKind::TornTail {
                    file: path.clone(),
                    offset: clean_len,
                    dropped_bytes: bytes.len() as u64 - clean_len,
                };
            }
            let base = scan.base.expect("damage without header handled above");
            if base > expected {
                return Err(quarantine(
                    io.as_ref(),
                    dir,
                    path,
                    8,
                    expected,
                    Some(base),
                    "segment base leaves a sequence gap".to_string(),
                ));
            }
            let seg_last = base + scan.records.len() as u64;
            if seg_last <= expected {
                // Every record is already covered by the snapshot (a
                // crash between snapshot rename and segment delete).
                if !is_last {
                    io.remove(path)
                        .map_err(|e| StoreError::io("remove", path, e))?;
                    continue;
                }
                if scan.records.is_empty() && base < expected {
                    // A stale empty active segment; recreate below at
                    // the right base.
                    io.remove(path)
                        .map_err(|e| StoreError::io("remove", path, e))?;
                    continue;
                }
            }
            for rec in scan.records {
                if rec.seq >= expected {
                    records.push(rec);
                }
            }
            expected = expected.max(seg_last);
            if is_last {
                if scan.damage.is_some() {
                    clean_len = scan.clean_len;
                }
                active = Some((path.clone(), clean_len));
            }
        }

        // Decide the active segment: reuse the last one if it has room,
        // otherwise seal everything and start fresh.
        let mut sealed: Vec<PathBuf> = segs
            .iter()
            .map(|(_, p)| p.clone())
            .filter(|p| p.exists())
            .collect();
        let (file, seg_path, seg_len) = match active {
            Some((path, len)) if len < opts.segment_bytes => {
                sealed.retain(|p| p != &path);
                let file = io
                    .open_append(&path)
                    .map_err(|e| StoreError::io("open", &path, e))?;
                (file, path, len)
            }
            _ => {
                let path = dir.join(segment_name(expected));
                let mut file = io
                    .create(&path)
                    .map_err(|e| StoreError::io("create", &path, e))?;
                file.write_all(&encode_segment_header(expected))
                    .map_err(|e| StoreError::io("append", &path, e))?;
                file.sync().map_err(|e| StoreError::io("fsync", &path, e))?;
                io.sync_dir(dir)
                    .map_err(|e| StoreError::io("fsync", dir, e))?;
                sealed.retain(|p| p != &path);
                (file, path, SEGMENT_HEADER_LEN)
            }
        };

        let recovery = Recovery {
            records: records.len() as u64,
            last_seq: expected - 1,
            from_snapshot,
            kind,
        };
        let wal = Wal {
            dir: dir.to_path_buf(),
            opts,
            io,
            inner: Mutex::new(Appender {
                file,
                seg_path,
                seg_len,
                next_seq: expected,
                unsynced: 0,
                sealed,
                snapshot: snapshot_path,
            }),
        };
        Ok(Opened {
            wal,
            recovery,
            records,
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The highest sequence number appended (0 when empty).
    ///
    /// # Panics
    ///
    /// Panics if another thread panicked while holding the append lock.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().expect("wal lock").next_seq - 1
    }

    /// How many sealed (immutable) segments are waiting to be folded by
    /// [`Wal::compact`]. Callers can use this to compact only when there
    /// is something to fold.
    ///
    /// # Panics
    ///
    /// Panics if another thread panicked while holding the append lock.
    #[must_use]
    pub fn sealed_segments(&self) -> usize {
        self.inner.lock().expect("wal lock").sealed.len()
    }

    /// Appends one record and returns its sequence number, applying
    /// the configured durability policy.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (with context). After an error the
    /// store may hold a torn tail — exactly what recovery repairs.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_RECORD_LEN`] or another
    /// appender panicked while holding the lock.
    pub fn append(&self, payload: &[u8]) -> Result<u64, StoreError> {
        let mut a = self.inner.lock().expect("wal lock");
        if a.seg_len >= self.opts.segment_bytes {
            self.roll(&mut a)?;
        }
        let seq = a.next_seq;
        let frame = encode_frame(seq, payload);
        a.file
            .write_all(&frame)
            .map_err(|e| StoreError::io("append", &a.seg_path, e))?;
        a.seg_len += frame.len() as u64;
        a.next_seq += 1;
        match self.opts.durability {
            Durability::PerRecord => {
                a.file
                    .sync()
                    .map_err(|e| StoreError::io("fsync", &a.seg_path, e))?;
            }
            Durability::PerBatch(n) => {
                a.unsynced += 1;
                if a.unsynced >= n.max(1) {
                    a.file
                        .sync()
                        .map_err(|e| StoreError::io("fsync", &a.seg_path, e))?;
                    a.unsynced = 0;
                }
            }
            Durability::Never => {}
        }
        Ok(seq)
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    ///
    /// # Panics
    ///
    /// Panics if another appender panicked while holding the lock.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut a = self.inner.lock().expect("wal lock");
        a.unsynced = 0;
        a.file
            .sync()
            .map_err(|e| StoreError::io("fsync", &a.seg_path, e))
    }

    /// Seals the active segment and opens a new one.
    fn roll(&self, a: &mut Appender) -> Result<(), StoreError> {
        // A sealed segment must be fully durable before anything refers
        // past it.
        a.file
            .sync()
            .map_err(|e| StoreError::io("fsync", &a.seg_path, e))?;
        a.unsynced = 0;
        let path = self.dir.join(segment_name(a.next_seq));
        let mut file = self
            .io
            .create(&path)
            .map_err(|e| StoreError::io("create", &path, e))?;
        file.write_all(&encode_segment_header(a.next_seq))
            .map_err(|e| StoreError::io("append", &path, e))?;
        file.sync().map_err(|e| StoreError::io("fsync", &path, e))?;
        self.io
            .sync_dir(&self.dir)
            .map_err(|e| StoreError::io("fsync", &self.dir, e))?;
        let old = std::mem::replace(&mut a.seg_path, path);
        a.sealed.push(old);
        a.file = file;
        a.seg_len = SEGMENT_HEADER_LEN;
        Ok(())
    }

    /// Folds the snapshot and every sealed segment into a new
    /// checksummed snapshot, then removes what it folded. Appenders
    /// are not blocked: the lock is held only to read and update
    /// bookkeeping, never across the fold's file I/O (sealed segments
    /// are immutable).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; [`StoreError::Corrupt`] if a
    /// sealed segment no longer verifies (it is quarantined).
    ///
    /// # Panics
    ///
    /// Panics if another appender panicked while holding the lock.
    pub fn compact(&self) -> Result<CompactionStats, StoreError> {
        let (sealed, old_snap) = {
            let a = self.inner.lock().expect("wal lock");
            (a.sealed.clone(), a.snapshot.clone())
        };
        if sealed.is_empty() {
            // Nothing to fold; don't touch the existing snapshot.
            return Ok(CompactionStats::default());
        }

        // Gather every record the new snapshot will carry (old snapshot
        // first, then the sealed segments in order).
        let mut records: Vec<Record> = Vec::new();
        if let Some(p) = &old_snap {
            let bytes = self.io.read(p).map_err(|e| StoreError::io("read", p, e))?;
            let (_, _, recs) = scan_snapshot(&bytes).map_err(|(offset, detail)| {
                quarantine(self.io.as_ref(), &self.dir, p, offset, 0, None, detail)
            })?;
            records.extend(recs);
        }
        for path in &sealed {
            let bytes = self
                .io
                .read(path)
                .map_err(|e| StoreError::io("read", path, e))?;
            let scan = scan_segment(&bytes);
            if let Some(d) = scan.damage {
                return Err(quarantine(
                    self.io.as_ref(),
                    &self.dir,
                    path,
                    d.offset,
                    d.expected_seq,
                    d.found_seq,
                    d.detail,
                ));
            }
            let next = records.last().map_or(1, |r| r.seq + 1);
            for rec in scan.records {
                if rec.seq >= next {
                    records.push(rec);
                }
            }
        }
        let (first, last) = match (records.first(), records.last()) {
            (Some(f), Some(l)) => (f.seq, l.seq),
            _ => (1, 0),
        };

        // Write-fsync-rename-fsync the new snapshot.
        let final_path = self.dir.join(snapshot_name(last));
        let tmp_path = self.dir.join(format!("{}.tmp", snapshot_name(last)));
        let mut body = Vec::new();
        body.extend_from_slice(SNAPSHOT_MAGIC);
        body.extend_from_slice(&first.to_le_bytes());
        body.extend_from_slice(&last.to_le_bytes());
        body.extend_from_slice(&(records.len() as u64).to_le_bytes());
        let mut h = Fnv1a::new();
        h.write(SNAPSHOT_MAGIC);
        h.write(&first.to_le_bytes());
        h.write(&last.to_le_bytes());
        h.write(&(records.len() as u64).to_le_bytes());
        body.extend_from_slice(&h.finish().to_le_bytes());
        for rec in &records {
            body.extend_from_slice(&encode_frame(rec.seq, &rec.payload));
        }
        let mut f = self
            .io
            .create(&tmp_path)
            .map_err(|e| StoreError::io("create", &tmp_path, e))?;
        f.write_all(&body)
            .map_err(|e| StoreError::io("append", &tmp_path, e))?;
        f.sync()
            .map_err(|e| StoreError::io("fsync", &tmp_path, e))?;
        drop(f);
        self.io
            .rename(&tmp_path, &final_path)
            .map_err(|e| StoreError::io("rename", &tmp_path, e))?;
        self.io
            .sync_dir(&self.dir)
            .map_err(|e| StoreError::io("fsync", &self.dir, e))?;

        // The snapshot is durable; drop what it folded.
        if let Some(p) = &old_snap {
            if p != &final_path {
                self.io
                    .remove(p)
                    .map_err(|e| StoreError::io("remove", p, e))?;
            }
        }
        for path in &sealed {
            self.io
                .remove(path)
                .map_err(|e| StoreError::io("remove", path, e))?;
        }
        self.io
            .sync_dir(&self.dir)
            .map_err(|e| StoreError::io("fsync", &self.dir, e))?;

        let mut a = self.inner.lock().expect("wal lock");
        a.sealed.retain(|p| !sealed.contains(p));
        a.snapshot = Some(final_path);
        Ok(CompactionStats {
            folded_segments: sealed.len(),
            snapshot_records: records.len() as u64,
            snapshot_bytes: body.len() as u64,
        })
    }

    /// Read-only diagnosis of the store in `dir`: what recovery would
    /// find, without repairing anything. Safe to run on a store
    /// another process is writing.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] only; damage is *reported*, not returned as
    /// an error.
    pub fn inspect(dir: &Path) -> Result<Inspection, StoreError> {
        let io = StdIo;
        let (segs, snaps, _tmps) = dir_contents(&io, dir)?;
        let mut records: Vec<Record> = Vec::new();
        let mut snapshot_records = 0u64;
        let mut expected = 1u64;
        let mut state: Option<String> = None;
        let mut healthy = true;
        if let Some((_, path)) = snaps.last() {
            let bytes = io.read(path).map_err(|e| StoreError::io("read", path, e))?;
            match scan_snapshot(&bytes) {
                Ok((_f, last, recs)) => {
                    snapshot_records = recs.len() as u64;
                    records = recs;
                    expected = last + 1;
                }
                Err((offset, detail)) => {
                    state = Some(format!(
                        "corrupt: snapshot {} at byte {offset}: {detail}",
                        path.display()
                    ));
                    healthy = false;
                }
            }
        }
        let mut segments = Vec::new();
        let n = segs.len();
        for (i, (_, path)) in segs.iter().enumerate() {
            let bytes = io.read(path).map_err(|e| StoreError::io("read", path, e))?;
            let scan = scan_segment(&bytes);
            let is_last = i == n - 1;
            let mut damage_text = None;
            if let Some(d) = &scan.damage {
                if d.torn && is_last {
                    damage_text = Some(format!("torn tail at byte {} ({})", d.offset, d.detail));
                    if state.is_none() {
                        state = Some(format!(
                            "torn tail: {} at byte {} — recovery will truncate \
                             {} byte(s) and keep {} record(s)",
                            path.display(),
                            d.offset,
                            bytes.len() as u64 - scan.clean_len,
                            scan.records.len()
                        ));
                    }
                } else {
                    damage_text = Some(format!("corrupt at byte {}: {}", d.offset, d.detail));
                    healthy = false;
                    if state.as_deref().is_none_or(|s| !s.starts_with("corrupt")) {
                        state = Some(format!(
                            "corrupt: {} at byte {}: {} (expected sequence {}{})",
                            path.display(),
                            d.offset,
                            d.detail,
                            d.expected_seq,
                            d.found_seq
                                .map(|f| format!(", found {f}"))
                                .unwrap_or_default(),
                        ));
                    }
                }
            }
            if healthy {
                if let Some(base) = scan.base {
                    if base > expected {
                        healthy = false;
                        state = Some(format!(
                            "corrupt: {} base sequence {base} leaves a gap (expected {expected})",
                            path.display()
                        ));
                    } else {
                        for rec in &scan.records {
                            if rec.seq >= expected {
                                records.push(rec.clone());
                            }
                        }
                        expected = expected.max(base + scan.records.len() as u64);
                    }
                }
            }
            segments.push(SegmentStatus {
                path: path.clone(),
                base_seq: scan.base,
                records: scan.records.len() as u64,
                bytes: bytes.len() as u64,
                record_ends: scan.record_ends,
                damage: damage_text,
            });
        }
        Ok(Inspection {
            last_seq: expected - 1,
            records,
            snapshot_records,
            segments,
            state: state.unwrap_or_else(|| "clean".to_string()),
            healthy,
        })
    }
}

/// Renames a damaged file aside and builds the [`StoreError::Corrupt`].
fn quarantine(
    io: &dyn WalIo,
    dir: &Path,
    path: &Path,
    offset: u64,
    expected_seq: u64,
    found_seq: Option<u64>,
    detail: String,
) -> StoreError {
    let mut aside = path.as_os_str().to_os_string();
    aside.push(".quarantined");
    let quarantined = io.rename(path, Path::new(&aside)).is_ok() && io.sync_dir(dir).is_ok();
    StoreError::Corrupt {
        file: path.to_path_buf(),
        offset,
        expected_seq,
        found_seq,
        detail,
        quarantined,
    }
}
