//! Small statistics helpers used by every component's stat block.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use miopt_engine::stats::Counter;
///
/// let mut hits = Counter::default();
/// hits.inc();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Reconstructs a counter from a persisted count (results
    /// deserialization hook — not for use inside the simulator).
    #[must_use]
    pub fn from_value(n: u64) -> Counter {
        Counter(n)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A numerator/denominator pair reported as a ratio (e.g. row hit rate).
///
/// # Examples
///
/// ```
/// use miopt_engine::stats::Ratio;
///
/// let mut r = Ratio::default();
/// r.record(true);
/// r.record(false);
/// r.record(true);
/// assert!((r.value() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Records one event; `hit` selects whether it counts in the numerator.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The ratio, or 0.0 if no events were recorded.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Reconstructs a ratio from persisted numerator/denominator (results
    /// deserialization hook — not for use inside the simulator).
    ///
    /// # Panics
    ///
    /// Panics if `hits > total`.
    #[must_use]
    pub fn from_parts(hits: u64, total: u64) -> Ratio {
        assert!(hits <= total, "ratio numerator exceeds denominator");
        Ratio { hits, total }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.1}%)",
            self.hits,
            self.total,
            self.value() * 100.0
        )
    }
}

/// Online mean/max tracker for distributions (e.g. queue occupancy).
///
/// # Examples
///
/// ```
/// use miopt_engine::stats::RunningStat;
///
/// let mut s = RunningStat::default();
/// s.record(2.0);
/// s.record(4.0);
/// assert_eq!(s.mean(), 3.0);
/// assert_eq!(s.max(), 4.0);
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStat {
    count: u64,
    sum: f64,
    max: f64,
}

impl RunningStat {
    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples, or 0.0 if none recorded.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest sample seen (0.0 if none recorded).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn ratio_empty_is_zero() {
        assert_eq!(Ratio::default().value(), 0.0);
    }

    #[test]
    fn ratio_counts_hits_and_total() {
        let mut r = Ratio::default();
        for i in 0..10 {
            r.record(i % 2 == 0);
        }
        assert_eq!(r.hits(), 5);
        assert_eq!(r.total(), 10);
        assert_eq!(r.value(), 0.5);
    }

    #[test]
    fn running_stat_tracks_mean_and_max() {
        let mut s = RunningStat::default();
        for x in [1.0, 5.0, 3.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn counter_and_ratio_round_trip_through_their_parts() {
        let c = Counter::from_value(17);
        assert_eq!(Counter::from_value(c.get()), c);
        let r = Ratio::from_parts(3, 9);
        assert_eq!(Ratio::from_parts(r.hits(), r.total()), r);
        assert!((r.value() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "numerator exceeds")]
    fn ratio_rejects_impossible_parts() {
        let _ = Ratio::from_parts(5, 3);
    }

    #[test]
    fn running_stat_empty_defaults() {
        let s = RunningStat::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
    }
}
