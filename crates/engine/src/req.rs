use crate::{Cycle, LineAddr};
use std::fmt;

/// Unique identifier of an in-flight memory request.
///
/// Issued monotonically by the compute-unit coalescer (and by caches for
/// writebacks); never reused within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(pub u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// The program counter of the memory instruction that produced a request.
///
/// The paper's PC-based L2 bypass predictor (Section VII.C, after Tian et
/// al.) indexes its reuse table with this value. Workload generators assign a
/// distinct `Pc` to each static memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u32);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc {:#x}", self.0)
    }
}

/// How a request interacts with the GPU caches (paper Section III).
///
/// * `Cached` requests query, allocate in, and fill the cache level they
///   reach (subject to the active policy).
/// * `Bypass` requests skip allocation: on a miss the data is forwarded
///   without being inserted. Pending bypass loads to the same line still
///   coalesce ("read requests to the same cache line may be coalesced while
///   the original bypass request is pending").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessKind {
    /// Allocate/fill on miss.
    #[default]
    Cached,
    /// Forward without inserting.
    Bypass,
}

/// Where a request came from, for routing the response back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Origin {
    /// Issued by a wavefront on a compute unit: `(cu index, wavefront slot)`.
    Wavefront {
        /// Index of the compute unit.
        cu: u16,
        /// Wavefront slot within the CU (SIMD-major).
        slot: u16,
    },
    /// Generated inside the hierarchy (L2 writeback, rinse); no response
    /// is routed anywhere.
    #[default]
    Internal,
}

/// A line-granular memory request flowing down the hierarchy
/// (CU → L1 → crossbar → L2 → DRAM).
///
/// # Examples
///
/// ```
/// use miopt_engine::{AccessKind, Cycle, LineAddr, MemReq, Origin, Pc, ReqId};
///
/// let req = MemReq {
///     id: ReqId(1),
///     line: LineAddr(0x40),
///     is_store: false,
///     kind: AccessKind::Cached,
///     pc: Pc(12),
///     origin: Origin::Wavefront { cu: 3, slot: 7 },
///     issue_cycle: Cycle(100),
/// };
/// assert!(req.wants_response());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Unique id.
    pub id: ReqId,
    /// Target cache line.
    pub line: LineAddr,
    /// `true` for stores and writebacks, `false` for loads.
    pub is_store: bool,
    /// Cached or bypass handling at the cache level being queried.
    pub kind: AccessKind,
    /// Static memory instruction that produced the request.
    pub pc: Pc,
    /// Response routing information.
    pub origin: Origin,
    /// Cycle at which the wavefront issued the instruction.
    pub issue_cycle: Cycle,
}

impl MemReq {
    /// Whether a [`MemResp`] must be routed back to the issuer.
    ///
    /// Loads from wavefronts need their data; stores and internal writebacks
    /// are fire-and-forget (the GPU's relaxed model only waits for stores at
    /// kernel-end drain, which the dispatcher tracks by count).
    #[must_use]
    pub fn wants_response(&self) -> bool {
        !self.is_store && matches!(self.origin, Origin::Wavefront { .. })
    }

    /// A writeback request generated inside the hierarchy.
    #[must_use]
    pub fn writeback(id: ReqId, line: LineAddr, now: Cycle) -> MemReq {
        MemReq {
            id,
            line,
            is_store: true,
            kind: AccessKind::Bypass,
            pc: Pc(0),
            origin: Origin::Internal,
            issue_cycle: now,
        }
    }
}

/// A response carrying load data (abstractly) back up the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResp {
    /// Id of the request being answered.
    pub id: ReqId,
    /// Line that was read.
    pub line: LineAddr,
    /// Issuer to route back to.
    pub origin: Origin,
}

impl MemResp {
    /// Builds the response for `req`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `req` does not want a response.
    #[must_use]
    pub fn for_req(req: &MemReq) -> MemResp {
        debug_assert!(req.wants_response());
        MemResp {
            id: req.id,
            line: req.line,
            origin: req.origin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(origin: Origin) -> MemReq {
        MemReq {
            id: ReqId(9),
            line: LineAddr(4),
            is_store: false,
            kind: AccessKind::Cached,
            pc: Pc(1),
            origin,
            issue_cycle: Cycle(0),
        }
    }

    #[test]
    fn wavefront_loads_want_responses() {
        assert!(load(Origin::Wavefront { cu: 0, slot: 0 }).wants_response());
    }

    #[test]
    fn stores_and_internal_do_not_want_responses() {
        let mut st = load(Origin::Wavefront { cu: 0, slot: 0 });
        st.is_store = true;
        assert!(!st.wants_response());
        assert!(!load(Origin::Internal).wants_response());
        assert!(!MemReq::writeback(ReqId(1), LineAddr(2), Cycle(3)).wants_response());
    }

    #[test]
    fn response_routes_to_origin() {
        let req = load(Origin::Wavefront { cu: 5, slot: 11 });
        let resp = MemResp::for_req(&req);
        assert_eq!(resp.id, req.id);
        assert_eq!(resp.line, req.line);
        assert_eq!(resp.origin, req.origin);
    }

    #[test]
    fn writeback_is_internal_bypass_store() {
        let wb = MemReq::writeback(ReqId(7), LineAddr(3), Cycle(10));
        assert!(wb.is_store);
        assert_eq!(wb.kind, AccessKind::Bypass);
        assert_eq!(wb.origin, Origin::Internal);
    }
}
