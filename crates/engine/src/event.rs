//! A calendar-queue **event wheel**: the priority structure at the heart
//! of the discrete-event simulation core.
//!
//! The wheel indexes pending wakeups by [`Cycle`]. Near-future events
//! (within [`EventWheel::WINDOW`] cycles of the wheel's base) live in a
//! power-of-two ring of per-cycle slots, each slot a 64-bit mask of event
//! ids, with a two-level occupancy bitmap so finding the next nonempty
//! slot is a handful of word scans. Far-future events take the slow path:
//! an ordered overflow map drained into the ring as the base advances.
//!
//! Determinism rules (the simulator's event core relies on all three):
//!
//! * **Idempotent insert** — scheduling the same id at the same cycle
//!   twice is one event.
//! * **Batched pop** — [`EventWheel::pop_next`] returns *all* ids due at
//!   the earliest pending cycle as one mask; the caller dispatches them
//!   in ascending id order, which is how same-cycle ties break.
//! * **Monotonic base** — popping cycle `c` advances the base to `c + 1`;
//!   later inserts may never target a cycle before the base.
//!
//! # Examples
//!
//! ```
//! use miopt_engine::{Cycle, EventWheel};
//!
//! let mut w = EventWheel::new();
//! w.insert(Cycle(10), 3);
//! w.insert(Cycle(10), 1);
//! w.insert(Cycle(100_000), 0); // far future: overflow path
//! assert_eq!(w.pop_next(), Some((Cycle(10), 0b1010)));
//! assert_eq!(w.pop_next(), Some((Cycle(100_000), 0b1)));
//! assert!(w.pop_next().is_none());
//! ```

use crate::Cycle;
use std::collections::BTreeMap;

/// Ring size in cycles (and slots). Power of two so the slot of a cycle
/// is a mask, sized to cover every latency in the modelled memory system
/// (the longest single hop, an uncached DRAM round trip on the 4x-clocked
/// machine, is a few hundred cycles) so the overflow map only ever sees
/// coarse periodic work: telemetry epochs, sentinel sweeps, launch
/// overhead.
const SLOTS: usize = 4096;
/// Words in the per-slot occupancy bitmap (one bit per slot).
const WORDS: usize = SLOTS / 64;

/// An indexed calendar queue keyed by [`Cycle`], holding up to 64
/// distinct event ids per cycle. See the module docs above for the
/// slot/overflow layout.
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// Cycles before `base` are in the past; the ring covers
    /// `[base, base + SLOTS)`.
    base: u64,
    /// Per-cycle id masks; slot of cycle `c` is `c % SLOTS`.
    slots: Vec<u64>,
    /// First-level occupancy: bit `s % 64` of word `s / 64` set iff
    /// `slots[s] != 0`.
    occupied: [u64; WORDS],
    /// Second-level occupancy: bit `w` set iff `occupied[w] != 0`.
    summary: u64,
    /// Far-future events (`at >= base + SLOTS`): cycle -> id mask.
    overflow: BTreeMap<u64, u64>,
}

impl EventWheel {
    /// The ring's horizon: events this many cycles past the base (or
    /// further) take the overflow slow path until the base catches up.
    pub const WINDOW: u64 = SLOTS as u64;

    /// An empty wheel based at cycle 0.
    #[must_use]
    pub fn new() -> EventWheel {
        EventWheel {
            base: 0,
            slots: vec![0; SLOTS],
            occupied: [0; WORDS],
            summary: 0,
            overflow: BTreeMap::new(),
        }
    }

    /// Drops every pending event and rebases the wheel at `base` — the
    /// start of a fresh run on a reused system.
    pub fn reset(&mut self, base: Cycle) {
        self.slots.fill(0);
        self.occupied.fill(0);
        self.summary = 0;
        self.overflow.clear();
        self.base = base.0;
    }

    /// The wheel's base: the earliest cycle an event may occupy.
    #[must_use]
    pub fn base(&self) -> Cycle {
        Cycle(self.base)
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.summary == 0 && self.overflow.is_empty()
    }

    /// Schedules event `id` at cycle `at`. Idempotent: re-inserting an
    /// id already pending at `at` changes nothing.
    ///
    /// `at` must not precede the base (the past); in release builds such
    /// an insert is clamped to the base, which is the conservative
    /// direction (an event can only fire early, never be missed).
    ///
    /// # Panics
    ///
    /// Debug builds panic if `id >= 64` or `at` precedes the base.
    pub fn insert(&mut self, at: Cycle, id: u8) {
        debug_assert!(id < 64, "event id {id} out of mask range");
        debug_assert!(
            at.0 >= self.base,
            "insert at {at} before wheel base {}",
            self.base
        );
        let at = at.0.max(self.base);
        if at - self.base >= SLOTS as u64 {
            *self.overflow.entry(at).or_insert(0) |= 1 << id;
            return;
        }
        let s = (at % SLOTS as u64) as usize;
        self.slots[s] |= 1 << id;
        self.occupied[s / 64] |= 1 << (s % 64);
        self.summary |= 1 << (s / 64);
    }

    /// Unschedules event `id` at cycle `at`, if pending there. Cancelling
    /// an absent event (or a past cycle) is a no-op.
    pub fn cancel(&mut self, at: Cycle, id: u8) {
        debug_assert!(id < 64, "event id {id} out of mask range");
        if at.0 < self.base {
            return;
        }
        if at.0 - self.base >= SLOTS as u64 {
            if let Some(m) = self.overflow.get_mut(&at.0) {
                *m &= !(1u64 << id);
                if *m == 0 {
                    self.overflow.remove(&at.0);
                }
            }
            return;
        }
        let s = (at.0 % SLOTS as u64) as usize;
        self.slots[s] &= !(1u64 << id);
        if self.slots[s] == 0 {
            self.occupied[s / 64] &= !(1u64 << (s % 64));
            if self.occupied[s / 64] == 0 {
                self.summary &= !(1u64 << (s / 64));
            }
        }
    }

    /// The earliest pending cycle, without popping.
    #[must_use]
    pub fn next_cycle(&self) -> Option<Cycle> {
        // Every ring cycle precedes every overflow key, so the ring wins
        // whenever it is nonempty.
        self.scan_window()
            .or_else(|| self.overflow.first_key_value().map(|(&k, _)| k))
            .map(Cycle)
    }

    /// Pops the earliest pending cycle and **all** ids due at it, as
    /// `(cycle, id mask)`, advancing the base past the popped cycle.
    /// Returns `None` when the wheel is empty.
    pub fn pop_next(&mut self) -> Option<(Cycle, u64)> {
        loop {
            if let Some(c) = self.scan_window() {
                let s = (c % SLOTS as u64) as usize;
                let mask = self.slots[s];
                debug_assert_ne!(mask, 0, "occupied slot with empty mask");
                self.slots[s] = 0;
                self.occupied[s / 64] &= !(1u64 << (s % 64));
                if self.occupied[s / 64] == 0 {
                    self.summary &= !(1u64 << (s / 64));
                }
                self.base = c + 1;
                self.drain_overflow();
                return Some((Cycle(c), mask));
            }
            // Ring empty: jump the base straight to the first far-future
            // event and pull its cohort into the ring.
            let (&k, _) = self.overflow.first_key_value()?;
            self.base = k;
            self.drain_overflow();
        }
    }

    /// First occupied ring cycle at or after the base, scanning the
    /// occupancy bitmaps cyclically from the base's slot.
    fn scan_window(&self) -> Option<u64> {
        if self.summary == 0 {
            return None;
        }
        let b = (self.base % SLOTS as u64) as usize;
        let (bw, bb) = (b / 64, b % 64);
        let cycle_of = |s: usize| {
            if s >= b {
                self.base + (s - b) as u64
            } else {
                self.base + (SLOTS - b + s) as u64
            }
        };
        // 1. The base's own word, bits at or after the base slot.
        let m = self.occupied[bw] & (!0u64 << bb);
        if m != 0 {
            return Some(cycle_of(bw * 64 + m.trailing_zeros() as usize));
        }
        // 2. Later words, up to the end of the ring.
        let hi = if bw + 1 < WORDS {
            self.summary & (!0u64 << (bw + 1))
        } else {
            0
        };
        if hi != 0 {
            let w = hi.trailing_zeros() as usize;
            return Some(cycle_of(
                w * 64 + self.occupied[w].trailing_zeros() as usize,
            ));
        }
        // 3. Wrapped: words strictly before the base's word...
        let lo = self.summary & ((1u64 << bw) - 1);
        if lo != 0 {
            let w = lo.trailing_zeros() as usize;
            return Some(cycle_of(
                w * 64 + self.occupied[w].trailing_zeros() as usize,
            ));
        }
        // 4. ...then the base's word, bits before the base slot.
        let m = self.occupied[bw] & !(!0u64 << bb);
        if m != 0 {
            return Some(cycle_of(bw * 64 + m.trailing_zeros() as usize));
        }
        None
    }

    /// Moves every overflow event that now fits the ring window into it.
    fn drain_overflow(&mut self) {
        let horizon = self.base + SLOTS as u64;
        while let Some((&k, _)) = self.overflow.first_key_value() {
            if k >= horizon {
                break;
            }
            let m = self.overflow.remove(&k).expect("key just observed");
            let s = (k % SLOTS as u64) as usize;
            self.slots[s] |= m;
            self.occupied[s / 64] |= 1 << (s % 64);
            self.summary |= 1 << (s / 64);
        }
    }
}

impl Default for EventWheel {
    fn default() -> EventWheel {
        EventWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn pops_in_cycle_order_with_same_cycle_ids_batched() {
        let mut w = EventWheel::new();
        w.insert(Cycle(7), 2);
        w.insert(Cycle(3), 5);
        w.insert(Cycle(7), 0);
        assert_eq!(w.next_cycle(), Some(Cycle(3)));
        assert_eq!(w.pop_next(), Some((Cycle(3), 1 << 5)));
        assert_eq!(w.pop_next(), Some((Cycle(7), (1 << 2) | 1)));
        assert_eq!(w.pop_next(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let mut w = EventWheel::new();
        w.insert(Cycle(4), 1);
        w.insert(Cycle(4), 1);
        assert_eq!(w.pop_next(), Some((Cycle(4), 1 << 1)));
        assert_eq!(w.pop_next(), None);
    }

    #[test]
    fn base_advances_past_each_pop() {
        let mut w = EventWheel::new();
        w.insert(Cycle(10), 0);
        assert_eq!(w.pop_next(), Some((Cycle(10), 1)));
        assert_eq!(w.base(), Cycle(11));
        // Re-inserting at the popped cycle is the past now.
        w.insert(Cycle(11), 0);
        assert_eq!(w.pop_next(), Some((Cycle(11), 1)));
    }

    #[test]
    fn ring_wraps_across_the_slot_boundary() {
        let mut w = EventWheel::new();
        // Advance the base deep into the ring, then schedule events whose
        // slots wrap around the ring's end.
        w.insert(Cycle(EventWheel::WINDOW - 2), 0);
        assert_eq!(w.pop_next(), Some((Cycle(EventWheel::WINDOW - 2), 1)));
        w.insert(Cycle(EventWheel::WINDOW - 1), 1); // last slot
        w.insert(Cycle(EventWheel::WINDOW + 5), 2); // wrapped slot 5
        w.insert(Cycle(2 * EventWheel::WINDOW - 3), 3); // window's far edge
        assert_eq!(w.pop_next(), Some((Cycle(EventWheel::WINDOW - 1), 1 << 1)));
        assert_eq!(w.pop_next(), Some((Cycle(EventWheel::WINDOW + 5), 1 << 2)));
        assert_eq!(
            w.pop_next(),
            Some((Cycle(2 * EventWheel::WINDOW - 3), 1 << 3))
        );
        assert_eq!(w.pop_next(), None);
    }

    #[test]
    fn far_future_events_take_the_overflow_path_and_drain_in_order() {
        let mut w = EventWheel::new();
        w.insert(Cycle(1_000_000), 0);
        w.insert(Cycle(500_000), 1);
        w.insert(Cycle(500_000), 2);
        w.insert(Cycle(3), 3);
        assert_eq!(w.pop_next(), Some((Cycle(3), 1 << 3)));
        assert_eq!(w.pop_next(), Some((Cycle(500_000), (1 << 1) | (1 << 2))));
        assert_eq!(w.pop_next(), Some((Cycle(1_000_000), 1)));
        assert_eq!(w.pop_next(), None);
    }

    #[test]
    fn overflow_event_near_events_merge_when_window_advances() {
        let mut w = EventWheel::new();
        // One event just inside the window, one just outside at the same
        // slot index (WINDOW apart): the overflow entry must not clobber
        // or merge with the near one.
        w.insert(Cycle(9), 0);
        w.insert(Cycle(9 + EventWheel::WINDOW), 1);
        assert_eq!(w.pop_next(), Some((Cycle(9), 1)));
        assert_eq!(w.pop_next(), Some((Cycle(9 + EventWheel::WINDOW), 1 << 1)));
    }

    #[test]
    fn cancel_removes_pending_events_everywhere() {
        let mut w = EventWheel::new();
        w.insert(Cycle(5), 0);
        w.insert(Cycle(5), 1);
        w.insert(Cycle(100_000), 2);
        w.cancel(Cycle(5), 0);
        w.cancel(Cycle(100_000), 2);
        w.cancel(Cycle(77), 7); // absent: no-op
        assert_eq!(w.pop_next(), Some((Cycle(5), 1 << 1)));
        assert_eq!(w.pop_next(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn reset_rebases_and_clears() {
        let mut w = EventWheel::new();
        w.insert(Cycle(3), 0);
        w.insert(Cycle(999_999), 1);
        w.reset(Cycle(1_000));
        assert!(w.is_empty());
        assert_eq!(w.base(), Cycle(1_000));
        w.insert(Cycle(1_000), 4);
        assert_eq!(w.pop_next(), Some((Cycle(1_000), 1 << 4)));
    }

    /// Randomized differential test against an ordered-map reference
    /// model, over insert / cancel / pop interleavings spanning the
    /// ring, its wrap boundary, and the overflow path. (The proptest
    /// variant in `tests/proptest_eventwheel.rs` explores the same state
    /// space with shrinkable inputs when the external dependencies are
    /// available.)
    #[test]
    fn matches_an_ordered_map_reference_model() {
        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0x5eed_0000 + seed);
            let mut wheel = EventWheel::new();
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let mut horizon = 0u64; // wheel base lower bound
            for _ in 0..4_000 {
                match rng.next_below(10) {
                    0..=5 => {
                        // Insert near, around the window edge, or far.
                        let spread = match rng.next_below(3) {
                            0 => rng.next_below(64),
                            1 => EventWheel::WINDOW - 32 + rng.next_below(64),
                            _ => rng.next_below(100_000),
                        };
                        let at = horizon + spread;
                        let id = (rng.next_below(64)) as u8;
                        wheel.insert(Cycle(at), id);
                        *model.entry(at).or_insert(0) |= 1 << id;
                    }
                    6..=7 => {
                        let popped = wheel.pop_next();
                        let expect = model.first_key_value().map(|(&k, &m)| (Cycle(k), m));
                        assert_eq!(popped, expect, "seed {seed}");
                        if let Some((c, _)) = popped {
                            model.remove(&c.0);
                            horizon = c.0 + 1;
                        }
                    }
                    _ => {
                        // Cancel a (usually present) pending event.
                        if let Some((&k, &m)) = model.first_key_value() {
                            let id = m.trailing_zeros() as u8;
                            wheel.cancel(Cycle(k), id);
                            let left = m & !(1u64 << id);
                            if left == 0 {
                                model.remove(&k);
                            } else {
                                model.insert(k, left);
                            }
                        }
                    }
                }
            }
            // Drain both to the end.
            loop {
                let popped = wheel.pop_next();
                let expect = model.pop_first().map(|(k, m)| (Cycle(k), m));
                assert_eq!(popped, expect, "seed {seed} drain");
                if popped.is_none() {
                    break;
                }
            }
        }
    }
}
