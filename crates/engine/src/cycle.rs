use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in GPU clock cycles (1.6 GHz).
///
/// All components of the simulator share this single clock domain; slower
/// clocks (e.g. the 1 GHz HBM2 interface) express their timing parameters as
/// GPU-cycle counts.
///
/// # Examples
///
/// ```
/// use miopt_engine::Cycle;
///
/// let start = Cycle(100);
/// let end = start + 25;
/// assert_eq!(end - start, 25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the later of two cycles.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the cycle count elapsed since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Difference in cycles.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self >= rhs, "cycle subtraction underflow");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_round_trip() {
        let c = Cycle(10) + 5;
        assert_eq!(c, Cycle(15));
        assert_eq!(c - Cycle(10), 5);
    }

    #[test]
    fn ordering_follows_time() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(7).max(Cycle(3)), Cycle(7));
        assert_eq!(Cycle(3).max(Cycle(7)), Cycle(7));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Cycle(5).since(Cycle(9)), 0);
        assert_eq!(Cycle(9).since(Cycle(5)), 4);
    }

    /// Regression guard for the `a - b` → `Cycle::since` migration: the
    /// bare operator is reserved for call sites where `a >= b` is a
    /// structural guarantee, and debug builds enforce that loudly.
    /// Elapsed-time computations whose operands can cross (e.g. a
    /// watchdog comparing a warped `now` against an older checkpoint)
    /// must use `since`, which saturates instead.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cycle subtraction underflow")]
    fn sub_underflow_panics_in_debug() {
        let _ = Cycle(5) - Cycle(9);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle(3).to_string(), "cycle 3");
    }
}
