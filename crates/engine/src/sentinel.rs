//! Conservation-invariant checking for simulator components.
//!
//! Every stateful component of the memory system implements [`Sentinel`]:
//! a read-only self-audit that appends one [`InvariantViolation`] per
//! broken conservation law (occupancy within capacity, credits balanced,
//! bookkeeping indices consistent with the structures they index). The
//! system model walks its component tree at a configurable cadence and
//! aggregates the violations; a healthy simulation reports none, ever.
//!
//! Checks are pure observations — they never mutate state and never
//! allocate unless a violation is found — so running them cannot perturb
//! a deterministic simulation.

use std::fmt;

/// One broken invariant, attributed to the component that broke it.
///
/// `component` is a hierarchical path assigned by the caller (for example
/// `"l1[3]"` or `"queue.l2_down[0]"`), so a diagnostic names the exact
/// instance, not just the type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Hierarchical instance path, e.g. `"l1[3].mshr"`.
    pub component: String,
    /// Short stable name of the invariant that failed.
    pub invariant: &'static str,
    /// Human-readable evidence: the observed vs. expected state.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: invariant `{}` violated: {}",
            self.component, self.invariant, self.detail
        )
    }
}

/// A component that can audit its own conservation invariants.
///
/// Implementations push one violation per broken invariant onto `out`
/// (pushing nothing when healthy) under the caller-supplied instance path
/// `component`. Checks must be read-only and side-effect free.
pub trait Sentinel {
    /// Appends a violation to `out` for every invariant currently broken.
    fn check_invariants(&self, component: &str, out: &mut Vec<InvariantViolation>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_names_component_and_invariant() {
        let v = InvariantViolation {
            component: "l1[2]".to_string(),
            invariant: "mshr_occupancy",
            detail: "9 entries > capacity 8".to_string(),
        };
        let s = v.to_string();
        assert!(s.contains("l1[2]"));
        assert!(s.contains("mshr_occupancy"));
        assert!(s.contains("9 entries"));
    }
}
