use crate::sentinel::{InvariantViolation, Sentinel};
use crate::Cycle;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error returned by [`TimedQueue::push`] when the queue is at capacity.
///
/// Carries the rejected item back to the caller so it can be retried (the
/// usual simulator pattern: leave the item at the producer and count a stall
/// cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushFullError<T>(pub T);

impl<T> fmt::Display for PushFullError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("queue is full")
    }
}

impl<T: fmt::Debug> Error for PushFullError<T> {}

/// A capacity-bounded FIFO whose items become visible only after a fixed
/// latency, modeling a pipelined wire or buffer stage.
///
/// Ordering is strictly FIFO: an item can never become ready before one
/// pushed earlier (ready times are made monotonic on push), which mirrors an
/// in-order pipeline.
///
/// # Examples
///
/// ```
/// use miopt_engine::{Cycle, TimedQueue};
///
/// // 2-entry queue with a 3-cycle traversal latency.
/// let mut q = TimedQueue::new(2, 3);
/// q.push(Cycle(0), "a").unwrap();
/// q.push(Cycle(1), "b").unwrap();
/// assert!(q.push(Cycle(1), "c").is_err()); // full
/// assert_eq!(q.pop_ready(Cycle(3)), Some("a"));
/// assert_eq!(q.pop_ready(Cycle(3)), None); // "b" ready at 4
/// assert_eq!(q.pop_ready(Cycle(4)), Some("b"));
/// ```
#[derive(Debug, Clone)]
pub struct TimedQueue<T> {
    items: VecDeque<(Cycle, T)>,
    capacity: usize,
    latency: u64,
    last_ready: Cycle,
    pushed: u64,
    /// Flow-control credits deliberately destroyed by
    /// [`inject_credit_loss`](TimedQueue::inject_credit_loss). Always zero
    /// outside fault-injection tests; the sentinel flags any nonzero value.
    lost_credits: usize,
}

impl<T> TimedQueue<T> {
    /// Creates a queue holding at most `capacity` items, each visible
    /// `latency` cycles after it is pushed.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, latency: u64) -> TimedQueue<T> {
        assert!(capacity > 0, "queue capacity must be nonzero");
        TimedQueue {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            latency,
            last_ready: Cycle::ZERO,
            pushed: 0,
            lost_credits: 0,
        }
    }

    /// The capacity currently usable for pushes: the configured capacity
    /// minus any credits destroyed by fault injection.
    fn effective_capacity(&self) -> usize {
        self.capacity.saturating_sub(self.lost_credits)
    }

    /// Enqueues `item` at time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`PushFullError`] carrying `item` back if the queue is full.
    pub fn push(&mut self, now: Cycle, item: T) -> Result<(), PushFullError<T>> {
        if self.items.len() >= self.effective_capacity() {
            return Err(PushFullError(item));
        }
        let ready = (now + self.latency).max(self.last_ready);
        self.last_ready = ready;
        self.items.push_back((ready, item));
        self.pushed += 1;
        Ok(())
    }

    /// Whether a push at time `now` would succeed.
    #[must_use]
    pub fn can_push(&self) -> bool {
        self.items.len() < self.effective_capacity()
    }

    /// How many more items can be pushed before the queue is full.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.effective_capacity().saturating_sub(self.items.len())
    }

    /// The front item, if it has traversed the queue by `now`.
    #[must_use]
    pub fn ready_front(&self, now: Cycle) -> Option<&T> {
        match self.items.front() {
            Some((ready, item)) if *ready <= now => Some(item),
            _ => None,
        }
    }

    /// Removes and returns the front item if it is ready at `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.ready_front(now).is_some() {
            self.items.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Number of items in flight or waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured traversal latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Cumulative count of successful pushes over the queue's lifetime
    /// (a monotonic traffic counter; telemetry samples it per epoch).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The cycle at which the front item becomes (or became) ready, or
    /// `None` on an empty queue. Unlike [`TimedQueue::ready_front`] this
    /// looks *forward* in time: it is the queue's contribution to the
    /// event-driven fast forward — no pop can succeed before this cycle,
    /// so a scheduler may safely skip straight to it.
    #[must_use]
    pub fn next_ready(&self) -> Option<Cycle> {
        self.items.front().map(|(ready, _)| *ready)
    }

    /// Iterates over queued items front to back, ignoring readiness.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter().map(|(_, item)| item)
    }

    /// Drains every item regardless of readiness (used at end-of-run).
    pub fn drain_all(&mut self) -> impl Iterator<Item = T> + '_ {
        self.items.drain(..).map(|(_, item)| item)
    }

    /// Iterates over queued `(ready_cycle, item)` pairs front to back
    /// (used by stall diagnostics to find the oldest in-flight item).
    pub fn iter_timed(&self) -> impl Iterator<Item = (Cycle, &T)> {
        self.items.iter().map(|(ready, item)| (*ready, item))
    }

    /// Fault-injection hook: permanently destroys one flow-control credit,
    /// shrinking the queue's usable capacity by one.
    ///
    /// This models a credit-return bug in a flow-controlled link. It exists
    /// solely to validate the sentinel: the
    /// [`credit_conservation`](Sentinel::check_invariants) invariant must
    /// flag the queue on the next check. Never called by the simulator
    /// itself.
    pub fn inject_credit_loss(&mut self) {
        self.lost_credits += 1;
    }
}

impl<T> Sentinel for TimedQueue<T> {
    fn check_invariants(&self, component: &str, out: &mut Vec<InvariantViolation>) {
        if self.lost_credits != 0 {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "credit_conservation",
                detail: format!(
                    "{} flow-control credit(s) lost: usable capacity {} < configured {}",
                    self.lost_credits,
                    self.effective_capacity(),
                    self.capacity
                ),
            });
        }
        if self.items.len() > self.capacity {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "queue_occupancy",
                detail: format!(
                    "{} items enqueued > capacity {}",
                    self.items.len(),
                    self.capacity
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_latency() {
        let mut q = TimedQueue::new(8, 5);
        q.push(Cycle(10), 1u32).unwrap();
        assert!(q.pop_ready(Cycle(14)).is_none());
        assert_eq!(q.pop_ready(Cycle(15)), Some(1));
    }

    #[test]
    fn zero_latency_is_same_cycle() {
        let mut q = TimedQueue::new(8, 0);
        q.push(Cycle(10), 1u32).unwrap();
        assert_eq!(q.pop_ready(Cycle(10)), Some(1));
    }

    #[test]
    fn rejects_when_full_and_returns_item() {
        let mut q = TimedQueue::new(1, 0);
        q.push(Cycle(0), 1u32).unwrap();
        let err = q.push(Cycle(0), 2u32).unwrap_err();
        assert_eq!(err.0, 2);
        assert!(!q.can_push());
        q.pop_ready(Cycle(0));
        assert!(q.can_push());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = TimedQueue::new(8, 2);
        for i in 0..5u32 {
            q.push(Cycle(i as u64), i).unwrap();
        }
        let mut got = Vec::new();
        while let Some(v) = q.pop_ready(Cycle(100)) {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ready_times_are_monotonic() {
        let mut q = TimedQueue::new(8, 10);
        q.push(Cycle(100), 'a').unwrap(); // ready at 110
        q.push(Cycle(0), 'b').unwrap(); // naively ready at 10, clamped to 110
        assert!(q.pop_ready(Cycle(109)).is_none());
        assert_eq!(q.pop_ready(Cycle(110)), Some('a'));
        assert_eq!(q.pop_ready(Cycle(110)), Some('b'));
    }

    #[test]
    fn pushed_counts_only_accepted_items() {
        let mut q = TimedQueue::new(1, 0);
        q.push(Cycle(0), 1u32).unwrap();
        let _ = q.push(Cycle(0), 2u32); // rejected: full
        assert_eq!(q.pushed(), 1);
        q.pop_ready(Cycle(0));
        q.push(Cycle(1), 3u32).unwrap();
        assert_eq!(q.pushed(), 2);
    }

    #[test]
    fn drain_ignores_readiness() {
        let mut q = TimedQueue::new(8, 1000);
        q.push(Cycle(0), 1u32).unwrap();
        q.push(Cycle(0), 2u32).unwrap();
        let all: Vec<_> = q.drain_all().collect();
        assert_eq!(all, vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = TimedQueue::<u32>::new(0, 1);
    }

    #[test]
    fn healthy_queue_reports_no_violations() {
        let mut q = TimedQueue::new(2, 0);
        q.push(Cycle(0), 1u32).unwrap();
        let mut out = Vec::new();
        q.check_invariants("queue.test", &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn credit_loss_shrinks_capacity_and_trips_the_sentinel() {
        let mut q = TimedQueue::new(2, 0);
        q.inject_credit_loss();
        assert_eq!(q.free_slots(), 1);
        q.push(Cycle(0), 1u32).unwrap();
        assert!(!q.can_push(), "lost credit must shrink usable capacity");
        let mut out = Vec::new();
        q.check_invariants("queue.l1_in[0]", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].component, "queue.l1_in[0]");
        assert_eq!(out[0].invariant, "credit_conservation");
        assert!(out[0].detail.contains("1 flow-control credit"));
    }

    #[test]
    fn next_ready_reports_the_front_deadline() {
        let mut q = TimedQueue::new(4, 10);
        assert_eq!(q.next_ready(), None);
        q.push(Cycle(5), 'a').unwrap(); // ready at 15
        q.push(Cycle(100), 'b').unwrap(); // ready at 110
        assert_eq!(q.next_ready(), Some(Cycle(15)));
        assert!(q.pop_ready(Cycle(14)).is_none());
        assert_eq!(q.pop_ready(Cycle(15)), Some('a'));
        assert_eq!(q.next_ready(), Some(Cycle(110)));
    }

    #[test]
    fn iter_timed_exposes_ready_cycles() {
        let mut q = TimedQueue::new(4, 10);
        q.push(Cycle(5), 'a').unwrap();
        let timed: Vec<_> = q.iter_timed().collect();
        assert_eq!(timed, vec![(Cycle(15), &'a')]);
    }
}
