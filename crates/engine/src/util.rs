//! Arithmetic helpers for geometry calculations.

/// Ceiling division: the smallest `q` with `q * b >= a`.
///
/// # Examples
///
/// ```
/// use miopt_engine::util::ceil_div;
///
/// assert_eq!(ceil_div(10, 4), 3);
/// assert_eq!(ceil_div(8, 4), 2);
/// assert_eq!(ceil_div(0, 4), 0);
/// ```
///
/// # Panics
///
/// Panics if `b` is zero.
#[must_use]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    assert!(b != 0, "division by zero");
    a.div_ceil(b)
}

/// Whether `x` is a power of two (zero is not).
///
/// # Examples
///
/// ```
/// use miopt_engine::util::is_pow2;
///
/// assert!(is_pow2(64));
/// assert!(!is_pow2(0));
/// assert!(!is_pow2(12));
/// ```
#[must_use]
pub fn is_pow2(x: u64) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// Base-2 logarithm of a power of two.
///
/// # Examples
///
/// ```
/// use miopt_engine::util::log2;
///
/// assert_eq!(log2(64), 6);
/// ```
///
/// # Panics
///
/// Panics if `x` is not a power of two.
#[must_use]
pub fn log2(x: u64) -> u32 {
    assert!(is_pow2(x), "log2 requires a power of two, got {x}");
    x.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_rounds_up() {
        assert_eq!(ceil_div(1, 64), 1);
        assert_eq!(ceil_div(64, 64), 1);
        assert_eq!(ceil_div(65, 64), 2);
    }

    #[test]
    fn pow2_detection() {
        for i in 0..63 {
            assert!(is_pow2(1u64 << i));
        }
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(6));
    }

    #[test]
    fn log2_inverts_shift() {
        for i in 0..63u32 {
            assert_eq!(log2(1u64 << i), i);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn log2_rejects_non_pow2() {
        let _ = log2(5);
    }
}

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// Used for stable, platform-independent identity hashes (workload ids,
/// experiment cache keys, config fingerprints). Unlike
/// `std::collections::hash_map::DefaultHasher`, the digest is specified
/// and stable across Rust releases, so it is safe to persist.
///
/// # Examples
///
/// ```
/// use miopt_engine::util::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"FwSoft");
/// h.write_u64(1 << 16);
/// let a = h.finish();
/// assert_ne!(a, Fnv1a::new().finish());
/// assert_eq!(a, {
///     let mut h = Fnv1a::new();
///     h.write(b"FwSoft");
///     h.write_u64(1 << 16);
///     h.finish()
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher in its initial state.
    #[must_use]
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a 64-bit hash of a byte slice.
///
/// # Examples
///
/// ```
/// use miopt_engine::util::fnv1a_64;
///
/// // Specified test vector for FNV-1a 64.
/// assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
/// ```
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}
