//! Arithmetic helpers for geometry calculations.

/// Ceiling division: the smallest `q` with `q * b >= a`.
///
/// # Examples
///
/// ```
/// use miopt_engine::util::ceil_div;
///
/// assert_eq!(ceil_div(10, 4), 3);
/// assert_eq!(ceil_div(8, 4), 2);
/// assert_eq!(ceil_div(0, 4), 0);
/// ```
///
/// # Panics
///
/// Panics if `b` is zero.
#[must_use]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    assert!(b != 0, "division by zero");
    a.div_ceil(b)
}

/// Whether `x` is a power of two (zero is not).
///
/// # Examples
///
/// ```
/// use miopt_engine::util::is_pow2;
///
/// assert!(is_pow2(64));
/// assert!(!is_pow2(0));
/// assert!(!is_pow2(12));
/// ```
#[must_use]
pub fn is_pow2(x: u64) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// Base-2 logarithm of a power of two.
///
/// # Examples
///
/// ```
/// use miopt_engine::util::log2;
///
/// assert_eq!(log2(64), 6);
/// ```
///
/// # Panics
///
/// Panics if `x` is not a power of two.
#[must_use]
pub fn log2(x: u64) -> u32 {
    assert!(is_pow2(x), "log2 requires a power of two, got {x}");
    x.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_rounds_up() {
        assert_eq!(ceil_div(1, 64), 1);
        assert_eq!(ceil_div(64, 64), 1);
        assert_eq!(ceil_div(65, 64), 2);
    }

    #[test]
    fn pow2_detection() {
        for i in 0..63 {
            assert!(is_pow2(1u64 << i));
        }
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(6));
    }

    #[test]
    fn log2_inverts_shift() {
        for i in 0..63u32 {
            assert_eq!(log2(1u64 << i), i);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn log2_rejects_non_pow2() {
        let _ = log2(5);
    }
}
