//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible for a fixed seed (experiments are
//! compared across configurations), so it carries its own tiny PRNG instead
//! of depending on `rand`'s ambient entropy. SplitMix64 (Steele et al.) has
//! excellent statistical quality for the light uses here: randomized kernel
//! selection jitter and workload value initialization.

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use miopt_engine::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire); bias is negligible for
    /// the bounds used in the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Default for SplitMix64 {
    fn default() -> SplitMix64 {
        SplitMix64::new(0x5EED_CAFE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let xs: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let ys: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = SplitMix64::new(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
