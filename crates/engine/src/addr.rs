use std::fmt;

/// Size of a cache line / DRAM burst in bytes (Table 1: 64 B lines).
pub const LINE_BYTES: u64 = 64;

/// A byte address in the unified CPU-GPU address space.
///
/// # Examples
///
/// ```
/// use miopt_engine::{Addr, LINE_BYTES};
///
/// let a = Addr(130);
/// assert_eq!(a.line().byte_addr(), Addr(128));
/// assert_eq!(a.line_offset(), 2);
/// assert_eq!(LINE_BYTES, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    #[must_use]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Byte offset of this address within its cache line.
    #[must_use]
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Addr {
        Addr(v)
    }
}

/// A cache-line-granular address: the byte address divided by [`LINE_BYTES`].
///
/// All traffic below the coalescer (caches, crossbar, DRAM) is line-granular,
/// so this is the address type carried by [`crate::MemReq`].
///
/// # Examples
///
/// ```
/// use miopt_engine::{Addr, LineAddr};
///
/// let l = LineAddr(2);
/// assert_eq!(l.byte_addr(), Addr(128));
/// assert_eq!(Addr(129).line(), l);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first byte address of this line.
    #[must_use]
    pub fn byte_addr(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The line `n` lines after this one.
    #[must_use]
    pub fn offset(self, n: u64) -> LineAddr {
        LineAddr(self.0 + n)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rounds_down() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(63).line(), LineAddr(0));
        assert_eq!(Addr(64).line(), LineAddr(1));
        assert_eq!(Addr(6400).line(), LineAddr(100));
    }

    #[test]
    fn byte_addr_round_trips() {
        for l in [0u64, 1, 7, 1 << 30] {
            assert_eq!(LineAddr(l).byte_addr().line(), LineAddr(l));
        }
    }

    #[test]
    fn offset_within_line() {
        assert_eq!(Addr(64 + 17).line_offset(), 17);
        assert_eq!(Addr(64).line_offset(), 0);
    }

    #[test]
    fn line_offset_advances() {
        assert_eq!(LineAddr(10).offset(5), LineAddr(15));
    }
}
