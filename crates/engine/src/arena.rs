//! A generational slab arena and intrusive handle FIFOs — the
//! zero-allocation backbone of the simulator's hot path.
//!
//! An [`Arena`] owns a slab of `T` slots with an embedded free list, so
//! steady-state `insert`/`remove` traffic reuses slots and never touches
//! the heap once the slab has grown to the working-set high-water mark
//! (pre-size it with [`Arena::with_capacity`] to never allocate at all).
//! Values are addressed by small copyable [`Handle`]s — 4 bytes in
//! release builds; debug builds add a generation counter so a stale
//! handle (one whose slot has since been freed and reused) is caught at
//! the access site instead of silently aliasing the new occupant.
//!
//! Each slot also carries an intrusive `next` link, so any number of
//! [`HandleFifo`]s can queue arena values without owning storage of their
//! own: a FIFO is just `{head, tail, len}` — pushing and popping moves
//! 4-byte handles and rewires links, never the values. A slot can sit in
//! at most one FIFO at a time (the same field threads the free list).
//!
//! # Examples
//!
//! ```
//! use miopt_engine::arena::{Arena, HandleFifo};
//!
//! let mut arena: Arena<&str> = Arena::with_capacity(4);
//! let mut fifo = HandleFifo::new();
//! let a = arena.insert("a");
//! fifo.push_back(&mut arena, a);
//! let b = arena.insert("b");
//! fifo.push_back(&mut arena, b);
//! assert_eq!(fifo.len(), 2);
//! assert_eq!(fifo.pop_value(&mut arena), Some("a"));
//! assert_eq!(fifo.pop_value(&mut arena), Some("b"));
//! assert_eq!(fifo.pop_value(&mut arena), None);
//! assert!(arena.is_empty());
//! ```

use std::fmt;

/// Sentinel index meaning "no slot" (free-list end, FIFO end).
const NIL: u32 = u32::MAX;

/// A copyable reference to a value in an [`Arena`].
///
/// 4 bytes in release builds. Debug builds carry the slot's generation
/// at allocation time, and every dereference asserts it still matches —
/// so use-after-free of a handle panics instead of reading whatever
/// value reused the slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    idx: u32,
    #[cfg(debug_assertions)]
    gen: u32,
}

impl fmt::Debug for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Handle({})", self.idx)
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    /// Occupied payload, or `None` for a slot on the free list.
    val: Option<T>,
    /// Intrusive link: next free slot while on the free list, next queue
    /// member while threaded into a [`HandleFifo`].
    next: u32,
    /// Bumped on every free; detects stale handles (debug builds only).
    #[cfg(debug_assertions)]
    gen: u32,
}

/// A generational slab arena with free-list slot reuse.
///
/// See the [module docs](self) for the design.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Arena<T> {
    /// An empty arena. Grows on demand; prefer
    /// [`Arena::with_capacity`] on hot paths.
    #[must_use]
    pub fn new() -> Arena<T> {
        Arena::with_capacity(0)
    }

    /// An empty arena with `cap` slots preallocated: the first `cap`
    /// inserts (net of removes) are allocation-free.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Arena<T> {
        let mut a = Arena {
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            len: 0,
        };
        a.prefill(cap);
        a
    }

    /// Links `extra` fresh slots onto the free list.
    fn prefill(&mut self, extra: usize) {
        for _ in 0..extra {
            let idx = u32::try_from(self.slots.len()).expect("arena slot count fits u32");
            self.slots.push(Slot {
                val: None,
                next: self.free_head,
                #[cfg(debug_assertions)]
                gen: 0,
            });
            self.free_head = idx;
        }
    }

    /// Number of live values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no live values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots (live + free): the allocation high-water mark.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Stores `val`, reusing a free slot if one exists.
    pub fn insert(&mut self, val: T) -> Handle {
        if self.free_head == NIL {
            // High-water mark reached: grow the slab by one slot.
            self.prefill(1);
        }
        let idx = self.free_head;
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.val.is_none(), "free-list slot must be vacant");
        self.free_head = slot.next;
        slot.val = Some(val);
        slot.next = NIL;
        self.len += 1;
        Handle {
            idx,
            #[cfg(debug_assertions)]
            gen: slot.gen,
        }
    }

    /// Removes and returns the value behind `h`, returning its slot to
    /// the free list.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already free; debug builds also panic if `h`
    /// is stale (the slot was freed and reused since `h` was issued).
    pub fn remove(&mut self, h: Handle) -> T {
        self.check_gen(h);
        let slot = &mut self.slots[h.idx as usize];
        let val = slot.val.take().expect("handle points at a freed slot");
        #[cfg(debug_assertions)]
        {
            slot.gen = slot.gen.wrapping_add(1);
        }
        slot.next = self.free_head;
        self.free_head = h.idx;
        self.len -= 1;
        val
    }

    /// The value behind `h`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free; debug builds also panic on a stale
    /// handle.
    #[must_use]
    pub fn get(&self, h: Handle) -> &T {
        self.check_gen(h);
        self.slots[h.idx as usize]
            .val
            .as_ref()
            .expect("handle points at a freed slot")
    }

    /// Mutable access to the value behind `h`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free; debug builds also panic on a stale
    /// handle.
    #[must_use]
    pub fn get_mut(&mut self, h: Handle) -> &mut T {
        self.check_gen(h);
        self.slots[h.idx as usize]
            .val
            .as_mut()
            .expect("handle points at a freed slot")
    }

    #[inline]
    #[allow(unused_variables)]
    fn check_gen(&self, h: Handle) {
        #[cfg(debug_assertions)]
        {
            let slot = &self.slots[h.idx as usize];
            assert!(
                slot.gen == h.gen,
                "stale arena handle: slot {} is at generation {}, handle was issued at {}",
                h.idx,
                slot.gen,
                h.gen
            );
        }
    }

    /// Rebuilds a `Handle` for a raw slot index known to be occupied
    /// (internal: FIFO traversal).
    fn handle_at(&self, idx: u32) -> Handle {
        Handle {
            idx,
            #[cfg(debug_assertions)]
            gen: self.slots[idx as usize].gen,
        }
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Arena<T> {
        Arena::new()
    }
}

/// An intrusive FIFO of arena values.
///
/// Owns no storage: members are threaded through their arena slots'
/// embedded `next` links, so push/pop move 4-byte handles only. All
/// operations take the backing arena; using a FIFO against an arena
/// other than the one its members live in is a logic error (caught by
/// the debug generation checks in practice).
#[derive(Debug, Clone, Copy)]
pub struct HandleFifo {
    head: u32,
    tail: u32,
    len: u32,
}

impl HandleFifo {
    /// An empty FIFO.
    #[must_use]
    pub fn new() -> HandleFifo {
        HandleFifo {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of queued values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the FIFO is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `h` (a live handle of `arena`) at the back.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `h` is stale.
    pub fn push_back<T>(&mut self, arena: &mut Arena<T>, h: Handle) {
        arena.check_gen(h);
        debug_assert!(
            arena.slots[h.idx as usize].next == NIL,
            "handle is already threaded into a queue"
        );
        if self.tail == NIL {
            self.head = h.idx;
        } else {
            arena.slots[self.tail as usize].next = h.idx;
        }
        self.tail = h.idx;
        self.len += 1;
    }

    /// The front handle without removing it.
    #[must_use]
    pub fn front<T>(&self, arena: &Arena<T>) -> Option<Handle> {
        (self.head != NIL).then(|| arena.handle_at(self.head))
    }

    /// Removes and returns the front handle (the value stays in the
    /// arena).
    pub fn pop_front<T>(&mut self, arena: &mut Arena<T>) -> Option<Handle> {
        if self.head == NIL {
            return None;
        }
        let idx = self.head;
        let h = arena.handle_at(idx);
        self.head = arena.slots[idx as usize].next;
        arena.slots[idx as usize].next = NIL;
        if self.head == NIL {
            self.tail = NIL;
        }
        self.len -= 1;
        Some(h)
    }

    /// Removes the front handle and frees its value out of the arena in
    /// one step.
    pub fn pop_value<T>(&mut self, arena: &mut Arena<T>) -> Option<T> {
        let h = self.pop_front(arena)?;
        Some(arena.remove(h))
    }

    /// Iterates over the queued values front to back.
    pub fn iter<'a, T>(&self, arena: &'a Arena<T>) -> impl Iterator<Item = &'a T> {
        let mut idx = self.head;
        std::iter::from_fn(move || {
            if idx == NIL {
                return None;
            }
            let slot = &arena.slots[idx as usize];
            idx = slot.next;
            Some(slot.val.as_ref().expect("queued slot is occupied"))
        })
    }
}

impl Default for HandleFifo {
    fn default() -> HandleFifo {
        HandleFifo::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a: Arena<u64> = Arena::new();
        let h1 = a.insert(10);
        let h2 = a.insert(20);
        assert_eq!(*a.get(h1), 10);
        *a.get_mut(h2) += 1;
        assert_eq!(a.remove(h2), 21);
        assert_eq!(a.remove(h1), 10);
        assert!(a.is_empty());
    }

    #[test]
    fn slots_are_reused_without_growth() {
        let mut a: Arena<u32> = Arena::with_capacity(2);
        assert_eq!(a.capacity(), 2);
        for round in 0..100 {
            let h1 = a.insert(round);
            let h2 = a.insert(round + 1);
            assert_eq!(a.remove(h1), round);
            assert_eq!(a.remove(h2), round + 1);
        }
        assert_eq!(a.capacity(), 2, "steady churn must reuse the two slots");
    }

    #[test]
    fn grows_past_the_preallocation() {
        let mut a: Arena<u8> = Arena::with_capacity(1);
        let h1 = a.insert(1);
        let h2 = a.insert(2);
        assert_eq!(a.capacity(), 2);
        assert_eq!(*a.get(h1), 1);
        assert_eq!(*a.get(h2), 2);
    }

    #[test]
    fn fifo_preserves_order_across_interleaved_ops() {
        let mut a: Arena<u32> = Arena::with_capacity(8);
        let mut q = HandleFifo::new();
        for i in 0..5 {
            let h = a.insert(i);
            q.push_back(&mut a, h);
        }
        assert_eq!(q.pop_value(&mut a), Some(0));
        let h5 = a.insert(5);
        q.push_back(&mut a, h5);
        let seen: Vec<u32> = q.iter(&a).copied().collect();
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        let mut drained = Vec::new();
        while let Some(v) = q.pop_value(&mut a) {
            drained.push(v);
        }
        assert_eq!(drained, vec![1, 2, 3, 4, 5]);
        assert!(q.is_empty());
        assert!(a.is_empty());
    }

    #[test]
    fn pop_front_keeps_the_value_alive() {
        let mut a: Arena<&str> = Arena::new();
        let mut q = HandleFifo::new();
        let hx = a.insert("x");
        q.push_back(&mut a, hx);
        let h = q.pop_front(&mut a).unwrap();
        assert!(q.is_empty());
        assert_eq!(*a.get(h), "x");
        assert_eq!(a.remove(h), "x");
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut a: Arena<u32> = Arena::new();
        let mut q = HandleFifo::new();
        assert!(q.front(&a).is_none());
        let h = a.insert(7);
        q.push_back(&mut a, h);
        assert_eq!(q.front(&a), Some(h));
        assert_eq!(q.len(), 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn stale_handle_panics_in_debug() {
        let mut a: Arena<u32> = Arena::with_capacity(1);
        let h = a.insert(1);
        a.remove(h);
        let _reused = a.insert(2); // same slot, new generation
        let _ = a.get(h); // stale: must panic
    }

    #[test]
    #[should_panic] // "stale arena handle" in debug builds (the generation
                    // bump fires first), "freed slot" in release builds.
    fn freed_slot_access_panics() {
        let mut a: Arena<u32> = Arena::with_capacity(2);
        let h = a.insert(1);
        a.remove(h);
        // No reuse in between: the slot is simply vacant.
        let _ = a.get(h);
    }
}
