//! Heap-allocation accounting shared with opt-in counting allocators.
//!
//! The engine itself installs no allocator (this crate forbids `unsafe`).
//! Instead, a binary that wants allocation counts — the `zero_alloc`
//! steady-state test, the `sim_throughput` hot-path profile — installs
//! its own `#[global_allocator]` wrapper around the system allocator and
//! reports every allocation here. The simulator's profiler then reads
//! [`count`] deltas around each event dispatch to attribute allocations
//! per actor.
//!
//! When no counting allocator is installed, [`installed`] is `false` and
//! [`count`] stays at zero; readers treat the counts as "not measured"
//! rather than "zero".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Cumulative heap allocations (calls to `alloc`/`realloc`) observed by
/// the installed counting allocator.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Whether a counting allocator has announced itself.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Called by a counting `#[global_allocator]` once per allocation.
///
/// Relaxed ordering: the counter is a statistic, not a synchronization
/// point.
#[inline]
pub fn note_alloc() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Declares that a counting allocator is active in this process (call
/// once from the binary that installs it, before measuring).
pub fn set_installed() {
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Whether allocation counts are being collected in this process.
#[must_use]
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// The cumulative allocation count (zero when no counting allocator is
/// installed).
#[must_use]
pub fn count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_notes() {
        // No counting allocator in the unit-test binary: exercise the
        // plumbing directly.
        let before = count();
        note_alloc();
        note_alloc();
        assert!(count() >= before + 2);
    }
}
