//! Simulation kernel for the `miopt` GPU memory-system simulator.
//!
//! This crate provides the building blocks shared by every other `miopt`
//! crate:
//!
//! * [`Cycle`] — the simulated GPU clock (all timing in the workspace is
//!   expressed in GPU cycles at 1.6 GHz).
//! * Address newtypes ([`Addr`], [`LineAddr`]) and the cache-line geometry.
//! * The memory request/response types ([`MemReq`], [`MemResp`]) that flow
//!   between compute units, caches, the crossbar and DRAM.
//! * [`TimedQueue`] — a latency- and capacity-bounded FIFO used to model
//!   every pipeline stage and wire in the system.
//! * [`EventWheel`] — the calendar queue that drives the discrete-event
//!   execution core (components schedule their own wakeups instead of
//!   being polled every cycle).
//! * [`Arena`] / [`HandleFifo`] — the generational slab arena and
//!   intrusive handle queues that keep the steady-state hot path
//!   allocation-free, with [`alloc_track`] as the shared counter that
//!   opt-in counting allocators report into.
//! * [`hash::Fnv1a`] — the single stable FNV-1a 64 implementation behind
//!   every persisted digest in the workspace.
//! * Deterministic pseudo-random number generation ([`rng::SplitMix64`]).
//! * Small statistics helpers ([`stats`]).
//! * The [`Sentinel`] trait and [`InvariantViolation`] type used by every
//!   component to self-audit its conservation invariants.
//!
//! # Examples
//!
//! ```
//! use miopt_engine::{Cycle, TimedQueue};
//!
//! let mut q: TimedQueue<u32> = TimedQueue::new(4, 10);
//! q.push(Cycle(0), 7).unwrap();
//! assert!(q.pop_ready(Cycle(5)).is_none()); // still in flight
//! assert_eq!(q.pop_ready(Cycle(10)), Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod alloc_track;
pub mod arena;
mod cycle;
mod event;
pub mod hash;
mod queue;
mod req;
pub mod rng;
pub mod sentinel;
pub mod stats;
pub mod util;

pub use addr::{Addr, LineAddr, LINE_BYTES};
pub use arena::{Arena, Handle, HandleFifo};
pub use cycle::Cycle;
pub use event::EventWheel;
pub use queue::{PushFullError, TimedQueue};
pub use req::{AccessKind, MemReq, MemResp, Origin, Pc, ReqId};
pub use sentinel::{InvariantViolation, Sentinel};
