//! Stable, platform-independent identity hashing.
//!
//! Every persisted or cross-process digest in the workspace — WAL frame
//! checksums (`miopt-store`), sweep-journal fingerprints, result-cache
//! keys, config/provenance fingerprints, workload ids, arrival-schedule
//! hashes — goes through the one [`Fnv1a`] implementation here. Unlike
//! `std::collections::hash_map::DefaultHasher`, the digest is specified
//! (FNV-1a 64) and stable across Rust releases, so it is safe to write to
//! disk and compare across builds.
//!
//! The constants and the empty-input digest are pinned by tests against
//! the published FNV-1a 64 test vectors, so no caller needs to re-derive
//! (or hand-roll) the algorithm.

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// # Examples
///
/// ```
/// use miopt_engine::hash::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"FwSoft");
/// h.write_u64(1 << 16);
/// let a = h.finish();
/// assert_ne!(a, Fnv1a::new().finish());
/// assert_eq!(a, {
///     let mut h = Fnv1a::new();
///     h.write(b"FwSoft");
///     h.write_u64(1 << 16);
///     h.finish()
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher in its initial state.
    #[must_use]
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a 64-bit hash of a byte slice.
///
/// # Examples
///
/// ```
/// use miopt_engine::hash::fnv1a_64;
///
/// // Specified test vector for FNV-1a 64.
/// assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
/// ```
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a 64 test vectors (Fowler/Noll/Vo reference
    /// implementation, <http://www.isthe.com/chongo/tech/comp/fnv/>).
    #[test]
    fn pinned_reference_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn write_u64_is_little_endian_bytes() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
    }
}
