//! Golden-results regression tests: Figure 6 and Figure 10 series
//! compared against checked-in CSVs, tolerance-free.
//!
//! The simulator is deterministic and the results layer round-trips
//! bit-exactly, so the figures must reproduce **character for
//! character** — any diff here is a behaviour change that needs either a
//! fix or a deliberate golden update. To regenerate after an intentional
//! change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p miopt-harness --test golden
//! GOLDEN_REGEN=1 cargo test --release -p miopt-harness --test golden -- --include-ignored
//! ```
//!
//! and commit the rewritten files under `tests/golden/`.

use miopt::runner::SweepSpec;
use miopt::SystemConfig;
use miopt_harness::figures::{fig10, fig6};
use miopt_harness::sweep::{run_sweep, SweepOptions};
use miopt_workloads::{by_name, suite, SuiteConfig, Workload};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` with the checked-in golden, or rewrites the golden
/// when `GOLDEN_REGEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} diverged from the checked-in golden (tolerance-free comparison); \
         if the change is intentional, regenerate with GOLDEN_REGEN=1"
    );
}

/// Runs the figures grid for `workloads` and checks fig6/fig10 CSVs.
fn check_fig6_fig10(workloads: Vec<Workload>, tag: &str) {
    let spec = Arc::new(SweepSpec::figures(SystemConfig::small_test(), workloads));
    let run = run_sweep(&spec, &format!("golden-{tag}"), &SweepOptions::default());
    let results = run.results(&spec).expect("golden sweep jobs succeed");
    let statics = spec.assemble_statics(&results);
    let ladders = spec.assemble_ladders(&results);
    check_golden(&format!("fig6_{tag}.csv"), &fig6(&statics).to_csv());
    check_golden(&format!("fig10_{tag}.csv"), &fig10(&ladders).to_csv());
}

/// A category-spanning subset, cheap enough for debug-mode `cargo test`.
#[test]
fn fig6_and_fig10_match_goldens_subset() {
    let s = SuiteConfig::quick();
    let workloads = ["FwSoft", "BwSoft", "FwPool"]
        .iter()
        .map(|n| by_name(&s, n).expect("suite workload"))
        .collect();
    check_fig6_fig10(workloads, "subset");
}

/// The full quick-scale suite. Debug simulations of the big workloads
/// take tens of minutes, so this runs only under `--release` (e.g.
/// `scripts/ci.sh`).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full suite is release-only; run cargo test --release"
)]
fn fig6_and_fig10_match_goldens_full_quick_suite() {
    check_fig6_fig10(suite(&SuiteConfig::quick()), "quick");
}
