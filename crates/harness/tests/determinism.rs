//! The load-bearing guarantee of `miopt-harness`: a parallel sweep is
//! byte-identical to a serial one.
//!
//! Runs the full quick-scale workload suite (17 workloads, all six
//! policy configurations) once on one worker and once on four, and
//! requires bit-equal [`Metrics`] per job plus identical figure CSV
//! rows. The small test machine keeps the 102 simulations fast; the
//! determinism argument is scale-independent because results are
//! assembled by job id, never by completion order.

use miopt::runner::SweepSpec;
use miopt::SystemConfig;
use miopt_harness::figures::{fig10, fig6};
use miopt_harness::pool::PoolOptions;
use miopt_harness::sweep::{run_sweep, SweepOptions, SweepRun};
use miopt_workloads::{suite, SuiteConfig};
use std::sync::Arc;

fn run_with(spec: &Arc<SweepSpec>, workers: usize, name: &str) -> SweepRun {
    let opts = SweepOptions {
        pool: PoolOptions {
            workers,
            ..PoolOptions::default()
        },
        cache: None,
    };
    run_sweep(spec, name, &opts)
}

fn assert_byte_identical(spec: &Arc<SweepSpec>) {
    let serial = run_with(spec, 1, "det-serial");
    let parallel = run_with(spec, 4, "det-parallel");

    // Per-job: same job in the same slot, bit-equal metrics.
    assert_eq!(serial.outcomes.len(), spec.job_count());
    assert_eq!(parallel.outcomes.len(), spec.job_count());
    for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(a.job, b.job, "outcome slots must follow job ids");
        let (ra, rb) = (
            a.result.as_ref().expect("serial job ok"),
            b.result.as_ref().expect("parallel job ok"),
        );
        assert_eq!(
            ra.metrics,
            rb.metrics,
            "metrics must be bit-identical for {}",
            spec.job_label(&a.job)
        );
    }

    // Figure-level: the rendered CSV rows are identical strings.
    let ra = serial.results(spec).unwrap();
    let rb = parallel.results(spec).unwrap();
    let (sa, sb) = (spec.assemble_statics(&ra), spec.assemble_statics(&rb));
    assert_eq!(fig6(&sa).to_csv(), fig6(&sb).to_csv());
    let (la, lb) = (spec.assemble_ladders(&ra), spec.assemble_ladders(&rb));
    assert_eq!(fig10(&la).to_csv(), fig10(&lb).to_csv());

    // And the reports carry matching cache keys (identity is execution-
    // independent) with honest worker counts.
    for (a, b) in serial.report.jobs.iter().zip(&parallel.report.jobs) {
        assert_eq!(a.cache_key, b.cache_key);
    }
    assert_eq!(serial.report.provenance.workers, 1);
    assert_eq!(parallel.report.provenance.workers, 4);
}

/// A category-spanning subset, cheap enough for debug-mode `cargo test`.
#[test]
fn parallel_sweep_is_byte_identical_to_serial_subset() {
    let s = SuiteConfig::quick();
    let workloads = ["FwSoft", "BwSoft", "FwPool"]
        .iter()
        .map(|n| miopt_workloads::by_name(&s, n).expect("suite workload"))
        .collect();
    let spec = Arc::new(SweepSpec::figures(SystemConfig::small_test(), workloads));
    assert_byte_identical(&spec);
}

/// The full quick-scale suite (the satellite guarantee). The 204 debug
/// simulations take tens of minutes, so this runs only under
/// `--release` (e.g. `scripts/ci.sh` or `cargo test --release -p
/// miopt-harness --test determinism`).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full suite is release-only; run cargo test --release"
)]
fn parallel_sweep_is_byte_identical_to_serial_full_quick_suite() {
    let spec = Arc::new(SweepSpec::figures(
        SystemConfig::small_test(),
        suite(&SuiteConfig::quick()),
    ));
    assert_byte_identical(&spec);
}
