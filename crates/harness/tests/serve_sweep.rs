//! End-to-end guarantees of the `serve` sweep: byte-identical results
//! at any worker count and in both stepping modes, and a resume that
//! provably replays identical traffic.

use miopt::{CachePolicy, PolicyConfig, SystemConfig};
use miopt_harness::json::Json;
use miopt_harness::provenance::Provenance;
use miopt_harness::serve::{
    execute, load_serve_journal, report_json, run_serve_job, ServeJournalWriter, ServeSweepSpec,
};
use miopt_harness::RetryPolicy;
use miopt_workloads::SuiteConfig;

fn no_retry() -> RetryPolicy {
    RetryPolicy::default()
}

fn tiny_spec() -> ServeSweepSpec {
    ServeSweepSpec {
        system: SystemConfig::small_test(),
        scale: SuiteConfig::quick(),
        tenants: vec![
            ("t0".to_string(), "FwSoft".to_string()),
            ("t1".to_string(), "FwPool".to_string()),
        ],
        policies: vec![
            PolicyConfig::of(CachePolicy::Uncached),
            PolicyConfig::of(CachePolicy::CacheR),
            PolicyConfig::of(CachePolicy::CacheRW),
        ],
        loads: vec![60_000, 15_000],
        requests: 3,
        seed: 0,
        partition: true,
        max_batch: 2,
        budget: 500_000_000,
        no_skip: false,
        check_invariants: false,
    }
}

/// The deterministic part of the report: everything below `jobs` and
/// `summary` (provenance carries wall-clock and git state).
fn stable_report_slice(doc: &Json) -> String {
    format!(
        "{}\n{}",
        doc.get("jobs").expect("report has jobs").to_pretty(),
        doc.get("summary").expect("report has summary").to_pretty()
    )
}

#[test]
fn serve_sweep_is_byte_identical_across_worker_counts() {
    let spec = tiny_spec();
    let serial = execute(&spec, 1, true, None, &[], &no_retry());
    let parallel = execute(&spec, 4, true, None, &[], &no_retry());
    assert_eq!(serial, parallel);
    for (i, rec) in serial.iter().enumerate() {
        assert_eq!(rec.id, i, "records must come back in job-id order");
        assert_eq!(rec.status, "ok");
        for t in &rec.tenants {
            assert_eq!(t.completed, t.requested);
            assert!(t.p99 >= t.p50);
        }
    }
}

#[test]
fn serve_sweep_is_byte_identical_across_skip_modes() {
    let mut spec = tiny_spec();
    // One load level keeps the no-skip (per-cycle) arm affordable.
    spec.loads = vec![30_000];
    let skipped = execute(&spec, 2, true, None, &[], &no_retry());
    spec.no_skip = true;
    let stepped = execute(&spec, 2, true, None, &[], &no_retry());
    // no_skip is part of the journal fingerprint but must not change a
    // single simulated number.
    assert_eq!(skipped, stepped);
}

#[test]
fn resumed_serve_sweep_reproduces_the_full_report() {
    let dir = std::env::temp_dir().join("miopt-serve-resume-test");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = tiny_spec();

    // The uninterrupted reference run.
    let full = execute(&spec, 2, true, None, &[], &no_retry());
    let reference = report_json(&spec, "ref", &Provenance::collect(&spec.system, 2), &full);

    // A run that "dies" after two journaled jobs (we just stop driving
    // it), leaving a torn trailing frame like a real SIGKILL would: the
    // first bytes of record 4's header, cut mid-write.
    let writer = ServeJournalWriter::create(&dir, "victim", &spec).unwrap();
    let jobs = spec.jobs();
    writer.append(&run_serve_job(&spec, &jobs[0])).unwrap();
    writer.append(&run_serve_job(&spec, &jobs[3])).unwrap();
    drop(writer);
    let store = dir.join("victim.journal");
    let seg = std::fs::read_dir(&store)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("the journal store has a segment");
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x2a, 0x00, 0x00, 0x00, 0x03]);
    std::fs::write(&seg, &bytes).unwrap();

    // Resume: replay the journal, run only the missing jobs.
    let journaled = load_serve_journal(&dir, "victim", &spec).unwrap();
    assert_eq!(
        journaled.iter().map(|r| r.id).collect::<Vec<_>>(),
        vec![0, 3],
        "torn tail dropped, intact entries kept"
    );
    let resumed = execute(&spec, 2, true, None, &journaled, &no_retry());
    assert_eq!(resumed, full, "resume must not change any record");
    let resumed_report = report_json(
        &spec,
        "ref",
        &Provenance::collect(&spec.system, 2),
        &resumed,
    );
    assert_eq!(
        stable_report_slice(&reference),
        stable_report_slice(&resumed_report),
        "jobs and summary must be byte-identical after a resume"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_foreign_traffic() {
    let dir = std::env::temp_dir().join("miopt-serve-fingerprint-test");
    let _ = std::fs::remove_dir_all(&dir);
    let original = tiny_spec();
    ServeJournalWriter::create(&dir, "t", &original).unwrap();

    // Same grid, different arrival seed: different traffic, refused.
    let mut reseeded = original.clone();
    reseeded.seed = 1;
    let err = load_serve_journal(&dir, "t", &reseeded).unwrap_err();
    assert!(err.contains("different serve sweep"), "{err}");

    // Different run options are refused too.
    let mut rebudgeted = original.clone();
    rebudgeted.budget /= 2;
    let err = load_serve_journal(&dir, "t", &rebudgeted).unwrap_err();
    assert!(err.contains("different serve sweep"), "{err}");

    let err = load_serve_journal(&dir, "absent", &original).unwrap_err();
    assert!(err.contains("no journal"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The sweep's reason to exist: a config where the policy ranking by
/// p99 request latency differs from the ranking by mean dispatch
/// runtime (documented in EXPERIMENTS.md §"Tail latency under
/// multi-tenant serving"). Debug builds skip it — 48 requests of
/// near-saturation traffic are release-budget work.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "near-saturation serve runs are release-only; run cargo test --release"
)]
fn tail_diverges_from_mean_at_the_documented_config() {
    let mut spec = tiny_spec();
    spec.policies = vec![
        PolicyConfig::of(CachePolicy::Uncached),
        PolicyConfig::of(CachePolicy::CacheR),
        PolicyConfig::of(CachePolicy::CacheRW),
    ];
    spec.loads = vec![5_000];
    spec.requests = 16;
    spec.seed = 1;
    spec.partition = false;
    spec.max_batch = 4;
    let records = execute(&spec, 0, true, None, &[], &no_retry());
    let summary = report_json(
        &spec,
        "div",
        &Provenance::collect(&spec.system, 1),
        &records,
    );
    let row = &summary.get("summary").and_then(Json::as_arr).unwrap()[0];
    assert_eq!(
        row.get("best_by_p99").and_then(Json::as_str),
        Some("CacheRW"),
        "queueing at load 5000 favours CacheRW's tail"
    );
    assert_eq!(
        row.get("best_by_mean_batch").and_then(Json::as_str),
        Some("CacheR"),
        "isolated dispatch runtime favours CacheR"
    );
    assert_eq!(
        row.get("tail_diverges_from_mean").and_then(Json::as_bool),
        Some(true)
    );
}

#[test]
fn report_carries_traffic_provenance() {
    let spec = tiny_spec();
    let records = execute(&spec, 2, true, None, &[], &no_retry());
    let doc = report_json(&spec, "t", &Provenance::collect(&spec.system, 2), &records);
    let prov = doc.get("provenance").expect("report has provenance");
    assert_eq!(
        prov.get("arrival_seed").and_then(Json::as_u64),
        Some(spec.seed)
    );
    assert_eq!(
        prov.get("arrivals_fingerprint").and_then(Json::as_str),
        Some(format!("{:016x}", spec.arrivals_fingerprint()).as_str())
    );
    // The summary names a best policy per load level.
    let summary = doc.get("summary").and_then(Json::as_arr).unwrap();
    assert_eq!(summary.len(), spec.loads.len());
    for row in summary {
        assert!(row.get("best_by_p99").and_then(Json::as_str).is_some());
        assert!(row
            .get("best_by_mean_batch")
            .and_then(Json::as_str)
            .is_some());
    }
}
