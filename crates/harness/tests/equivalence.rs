//! Event-core vs per-cycle equivalence.
//!
//! The discrete-event core must be **bit-identical** to `--no-skip`
//! per-cycle stepping: every actor dispatches at exactly the cycles the
//! per-cycle loop's corresponding stage would act, in the same
//! intra-cycle order, and telemetry samples and sentinel checks fire as
//! scheduled events at the same cycles. These tests enforce the
//! contract across the whole policy grid — identical
//! [`miopt::runner::RunResult`] metrics, identical telemetry time series
//! (every epoch boundary, phase span, and event instant at the same
//! cycle), and identical figure CSVs. The grid includes FwGRU, a
//! multi-kernel latency-bound RNN — the shape with the longest
//! event-free stretches and the most drain/flush boundaries, i.e. the
//! one the event core accelerates (and could plausibly corrupt) most.

use miopt::runner::{run_one_with, RunOptions, SweepSpec};
use miopt::SystemConfig;
use miopt_harness::figures::{fig10, fig6};
use miopt_workloads::{by_name, SuiteConfig};

fn assert_grid_equivalent(workload_names: &[&str]) {
    let s = SuiteConfig::quick();
    let workloads = workload_names
        .iter()
        .map(|n| by_name(&s, n).expect("suite workload"))
        .collect();
    // All six policies (three statics plus the optimization ladder),
    // with telemetry on so the comparison covers the recorded stream.
    let spec = SweepSpec::figures(SystemConfig::small_test(), workloads).with_telemetry(2048);
    let per_cycle_opts = RunOptions {
        no_skip: true,
        ..spec.run_opts
    };
    let mut fast_results = Vec::new();
    let mut slow_results = Vec::new();
    for job in spec.jobs() {
        let label = spec.job_label(&job);
        let fast = spec.run_job(&job).expect("event-core run");
        let slow = run_one_with(
            &spec.cfg,
            &spec.workloads[job.workload],
            job.policy,
            &per_cycle_opts,
        )
        .expect("per-cycle run");
        assert_eq!(fast.metrics, slow.metrics, "{label}");
        assert_eq!(fast.telemetry, slow.telemetry, "{label}");
        fast_results.push(fast);
        slow_results.push(slow);
    }
    // The figure pipeline consumes only the metrics, so equality is
    // already implied — but the CSVs are the artifact the paper
    // reproduction ships, so compare them character for character too.
    assert_eq!(
        fig6(&spec.assemble_statics(&fast_results)).to_csv(),
        fig6(&spec.assemble_statics(&slow_results)).to_csv()
    );
    assert_eq!(
        fig10(&spec.assemble_ladders(&fast_results)).to_csv(),
        fig10(&spec.assemble_ladders(&slow_results)).to_csv()
    );
}

#[test]
fn event_core_matches_per_cycle_across_the_policy_grid() {
    assert_grid_equivalent(&["FwSoft", "BwSoft"]);
}

/// The same full-grid pin on FwGRU: a multi-kernel latency-bound RNN —
/// the shape with the longest event-free stretches and the most
/// drain/flush boundaries per run, too slow for the debug tier-1 suite
/// (release-only via `ci.sh --full`'s `--include-ignored`).
#[test]
#[ignore = "slow in debug; run in release via --include-ignored"]
fn event_core_matches_per_cycle_on_a_latency_bound_rnn() {
    assert_grid_equivalent(&["FwGRU"]);
}
