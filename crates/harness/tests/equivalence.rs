//! Skip-ahead vs per-cycle equivalence.
//!
//! The event-driven time skipper must be **bit-identical** to per-cycle
//! stepping: a warp only ever crosses cycles in which no component can
//! act, and it never crosses a telemetry sample or sentinel check. These
//! tests enforce the contract across the whole policy grid — identical
//! [`miopt::runner::RunResult`] metrics, identical telemetry time series
//! (every epoch boundary, phase span, and event instant at the same
//! cycle), and identical figure CSVs.

use miopt::runner::{run_one_with, RunOptions, SweepSpec};
use miopt::SystemConfig;
use miopt_harness::figures::{fig10, fig6};
use miopt_workloads::{by_name, SuiteConfig};

#[test]
fn skip_ahead_matches_per_cycle_across_the_policy_grid() {
    let s = SuiteConfig::quick();
    let workloads = ["FwSoft", "BwSoft"]
        .iter()
        .map(|n| by_name(&s, n).expect("suite workload"))
        .collect();
    // All six policies (three statics plus the optimization ladder),
    // with telemetry on so the comparison covers the recorded stream.
    let spec = SweepSpec::figures(SystemConfig::small_test(), workloads).with_telemetry(2048);
    let per_cycle_opts = RunOptions {
        no_skip: true,
        ..spec.run_opts
    };
    let mut fast_results = Vec::new();
    let mut slow_results = Vec::new();
    for job in spec.jobs() {
        let label = spec.job_label(&job);
        let fast = spec.run_job(&job).expect("skip-ahead run");
        let slow = run_one_with(
            &spec.cfg,
            &spec.workloads[job.workload],
            job.policy,
            &per_cycle_opts,
        )
        .expect("per-cycle run");
        assert_eq!(fast.metrics, slow.metrics, "{label}");
        assert_eq!(fast.telemetry, slow.telemetry, "{label}");
        fast_results.push(fast);
        slow_results.push(slow);
    }
    // The figure pipeline consumes only the metrics, so equality is
    // already implied — but the CSVs are the artifact the paper
    // reproduction ships, so compare them character for character too.
    assert_eq!(
        fig6(&spec.assemble_statics(&fast_results)).to_csv(),
        fig6(&spec.assemble_statics(&slow_results)).to_csv()
    );
    assert_eq!(
        fig10(&spec.assemble_ladders(&fast_results)).to_csv(),
        fig10(&spec.assemble_ladders(&slow_results)).to_csv()
    );
}
