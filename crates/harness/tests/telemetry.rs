//! Telemetry export guarantees: worker-count byte-identity, golden
//! regression of the JSONL/Chrome-trace serializations, and the
//! telemetry/cache interaction.
//!
//! Golden files regenerate like the figure goldens:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p miopt-harness --test telemetry
//! ```

use miopt::runner::{run_one_with, RunOptions, SweepSpec};
use miopt::{CachePolicy, PolicyConfig, SystemConfig};
use miopt_harness::cache::ResultCache;
use miopt_harness::pool::PoolOptions;
use miopt_harness::sweep::{run_sweep, SweepOptions, SweepRun};
use miopt_harness::telemetry::{to_chrome_trace, to_jsonl};
use miopt_workloads::{by_name, SuiteConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// Interval used throughout: small enough to give the tiny FwSoft run
/// dozens of epochs, large enough to keep the goldens reviewable.
const INTERVAL: u64 = 20_000;

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} diverged from the checked-in golden (tolerance-free comparison); \
         if the change is intentional, regenerate with GOLDEN_REGEN=1"
    );
}

fn telemetry_spec() -> Arc<SweepSpec> {
    Arc::new(
        SweepSpec::statics(
            SystemConfig::small_test(),
            vec![by_name(&SuiteConfig::quick(), "FwSoft").unwrap()],
        )
        .with_telemetry(INTERVAL),
    )
}

fn run_with(spec: &Arc<SweepSpec>, workers: usize, name: &str) -> SweepRun {
    let opts = SweepOptions {
        pool: PoolOptions {
            workers,
            ..PoolOptions::default()
        },
        cache: None,
    };
    run_sweep(spec, name, &opts)
}

/// The exported strings — not just the in-memory series — must be
/// byte-identical at any worker count.
#[test]
fn telemetry_exports_are_byte_identical_across_worker_counts() {
    let spec = telemetry_spec();
    let serial = run_with(&spec, 1, "tel-serial");
    let parallel = run_with(&spec, 4, "tel-parallel");
    let ra = serial.results(&spec).expect("serial jobs succeed");
    let rb = parallel.results(&spec).expect("parallel jobs succeed");
    assert_eq!(ra.len(), rb.len());
    for (a, b) in ra.iter().zip(&rb) {
        let ta = a.telemetry.as_ref().expect("serial run has telemetry");
        let tb = b.telemetry.as_ref().expect("parallel run has telemetry");
        let clock = a.metrics.gpu_clock_hz();
        let policy = a.policy.label();
        assert_eq!(
            to_jsonl(ta, &a.workload, &policy, clock),
            to_jsonl(tb, &b.workload, &b.policy.label(), b.metrics.gpu_clock_hz()),
            "{}/{policy}: JSONL must not depend on worker count",
            a.workload
        );
        assert_eq!(
            to_chrome_trace(ta, &a.workload, &policy, clock),
            to_chrome_trace(tb, &b.workload, &b.policy.label(), b.metrics.gpu_clock_hz()),
            "{}/{policy}: Chrome trace must not depend on worker count",
            a.workload
        );
    }
    assert_eq!(
        serial.report.provenance.telemetry_interval,
        Some(INTERVAL),
        "the report must record the sampling interval"
    );
}

/// Checked-in goldens for one small run: any byte change to the export
/// formats (or the simulation itself) must be deliberate.
#[test]
fn telemetry_exports_match_goldens() {
    let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
    let opts = RunOptions {
        telemetry_interval: Some(INTERVAL),
        ..RunOptions::default()
    };
    let r = run_one_with(
        &SystemConfig::small_test(),
        &w,
        PolicyConfig::of(CachePolicy::CacheR),
        &opts,
    )
    .expect("run finishes");
    let run = r.telemetry.as_ref().expect("telemetry enabled");
    assert!(!run.epochs.is_empty(), "the run must span several epochs");
    let clock = r.metrics.gpu_clock_hz();
    check_golden(
        "telemetry_fwsoft_cacher.jsonl",
        &to_jsonl(run, &r.workload, &r.policy.label(), clock),
    );
    check_golden(
        "telemetry_fwsoft_cacher.trace.json",
        &to_chrome_trace(run, &r.workload, &r.policy.label(), clock),
    );
}

/// Telemetry-enabled sweeps must bypass the cache: a cached hit carries
/// no time series, so serving one would silently drop telemetry.
#[test]
fn telemetry_sweeps_bypass_the_result_cache() {
    let dir = std::env::temp_dir().join(format!("miopt-telemetry-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions {
        cache: Some(ResultCache::new(&dir)),
        ..SweepOptions::default()
    };
    let spec = telemetry_spec();
    // Twice: even a warm cache must not serve hits while telemetry is on.
    for name in ["tel-cache-cold", "tel-cache-warm"] {
        let run = run_sweep(&spec, name, &opts);
        assert!(
            run.outcomes.iter().all(|o| !o.cached),
            "{name}: telemetry jobs must simulate, not hit the cache"
        );
        for r in run.results(&spec).expect("jobs succeed") {
            assert!(r.telemetry.is_some(), "{name}: every job carries a series");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
