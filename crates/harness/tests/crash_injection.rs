//! Deterministic crash injection across the journaled sweep: the
//! on-disk journal is cut at every record boundary (a kill between
//! appends) and at seeded offsets inside records (a kill mid-write),
//! and every cut must recover to exactly the durable prefix and resume
//! to a report byte-identical to the uninterrupted run.
//!
//! The byte-exhaustive versions of these cuts — every offset of the
//! write stream, via the fault-point I/O layer — live in
//! `crates/store/tests/store.rs`; this test proves the same guarantee
//! end-to-end through the sweep orchestrator.

use miopt::runner::SweepSpec;
use miopt::SystemConfig;
use miopt_engine::rng::SplitMix64;
use miopt_harness::json::Json;
use miopt_harness::results::SweepReport;
use miopt_harness::sweep::{run_sweep_journaled, JournalOptions, SweepOptions};
use miopt_store::Wal;
use miopt_workloads::{by_name, SuiteConfig};
use std::path::Path;
use std::sync::Arc;

fn test_spec() -> Arc<SweepSpec> {
    Arc::new(SweepSpec::statics(
        SystemConfig::small_test(),
        vec![by_name(&SuiteConfig::quick(), "FwSoft").unwrap()],
    ))
}

/// Strips the timing fields a resume legitimately changes, leaving
/// everything that must be byte-identical.
fn stable_json(report: &SweepReport) -> String {
    let mut doc = report.to_json();
    fn scrub(doc: &mut Json) {
        if let Json::Obj(pairs) = doc {
            pairs.retain(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "elapsed_ms" | "started_unix_ms" | "git_dirty" | "git_rev"
                )
            });
            for (_, v) in pairs.iter_mut() {
                scrub(v);
            }
        }
        if let Json::Arr(items) = doc {
            for v in items.iter_mut() {
                scrub(v);
            }
        }
    }
    scrub(&mut doc);
    doc.to_pretty()
}

fn journal_options(dir: &Path, resume: bool) -> JournalOptions {
    JournalOptions {
        dir: dir.to_path_buf(),
        resume,
    }
}

#[test]
fn every_kill_point_recovers_and_resumes_byte_identically() {
    let dir = std::env::temp_dir().join(format!("miopt-crash-inject-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = test_spec();

    // The uninterrupted reference run, journal left in place: its one
    // segment is the complete write stream a crash would have cut.
    let full = run_sweep_journaled(
        &spec,
        "victim",
        &SweepOptions::default(),
        &journal_options(&dir, false),
    )
    .expect("journaled sweep runs");
    assert!(full.report.jobs.iter().all(|j| j.status == "ok"));
    let reference = stable_json(&full.report);

    let store = dir.join("victim.journal");
    let intact = Wal::inspect(&store).expect("intact journal inspects");
    assert!(intact.healthy, "state: {}", intact.state);
    assert_eq!(intact.state, "clean");
    assert_eq!(
        intact.records.len(),
        spec.job_count() + 1,
        "header + one record per job"
    );
    assert_eq!(intact.segments.len(), 1, "small sweeps stay in one segment");
    let seg_path = intact.segments[0].path.clone();
    let bytes = std::fs::read(&seg_path).unwrap();
    let ends = intact.segments[0].record_ends.clone();
    assert_eq!(*ends.last().unwrap() as usize, bytes.len());

    // Kill points: every record boundary (a crash between appends), and
    // one seeded offset strictly inside every record after the header (a
    // crash mid-append). ends[0] closes the header record — below that
    // the journal loses its identity and resume must refuse, which is
    // covered separately below.
    let mut rng = SplitMix64::new(0xC8A5_11ED);
    let mut cuts: Vec<u64> = ends.clone();
    for pair in ends.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        cuts.push(lo + 1 + rng.next_below(hi - lo - 1));
    }
    cuts.sort_unstable();

    for &cut in &cuts {
        // Restore the intact journal, then cut it: the exact on-disk
        // state a SIGKILL at this point of the write stream leaves.
        std::fs::write(&seg_path, &bytes[..cut as usize]).unwrap();

        let info = Wal::inspect(&store).expect("cut journal inspects");
        assert!(info.healthy, "cut {cut}: state {}", info.state);
        let boundary = ends.contains(&cut);
        assert_eq!(
            info.state == "clean",
            boundary,
            "cut {cut}: boundary cuts are clean, interior cuts torn (state: {})",
            info.state
        );
        // Recovery reports exactly the durable prefix: all records
        // whose frames fit wholly below the cut.
        let durable = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(info.records.len(), durable, "cut {cut}");

        let resumed = run_sweep_journaled(
            &spec,
            "victim",
            &SweepOptions::default(),
            &journal_options(&dir, true),
        )
        .unwrap_or_else(|e| panic!("cut {cut}: resume failed: {e}"));
        let replayed = resumed.outcomes.iter().filter(|o| o.cached).count();
        assert_eq!(replayed, durable - 1, "cut {cut}: journaled jobs replay");
        assert_eq!(
            stable_json(&resumed.report),
            reference,
            "cut {cut}: resumed report must be byte-identical"
        );
    }

    // A cut inside the header record destroys the journal's identity:
    // resume must refuse with a descriptive error, not fabricate state.
    std::fs::write(&seg_path, &bytes[..(ends[0] - 3) as usize]).unwrap();
    let info = Wal::inspect(&store).unwrap();
    assert!(info.records.is_empty());
    let err = run_sweep_journaled(
        &spec,
        "victim",
        &SweepOptions::default(),
        &journal_options(&dir, true),
    )
    .unwrap_err();
    assert!(err.contains("is empty"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corruption_below_the_cut_refuses_resume_with_the_byte_offset() {
    let dir = std::env::temp_dir().join(format!("miopt-crash-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = test_spec();
    let _full = run_sweep_journaled(
        &spec,
        "victim",
        &SweepOptions::default(),
        &journal_options(&dir, false),
    )
    .expect("journaled sweep runs");

    let store = dir.join("victim.journal");
    let intact = Wal::inspect(&store).unwrap();
    let seg_path = intact.segments[0].path.clone();
    let mut bytes = std::fs::read(&seg_path).unwrap();
    // Flip one payload byte in the middle of the second record: a
    // complete frame with a bad checksum is damage, never a torn tail.
    let mid =
        ((intact.segments[0].record_ends[0] + intact.segments[0].record_ends[1]) / 2) as usize;
    bytes[mid] ^= 0x01;
    std::fs::write(&seg_path, &bytes).unwrap();

    let info = Wal::inspect(&store).unwrap();
    assert!(!info.healthy);
    assert!(info.state.contains("corrupt"), "{}", info.state);
    let err = run_sweep_journaled(
        &spec,
        "victim",
        &SweepOptions::default(),
        &journal_options(&dir, true),
    )
    .unwrap_err();
    assert!(err.contains("damaged"), "{err}");
    assert!(err.contains("byte offset"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}
