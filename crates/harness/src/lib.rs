//! `miopt-harness`: parallel experiment orchestration for the miopt
//! simulator.
//!
//! The simulator's sweeps — the (workload × policy) grids behind the
//! paper's Figures 6–13 — are embarrassingly parallel but were run
//! serially. This crate turns a [`SweepSpec`](miopt::runner::SweepSpec)
//! into a deterministic job DAG executed across a scoped worker pool,
//! with:
//!
//! * byte-identical results at any worker count ([`pool`]),
//! * per-job panic and wall-clock-timeout isolation ([`pool`]),
//! * structured JSON sweep reports with full run provenance under
//!   `results/runs/` ([`results`], [`provenance`]),
//! * persistent result caching keyed by the experiment's identity hash
//!   ([`cache`]),
//! * crash-resilient sweeps: a write-ahead job journal enabling
//!   `--resume <run-id>` after a kill, continuously refreshed partial
//!   reports, per-job retries with timeout escalation, and quarantine of
//!   persistently failing configs ([`journal`], [`pool`], [`sweep`]),
//! * phase-resolved telemetry exports — JSONL time series plus Chrome
//!   `trace_event` JSON for chrome://tracing / Perfetto ([`telemetry`]),
//! * the multi-tenant serving sweep: `miopt-harness serve` runs a
//!   policy × load grid of QoS serving scenarios and reports per-tenant
//!   p50/p95/p99 latency and throughput ([`serve`]),
//! * the figure-extraction pipeline and the `miopt-harness` CLI that
//!   regenerates every paper figure through the pool ([`figures`],
//!   [`cli`]).
//!
//! Everything is dependency-free: the JSON layer ([`json`]) is written
//! in-tree so offline builds never touch a registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod cache;
pub mod cli;
pub mod figures;
pub mod journal;
pub mod json;
pub mod pool;
pub mod progress;
pub mod provenance;
pub mod query;
pub mod results;
pub mod serve;
pub mod sweep;
pub mod telemetry;

pub use backoff::Backoff;
pub use cache::{CacheKey, ResultCache};
pub use figures::FigureData;
pub use journal::{Journal, JournalWriter};
pub use json::Json;
pub use pool::{JobError, JobOutcome, PoolOptions, RetryPolicy};
pub use provenance::Provenance;
pub use results::{SweepReport, SCHEMA_VERSION};
pub use serve::{ServeJobRecord, ServeSweepSpec};
pub use sweep::{run_sweep, run_sweep_journaled, JournalOptions, SweepOptions, SweepRun};
