//! A deterministic job-DAG executor over a scoped `std::thread` worker
//! pool.
//!
//! The (workload × policy) grid of a sweep is embarrassingly parallel —
//! every simulation is independent — but the executor is written as a
//! general dependency DAG so future sweeps (e.g. a ladder stage gated on
//! its static stage) can express ordering without a new engine.
//!
//! Design points:
//!
//! * **Determinism.** Results are recorded into a slot per job id, never
//!   in completion order, so any worker count (including 1) produces an
//!   identical result vector; ready jobs are claimed lowest-id-first.
//! * **Isolation.** A simulation that fails does so through
//!   `Result` — cycle-budget exhaustion and config rejections arrive as
//!   [`SimError`]s and fail *that job* ([`JobError::Sim`]); genuinely
//!   unexpected panics are still caught and recorded
//!   ([`JobError::Panicked`]) so the sweep continues either way. With a
//!   wall-clock timeout configured, each job runs on a dedicated thread;
//!   a job that exceeds the deadline is abandoned (the thread is
//!   detached — `std` threads cannot be killed — and the job reports
//!   [`JobError::TimedOut`]).
//! * **Failure propagation.** A job whose dependency failed is not run;
//!   it reports [`JobError::DepFailed`].

use crate::progress::Progress;
use miopt::runner::{Job, RunResult, SimError, SweepSpec};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The simulation returned an error (cycle-budget timeout or an
    /// inconsistent configuration).
    Sim(SimError),
    /// The simulation panicked; the payload is the panic message.
    Panicked(String),
    /// The simulation exceeded the configured wall-clock timeout.
    TimedOut(Duration),
    /// A dependency (by job id) failed, so this job never ran.
    DepFailed(usize),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Sim(e) => write!(f, "{e}"),
            JobError::Panicked(msg) => write!(f, "panicked: {msg}"),
            JobError::TimedOut(t) => write!(f, "timed out after {:.1}s", t.as_secs_f64()),
            JobError::DepFailed(id) => write!(f, "dependency job {id} failed"),
        }
    }
}

/// The outcome of one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job that ran (or was skipped).
    pub job: Job,
    /// The simulation result, or why there is none.
    pub result: Result<RunResult, JobError>,
    /// Wall time spent on this job (≈0 for cache hits and skips).
    pub elapsed: Duration,
    /// Whether the result came from the persistent cache.
    pub cached: bool,
}

/// Executor options. The default is every available core, no timeout,
/// no progress output.
#[derive(Debug, Clone, Default)]
pub struct PoolOptions {
    /// Worker threads; 0 means [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Per-job wall-clock timeout; `None` relies on the simulator's own
    /// cycle budget to terminate hung configurations.
    pub job_timeout: Option<Duration>,
    /// Print per-job completion lines to stderr.
    pub progress: bool,
}

impl PoolOptions {
    /// The effective worker count.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// A job result source consulted before simulating (the persistent
/// cache, in production; anything in tests).
pub trait ResultSource: Sync {
    /// A previously computed result for `job`, if one exists.
    fn fetch(&self, spec: &SweepSpec, job: &Job) -> Option<RunResult>;
    /// Offers a freshly computed result for persistence.
    fn offer(&self, spec: &SweepSpec, job: &Job, result: &RunResult);
}

/// A no-op source: every job simulates.
pub struct NoCache;

impl ResultSource for NoCache {
    fn fetch(&self, _: &SweepSpec, _: &Job) -> Option<RunResult> {
        None
    }
    fn offer(&self, _: &SweepSpec, _: &Job, _: &RunResult) {}
}

struct DagState {
    /// Unsatisfied dependency count per job; `usize::MAX` marks claimed.
    waiting: Vec<usize>,
    /// Jobs ready to claim, lowest id first.
    ready: BinaryHeap<Reverse<usize>>,
    /// Slot per job id.
    outcomes: Vec<Option<JobOutcome>>,
    /// Jobs without a recorded outcome yet.
    unfinished: usize,
}

struct Dag {
    state: Mutex<DagState>,
    wake: Condvar,
    /// dependents[i] = jobs that wait on job i.
    dependents: Vec<Vec<usize>>,
}

/// Runs every job of `spec` (with `deps[i]` = ids that must succeed
/// before job `i` runs) across a scoped worker pool and returns one
/// outcome per job, in job-id order regardless of completion order.
///
/// `deps` may be empty, meaning no ordering constraints.
///
/// # Panics
///
/// Panics if `deps` is non-empty but not exactly one entry per job, or
/// if a dependency id is out of range (a malformed DAG is a programming
/// error, not a job failure).
pub fn run_dag(
    spec: &Arc<SweepSpec>,
    deps: &[Vec<usize>],
    source: &dyn ResultSource,
    opts: &PoolOptions,
) -> Vec<JobOutcome> {
    let jobs = spec.jobs();
    let n = jobs.len();
    let deps: Vec<Vec<usize>> = if deps.is_empty() {
        vec![Vec::new(); n]
    } else {
        assert_eq!(deps.len(), n, "one dependency list per job");
        deps.to_vec()
    };
    for d in deps.iter().flatten() {
        assert!(*d < n, "dependency id {d} out of range");
    }
    let mut dependents = vec![Vec::new(); n];
    let mut waiting = vec![0usize; n];
    for (i, ds) in deps.iter().enumerate() {
        waiting[i] = ds.len();
        for &d in ds {
            dependents[d].push(i);
        }
    }
    let ready: BinaryHeap<Reverse<usize>> =
        (0..n).filter(|&i| waiting[i] == 0).map(Reverse).collect();
    assert!(
        n == 0 || !ready.is_empty(),
        "dependency cycle: no runnable job"
    );

    let dag = Dag {
        state: Mutex::new(DagState {
            waiting,
            ready,
            outcomes: vec![None; n],
            unfinished: n,
        }),
        wake: Condvar::new(),
        dependents,
    };
    let progress = Progress::new(n, opts.progress);
    let workers = opts.effective_workers().min(n.max(1));

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| worker(spec, &dag, source, opts, &progress));
        }
    });

    let state = dag.state.into_inner().expect("workers exited cleanly");
    assert_eq!(
        state.unfinished, 0,
        "executor finished with unrecorded jobs"
    );
    state
        .outcomes
        .into_iter()
        .map(|o| o.expect("every job recorded"))
        .collect()
}

fn worker(
    spec: &Arc<SweepSpec>,
    dag: &Dag,
    source: &dyn ResultSource,
    opts: &PoolOptions,
    progress: &Progress,
) {
    let jobs = spec.jobs();
    loop {
        let job = {
            let mut st = dag.state.lock().expect("pool lock");
            loop {
                if st.unfinished == 0 {
                    return;
                }
                if let Some(Reverse(id)) = st.ready.pop() {
                    st.waiting[id] = usize::MAX;
                    break jobs[id];
                }
                st = dag.wake.wait(st).expect("pool lock");
            }
        };

        let started = Instant::now();
        let (result, cached) = match source.fetch(spec, &job) {
            Some(hit) => (Ok(hit), true),
            None => {
                let r = execute(spec, job, opts.job_timeout);
                if let Ok(res) = &r {
                    source.offer(spec, &job, res);
                }
                (r, false)
            }
        };
        let outcome = JobOutcome {
            job,
            result,
            elapsed: started.elapsed(),
            cached,
        };
        progress.report(&spec.job_label(&job), &outcome);
        record(dag, &jobs, outcome, progress);
    }
}

/// Records an outcome, unblocking or failing dependents, and wakes
/// waiting workers.
fn record(dag: &Dag, jobs: &[Job], outcome: JobOutcome, progress: &Progress) {
    let mut st = dag.state.lock().expect("pool lock");
    let mut pending = vec![outcome];
    while let Some(o) = pending.pop() {
        let id = o.job.id;
        let failed = o.result.is_err();
        debug_assert!(st.outcomes[id].is_none(), "job {id} recorded twice");
        st.outcomes[id] = Some(o);
        st.unfinished -= 1;
        for &dep in &dag.dependents[id] {
            if failed {
                // Fail the whole downstream cone without running it.
                if st.outcomes[dep].is_none() && st.waiting[dep] != usize::MAX {
                    st.waiting[dep] = usize::MAX;
                    let skipped = JobOutcome {
                        job: jobs[dep],
                        result: Err(JobError::DepFailed(id)),
                        elapsed: Duration::ZERO,
                        cached: false,
                    };
                    progress.report("(skipped)", &skipped);
                    pending.push(skipped);
                }
            } else if st.waiting[dep] != usize::MAX {
                st.waiting[dep] -= 1;
                if st.waiting[dep] == 0 {
                    st.ready.push(Reverse(dep));
                }
            }
        }
    }
    drop(st);
    dag.wake.notify_all();
}

/// Runs one job. Expected failures (cycle-budget exhaustion, bad
/// configs) flow through `run_job`'s `Result` as [`JobError::Sim`];
/// `catch_unwind` remains only as a safety net for genuine bugs, and a
/// wall-clock timeout isolates hung jobs when configured.
fn execute(
    spec: &Arc<SweepSpec>,
    job: Job,
    timeout: Option<Duration>,
) -> Result<RunResult, JobError> {
    match timeout {
        None => match catch_unwind(AssertUnwindSafe(|| spec.run_job(&job))) {
            Ok(result) => result.map_err(JobError::Sim),
            Err(p) => Err(JobError::Panicked(panic_message(&p))),
        },
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            let spec = Arc::clone(spec);
            // Detached on purpose: a hung simulation cannot be killed, so
            // the thread is abandoned and dies with the process.
            std::thread::Builder::new()
                .name(format!("miopt-job-{}", job.id))
                .spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| spec.run_job(&job)));
                    let _ = tx.send(r);
                })
                .expect("spawn job thread");
            match rx.recv_timeout(limit) {
                Ok(Ok(result)) => result.map_err(JobError::Sim),
                Ok(Err(p)) => Err(JobError::Panicked(panic_message(&p))),
                Err(mpsc::RecvTimeoutError::Timeout) => Err(JobError::TimedOut(limit)),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    Err(JobError::Panicked("job thread died".to_string()))
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt::SystemConfig;
    use miopt_workloads::{by_name, SuiteConfig};

    fn spec_of(names: &[&str]) -> Arc<SweepSpec> {
        let s = SuiteConfig::quick();
        Arc::new(SweepSpec::statics(
            SystemConfig::small_test(),
            names.iter().map(|n| by_name(&s, n).unwrap()).collect(),
        ))
    }

    #[test]
    fn pool_matches_serial_for_any_worker_count() {
        let spec = spec_of(&["FwSoft"]);
        let serial = run_dag(
            &spec,
            &[],
            &NoCache,
            &PoolOptions {
                workers: 1,
                ..PoolOptions::default()
            },
        );
        let parallel = run_dag(
            &spec,
            &[],
            &NoCache,
            &PoolOptions {
                workers: 4,
                ..PoolOptions::default()
            },
        );
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.job, b.job, "slot order must be job order");
            let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(ra.metrics, rb.metrics);
        }
    }

    #[test]
    fn dep_failure_skips_the_downstream_cone() {
        let spec = spec_of(&["FwSoft"]);
        // Chain 0 <- 1 <- 2; job 0 is forced to fail with a nanosecond
        // timeout, which must fail the whole downstream cone unrun.
        let deps = vec![vec![], vec![0], vec![1]];
        let opts = PoolOptions {
            workers: 2,
            job_timeout: Some(Duration::from_nanos(1)),
            ..PoolOptions::default()
        };
        let outcomes = run_dag(&spec, &deps, &NoCache, &opts);
        assert!(matches!(outcomes[0].result, Err(JobError::TimedOut(_))));
        assert_eq!(outcomes[1].result, Err(JobError::DepFailed(0)));
        assert_eq!(outcomes[2].result, Err(JobError::DepFailed(1)));
    }

    #[test]
    fn honours_dependency_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct OrderSpy {
            seq: AtomicUsize,
            seen: Mutex<Vec<(usize, usize)>>,
        }
        impl ResultSource for OrderSpy {
            fn fetch(&self, _: &SweepSpec, job: &Job) -> Option<RunResult> {
                let t = self.seq.fetch_add(1, Ordering::SeqCst);
                self.seen.lock().unwrap().push((job.id, t));
                None
            }
            fn offer(&self, _: &SweepSpec, _: &Job, _: &RunResult) {}
        }
        let spec = spec_of(&["FwSoft"]);
        // Job 2 must start only after jobs 0 and 1 completed.
        let deps = vec![vec![], vec![], vec![0, 1]];
        let spy = OrderSpy {
            seq: AtomicUsize::new(0),
            seen: Mutex::new(Vec::new()),
        };
        let outcomes = run_dag(
            &spec,
            &deps,
            &spy,
            &PoolOptions {
                workers: 3,
                ..PoolOptions::default()
            },
        );
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        let seen = spy.seen.lock().unwrap();
        let start_of = |id: usize| seen.iter().find(|(j, _)| *j == id).unwrap().1;
        assert!(start_of(2) > start_of(0));
        assert!(start_of(2) > start_of(1));
    }

    #[test]
    fn sim_errors_propagate_through_the_pool_without_unwinding() {
        // A 10-cycle budget fails every job with SimError::Timeout; the
        // pool must surface it as JobError::Sim, not a caught panic.
        let mut spec = Arc::unwrap_or_clone(spec_of(&["FwSoft"]));
        spec.run_opts.max_cycles = 10;
        let spec = Arc::new(spec);
        let outcomes = run_dag(
            &spec,
            &[],
            &NoCache,
            &PoolOptions {
                workers: 2,
                ..PoolOptions::default()
            },
        );
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            match &o.result {
                Err(JobError::Sim(SimError::Timeout { max_cycles, .. })) => {
                    assert_eq!(*max_cycles, 10);
                }
                other => panic!("expected a sim timeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn cache_hits_skip_simulation() {
        struct Canned(RunResult);
        impl ResultSource for Canned {
            fn fetch(&self, _: &SweepSpec, job: &Job) -> Option<RunResult> {
                (job.id == 0).then(|| self.0.clone())
            }
            fn offer(&self, _: &SweepSpec, _: &Job, _: &RunResult) {}
        }
        let spec = spec_of(&["FwSoft"]);
        let jobs = spec.jobs();
        let canned = Canned(spec.run_job(&jobs[0]).expect("job runs"));
        let outcomes = run_dag(
            &spec,
            &[],
            &canned,
            &PoolOptions {
                workers: 2,
                ..PoolOptions::default()
            },
        );
        assert!(outcomes[0].cached);
        assert!(!outcomes[1].cached);
        assert_eq!(
            outcomes[0].result.as_ref().unwrap().metrics,
            canned.0.metrics
        );
    }
}
