//! A deterministic job-DAG executor over a scoped `std::thread` worker
//! pool.
//!
//! The (workload × policy) grid of a sweep is embarrassingly parallel —
//! every simulation is independent — but the executor is written as a
//! general dependency DAG so future sweeps (e.g. a ladder stage gated on
//! its static stage) can express ordering without a new engine.
//!
//! Design points:
//!
//! * **Determinism.** Results are recorded into a slot per job id, never
//!   in completion order, so any worker count (including 1) produces an
//!   identical result vector; ready jobs are claimed lowest-id-first.
//! * **Isolation.** A simulation that fails does so through
//!   `Result` — cycle-budget exhaustion and config rejections arrive as
//!   [`SimError`]s and fail *that job* ([`JobError::Sim`]); genuinely
//!   unexpected panics are still caught and recorded
//!   ([`JobError::Panicked`]) so the sweep continues either way. With a
//!   wall-clock timeout configured, each job runs on a dedicated thread;
//!   a job that exceeds the deadline is abandoned (the thread is
//!   detached — `std` threads cannot be killed — and the job reports
//!   [`JobError::TimedOut`]).
//! * **Failure propagation.** A job whose dependency failed is not run;
//!   it reports [`JobError::DepFailed`].

use crate::backoff::Backoff;
use crate::progress::Progress;
use miopt::runner::{Job, RunResult, SimError, SweepSpec};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The simulation returned an error (cycle-budget timeout or an
    /// inconsistent configuration).
    Sim(SimError),
    /// The simulation panicked. Carries the panic message plus the job's
    /// configuration (workload, policy, seed) so the report alone is
    /// enough to reproduce the crash.
    Panicked {
        /// The panic message.
        message: String,
        /// Workload name of the crashed job.
        workload: String,
        /// Policy label of the crashed job.
        policy: String,
        /// The global seed the job ran under.
        seed: u64,
    },
    /// The simulation exceeded the configured wall-clock timeout (the
    /// value is the timeout of the final attempt, after any escalation).
    TimedOut(Duration),
    /// A dependency (by job id) failed, so this job never ran.
    DepFailed(usize),
    /// The sweep was cancelled by fail-fast before this job started.
    Cancelled,
    /// The job failed every attempt of its retry budget and was
    /// quarantined; the sweep continued without it.
    Quarantined {
        /// How many attempts were made.
        attempts: usize,
        /// The failure of the final attempt.
        last: Box<JobError>,
    },
    /// A failure replayed verbatim from a resume journal; the payload is
    /// the journaled status line. Delete the journal entry to force a
    /// re-run.
    Journaled(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Sim(e) => write!(f, "{e}"),
            JobError::Panicked {
                message,
                workload,
                policy,
                seed,
            } => write!(
                f,
                "panicked: {message} (workload {workload}, policy {policy}, seed {seed})"
            ),
            JobError::TimedOut(t) => write!(f, "timed out after {:.1}s", t.as_secs_f64()),
            JobError::DepFailed(id) => write!(f, "dependency job {id} failed"),
            JobError::Cancelled => write!(f, "cancelled by fail-fast"),
            JobError::Quarantined { attempts, last } => {
                write!(f, "quarantined after {attempts} attempts: {last}")
            }
            JobError::Journaled(status) => write!(f, "{status}"),
        }
    }
}

/// The outcome of one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job that ran (or was skipped).
    pub job: Job,
    /// The simulation result, or why there is none.
    pub result: Result<RunResult, JobError>,
    /// Wall time spent on this job (≈0 for cache hits and skips).
    pub elapsed: Duration,
    /// Whether the result came from a [`ResultSource`] (the persistent
    /// cache or a resume journal) rather than a fresh simulation.
    pub cached: bool,
    /// How many times the job was executed (0 for source hits and
    /// skipped jobs, ≥2 only when a retry policy re-ran it).
    pub attempts: usize,
}

/// How failed jobs are retried before being quarantined.
///
/// Only wall-clock timeouts and panics are retried: the simulator is
/// deterministic, so a [`SimError`] would fail identically every time.
/// A job that exhausts its attempts is reported as
/// [`JobError::Quarantined`] and the sweep continues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (1 = no retry, the default).
    pub max_attempts: usize,
    /// Shared backoff schedule ([`crate::backoff::Backoff`]): capped
    /// exponential growth with deterministic per-job jitter.
    pub backoff: Backoff,
    /// Double the job's wall-clock budget after each timed-out attempt,
    /// so a job that was merely slow (a loaded machine, a pessimal
    /// schedule) gets room to finish.
    pub escalate_timeout: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::default(),
            escalate_timeout: true,
        }
    }
}

/// Executor options. The default is every available core, no timeout,
/// no retries, no fail-fast, no progress output.
#[derive(Debug, Clone, Default)]
pub struct PoolOptions {
    /// Worker threads; 0 means [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Per-job wall-clock timeout; `None` relies on the simulator's own
    /// cycle budget to terminate hung configurations.
    pub job_timeout: Option<Duration>,
    /// Print per-job completion lines to stderr.
    pub progress: bool,
    /// Retry policy for timed-out and panicked jobs.
    pub retry: RetryPolicy,
    /// Cancel every not-yet-started job as soon as any job fails
    /// (running jobs finish; cancelled jobs report
    /// [`JobError::Cancelled`]).
    pub fail_fast: bool,
}

impl PoolOptions {
    /// The effective worker count.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// A job result source consulted before simulating (the persistent
/// cache and the resume journal, in production; anything in tests).
pub trait ResultSource: Sync {
    /// A previously recorded outcome for `job`, if one exists. Sources
    /// that only record successes (the cache) return `Some(Ok(_))` or
    /// `None`; a resume journal also replays failures as `Some(Err(_))`.
    fn fetch(&self, spec: &SweepSpec, job: &Job) -> Option<Result<RunResult, JobError>>;
    /// Offers a freshly computed outcome (success or failure) for
    /// persistence. Not called for outcomes served by `fetch`.
    fn offer(&self, spec: &SweepSpec, job: &Job, outcome: &JobOutcome);
}

/// A no-op source: every job simulates.
pub struct NoCache;

impl ResultSource for NoCache {
    fn fetch(&self, _: &SweepSpec, _: &Job) -> Option<Result<RunResult, JobError>> {
        None
    }
    fn offer(&self, _: &SweepSpec, _: &Job, _: &JobOutcome) {}
}

struct DagState {
    /// Unsatisfied dependency count per job; `usize::MAX` marks claimed.
    waiting: Vec<usize>,
    /// Jobs ready to claim, lowest id first.
    ready: BinaryHeap<Reverse<usize>>,
    /// Slot per job id.
    outcomes: Vec<Option<JobOutcome>>,
    /// Jobs without a recorded outcome yet.
    unfinished: usize,
}

struct Dag {
    state: Mutex<DagState>,
    wake: Condvar,
    /// dependents[i] = jobs that wait on job i.
    dependents: Vec<Vec<usize>>,
}

/// Runs every job of `spec` (with `deps[i]` = ids that must succeed
/// before job `i` runs) across a scoped worker pool and returns one
/// outcome per job, in job-id order regardless of completion order.
///
/// `deps` may be empty, meaning no ordering constraints.
///
/// # Panics
///
/// Panics if `deps` is non-empty but not exactly one entry per job, or
/// if a dependency id is out of range (a malformed DAG is a programming
/// error, not a job failure).
pub fn run_dag(
    spec: &Arc<SweepSpec>,
    deps: &[Vec<usize>],
    source: &dyn ResultSource,
    opts: &PoolOptions,
) -> Vec<JobOutcome> {
    let jobs = spec.jobs();
    let n = jobs.len();
    let deps: Vec<Vec<usize>> = if deps.is_empty() {
        vec![Vec::new(); n]
    } else {
        assert_eq!(deps.len(), n, "one dependency list per job");
        deps.to_vec()
    };
    for d in deps.iter().flatten() {
        assert!(*d < n, "dependency id {d} out of range");
    }
    let mut dependents = vec![Vec::new(); n];
    let mut waiting = vec![0usize; n];
    for (i, ds) in deps.iter().enumerate() {
        waiting[i] = ds.len();
        for &d in ds {
            dependents[d].push(i);
        }
    }
    let ready: BinaryHeap<Reverse<usize>> =
        (0..n).filter(|&i| waiting[i] == 0).map(Reverse).collect();
    assert!(
        n == 0 || !ready.is_empty(),
        "dependency cycle: no runnable job"
    );

    let dag = Dag {
        state: Mutex::new(DagState {
            waiting,
            ready,
            outcomes: vec![None; n],
            unfinished: n,
        }),
        wake: Condvar::new(),
        dependents,
    };
    let progress = Progress::new(n, opts.progress);
    let workers = opts.effective_workers().min(n.max(1));

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| worker(spec, &dag, source, opts, &progress));
        }
    });

    let state = dag.state.into_inner().expect("workers exited cleanly");
    assert_eq!(
        state.unfinished, 0,
        "executor finished with unrecorded jobs"
    );
    state
        .outcomes
        .into_iter()
        .map(|o| o.expect("every job recorded"))
        .collect()
}

fn worker(
    spec: &Arc<SweepSpec>,
    dag: &Dag,
    source: &dyn ResultSource,
    opts: &PoolOptions,
    progress: &Progress,
) {
    let jobs = spec.jobs();
    loop {
        let job = {
            let mut st = dag.state.lock().expect("pool lock");
            loop {
                if st.unfinished == 0 {
                    return;
                }
                if let Some(Reverse(id)) = st.ready.pop() {
                    st.waiting[id] = usize::MAX;
                    break jobs[id];
                }
                st = dag.wake.wait(st).expect("pool lock");
            }
        };

        let started = Instant::now();
        let (result, cached, attempts) = match source.fetch(spec, &job) {
            Some(hit) => (hit, true, 0),
            None => {
                let (r, attempts) = execute_with_retry(spec, job, opts);
                (r, false, attempts)
            }
        };
        let outcome = JobOutcome {
            job,
            result,
            elapsed: started.elapsed(),
            cached,
            attempts,
        };
        if !cached {
            source.offer(spec, &job, &outcome);
        }
        progress.report(&spec.job_label(&job), &outcome);
        record(dag, &jobs, outcome, progress, opts.fail_fast);
    }
}

/// Records an outcome, unblocking or failing dependents, and wakes
/// waiting workers. With `fail_fast`, the first failure also cancels
/// every job that has not started yet.
fn record(dag: &Dag, jobs: &[Job], outcome: JobOutcome, progress: &Progress, fail_fast: bool) {
    let mut st = dag.state.lock().expect("pool lock");
    let mut pending = vec![outcome];
    while let Some(o) = pending.pop() {
        let id = o.job.id;
        let failed = o.result.is_err();
        debug_assert!(st.outcomes[id].is_none(), "job {id} recorded twice");
        st.outcomes[id] = Some(o);
        st.unfinished -= 1;
        for &dep in &dag.dependents[id] {
            if failed {
                // Fail the whole downstream cone without running it.
                if st.outcomes[dep].is_none() && st.waiting[dep] != usize::MAX {
                    st.waiting[dep] = usize::MAX;
                    let skipped = JobOutcome {
                        job: jobs[dep],
                        result: Err(JobError::DepFailed(id)),
                        elapsed: Duration::ZERO,
                        cached: false,
                        attempts: 0,
                    };
                    progress.report("(skipped)", &skipped);
                    pending.push(skipped);
                }
            } else if st.waiting[dep] != usize::MAX {
                st.waiting[dep] -= 1;
                if st.waiting[dep] == 0 {
                    st.ready.push(Reverse(dep));
                }
            }
        }
        if failed && fail_fast {
            // Cancel everything not yet claimed by a worker. In-flight
            // jobs finish and record normally.
            for (cancel, &job) in jobs.iter().enumerate() {
                if st.outcomes[cancel].is_none() && st.waiting[cancel] != usize::MAX {
                    st.waiting[cancel] = usize::MAX;
                    let cancelled = JobOutcome {
                        job,
                        result: Err(JobError::Cancelled),
                        elapsed: Duration::ZERO,
                        cached: false,
                        attempts: 0,
                    };
                    progress.report("(cancelled)", &cancelled);
                    pending.push(cancelled);
                }
            }
            st.ready.clear();
        }
    }
    drop(st);
    dag.wake.notify_all();
}

/// Runs one job under the pool's retry policy. Returns the final result
/// and the number of attempts made. Only transient failures (wall-clock
/// timeouts, panics) are retried; when a retry budget > 1 is exhausted
/// the final error is wrapped in [`JobError::Quarantined`].
fn execute_with_retry(
    spec: &Arc<SweepSpec>,
    job: Job,
    opts: &PoolOptions,
) -> (Result<RunResult, JobError>, usize) {
    let policy = &opts.retry;
    let budget = policy.max_attempts.max(1);
    let mut timeout = opts.job_timeout;
    let mut attempt = 0;
    loop {
        attempt += 1;
        match execute(spec, job, timeout) {
            Ok(r) => return (Ok(r), attempt),
            Err(e) => {
                let retryable = matches!(e, JobError::Panicked { .. } | JobError::TimedOut(_));
                if !retryable {
                    return (Err(e), attempt);
                }
                if attempt >= budget {
                    if budget > 1 {
                        return (
                            Err(JobError::Quarantined {
                                attempts: attempt,
                                last: Box::new(e),
                            }),
                            attempt,
                        );
                    }
                    return (Err(e), attempt);
                }
                if policy.escalate_timeout && matches!(e, JobError::TimedOut(_)) {
                    timeout = timeout.map(|t| t.saturating_mul(2));
                }
                std::thread::sleep(policy.backoff.delay(job.id as u64, attempt as u32));
            }
        }
    }
}

/// Runs one job once. Expected failures (cycle-budget exhaustion, bad
/// configs) flow through `run_job`'s `Result` as [`JobError::Sim`];
/// `catch_unwind` remains only as a safety net for genuine bugs, and a
/// wall-clock timeout isolates hung jobs when configured.
fn execute(
    spec: &Arc<SweepSpec>,
    job: Job,
    timeout: Option<Duration>,
) -> Result<RunResult, JobError> {
    match timeout {
        None => match catch_unwind(AssertUnwindSafe(|| spec.run_job(&job))) {
            Ok(result) => result.map_err(JobError::Sim),
            Err(p) => Err(panicked(spec, &job, panic_message(p.as_ref()))),
        },
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            let thread_spec = Arc::clone(spec);
            let started = std::time::Instant::now();
            // Detached on purpose: a hung simulation cannot be killed, so
            // the thread is abandoned and dies with the process.
            std::thread::Builder::new()
                .name(format!("miopt-job-{}", job.id))
                .spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| thread_spec.run_job(&job)));
                    let _ = tx.send(r);
                })
                .expect("spawn job thread");
            match rx.recv_timeout(limit) {
                // The budget binds even when the result arrives: on a
                // loaded machine this orchestrator thread can be starved
                // past the job's whole runtime, and a result that is
                // already waiting makes `recv_timeout` succeed no matter
                // how small the limit. Enforcing the elapsed wall clock
                // here keeps "timed out" deterministic instead of a race
                // between the job and the scheduler.
                Ok(_) if started.elapsed() > limit => Err(JobError::TimedOut(limit)),
                Ok(Ok(result)) => result.map_err(JobError::Sim),
                Ok(Err(p)) => Err(panicked(spec, &job, panic_message(p.as_ref()))),
                Err(mpsc::RecvTimeoutError::Timeout) => Err(JobError::TimedOut(limit)),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    Err(panicked(spec, &job, "job thread died".to_string()))
                }
            }
        }
    }
}

/// Builds a [`JobError::Panicked`] carrying the crashed job's full
/// configuration so the report entry alone reproduces the crash.
fn panicked(spec: &SweepSpec, job: &Job, message: String) -> JobError {
    JobError::Panicked {
        message,
        workload: spec.workloads[job.workload].name.clone(),
        policy: job.policy.label(),
        seed: crate::provenance::GLOBAL_SEED,
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt::SystemConfig;
    use miopt_workloads::{by_name, SuiteConfig};

    fn spec_of(names: &[&str]) -> Arc<SweepSpec> {
        let s = SuiteConfig::quick();
        Arc::new(SweepSpec::statics(
            SystemConfig::small_test(),
            names.iter().map(|n| by_name(&s, n).unwrap()).collect(),
        ))
    }

    #[test]
    fn pool_matches_serial_for_any_worker_count() {
        let spec = spec_of(&["FwSoft"]);
        let serial = run_dag(
            &spec,
            &[],
            &NoCache,
            &PoolOptions {
                workers: 1,
                ..PoolOptions::default()
            },
        );
        let parallel = run_dag(
            &spec,
            &[],
            &NoCache,
            &PoolOptions {
                workers: 4,
                ..PoolOptions::default()
            },
        );
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.job, b.job, "slot order must be job order");
            let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(ra.metrics, rb.metrics);
        }
    }

    #[test]
    fn dep_failure_skips_the_downstream_cone() {
        let spec = spec_of(&["FwSoft"]);
        // Chain 0 <- 1 <- 2; job 0 is forced to fail with a nanosecond
        // timeout, which must fail the whole downstream cone unrun.
        let deps = vec![vec![], vec![0], vec![1]];
        let opts = PoolOptions {
            workers: 2,
            job_timeout: Some(Duration::from_nanos(1)),
            ..PoolOptions::default()
        };
        let outcomes = run_dag(&spec, &deps, &NoCache, &opts);
        assert!(matches!(outcomes[0].result, Err(JobError::TimedOut(_))));
        assert_eq!(outcomes[1].result, Err(JobError::DepFailed(0)));
        assert_eq!(outcomes[2].result, Err(JobError::DepFailed(1)));
    }

    #[test]
    fn honours_dependency_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct OrderSpy {
            seq: AtomicUsize,
            seen: Mutex<Vec<(usize, usize)>>,
        }
        impl ResultSource for OrderSpy {
            fn fetch(&self, _: &SweepSpec, job: &Job) -> Option<Result<RunResult, JobError>> {
                let t = self.seq.fetch_add(1, Ordering::SeqCst);
                self.seen.lock().unwrap().push((job.id, t));
                None
            }
            fn offer(&self, _: &SweepSpec, _: &Job, _: &JobOutcome) {}
        }
        let spec = spec_of(&["FwSoft"]);
        // Job 2 must start only after jobs 0 and 1 completed.
        let deps = vec![vec![], vec![], vec![0, 1]];
        let spy = OrderSpy {
            seq: AtomicUsize::new(0),
            seen: Mutex::new(Vec::new()),
        };
        let outcomes = run_dag(
            &spec,
            &deps,
            &spy,
            &PoolOptions {
                workers: 3,
                ..PoolOptions::default()
            },
        );
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        let seen = spy.seen.lock().unwrap();
        let start_of = |id: usize| seen.iter().find(|(j, _)| *j == id).unwrap().1;
        assert!(start_of(2) > start_of(0));
        assert!(start_of(2) > start_of(1));
    }

    #[test]
    fn sim_errors_propagate_through_the_pool_without_unwinding() {
        // A 10-cycle budget fails every job with SimError::Timeout; the
        // pool must surface it as JobError::Sim, not a caught panic.
        let mut spec = Arc::unwrap_or_clone(spec_of(&["FwSoft"]));
        spec.run_opts.max_cycles = 10;
        let spec = Arc::new(spec);
        let outcomes = run_dag(
            &spec,
            &[],
            &NoCache,
            &PoolOptions {
                workers: 2,
                ..PoolOptions::default()
            },
        );
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            match &o.result {
                Err(JobError::Sim(SimError::Timeout { max_cycles, .. })) => {
                    assert_eq!(*max_cycles, 10);
                }
                other => panic!("expected a sim timeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn cache_hits_skip_simulation() {
        struct Canned(RunResult);
        impl ResultSource for Canned {
            fn fetch(&self, _: &SweepSpec, job: &Job) -> Option<Result<RunResult, JobError>> {
                (job.id == 0).then(|| Ok(self.0.clone()))
            }
            fn offer(&self, _: &SweepSpec, _: &Job, _: &JobOutcome) {}
        }
        let spec = spec_of(&["FwSoft"]);
        let jobs = spec.jobs();
        let canned = Canned(spec.run_job(&jobs[0]).expect("job runs"));
        let outcomes = run_dag(
            &spec,
            &[],
            &canned,
            &PoolOptions {
                workers: 2,
                ..PoolOptions::default()
            },
        );
        assert!(outcomes[0].cached);
        assert_eq!(outcomes[0].attempts, 0);
        assert!(!outcomes[1].cached);
        assert_eq!(outcomes[1].attempts, 1);
        assert_eq!(
            outcomes[0].result.as_ref().unwrap().metrics,
            canned.0.metrics
        );
    }

    #[test]
    fn panicked_jobs_report_message_and_config() {
        use miopt::runner::JobFault;
        let mut spec = Arc::unwrap_or_clone(spec_of(&["FwSoft"]));
        spec.faults = vec![JobFault::Panic(1)];
        let spec = Arc::new(spec);
        let outcomes = run_dag(
            &spec,
            &[],
            &NoCache,
            &PoolOptions {
                workers: 2,
                ..PoolOptions::default()
            },
        );
        match &outcomes[1].result {
            Err(JobError::Panicked {
                message,
                workload,
                policy,
                seed,
            }) => {
                assert!(
                    message.contains("injected fault"),
                    "panic message survives: {message}"
                );
                assert_eq!(workload, "FwSoft");
                assert_eq!(policy, &spec.jobs()[1].policy.label());
                assert_eq!(*seed, crate::provenance::GLOBAL_SEED);
            }
            other => panic!("expected a panic record, got {other:?}"),
        }
        // The panic is confined to job 1; its grid neighbours still run.
        assert!(outcomes[0].result.is_ok());
        assert!(outcomes[2].result.is_ok());
    }

    #[test]
    fn hanging_jobs_are_retried_with_escalation_then_quarantined() {
        use miopt::runner::JobFault;
        let mut spec = Arc::unwrap_or_clone(spec_of(&["FwSoft"]));
        spec.faults = vec![JobFault::Hang(0)];
        let spec = Arc::new(spec);
        let opts = PoolOptions {
            workers: 2,
            job_timeout: Some(Duration::from_millis(50)),
            retry: RetryPolicy {
                max_attempts: 2,
                backoff: Backoff::new(Duration::from_millis(5)),
                escalate_timeout: true,
            },
            ..PoolOptions::default()
        };
        let outcomes = run_dag(&spec, &[], &NoCache, &opts);
        match &outcomes[0].result {
            Err(JobError::Quarantined { attempts, last }) => {
                assert_eq!(*attempts, 2);
                // The second attempt ran with a doubled wall-clock budget.
                assert_eq!(**last, JobError::TimedOut(Duration::from_millis(100)));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(outcomes[0].attempts, 2);
        assert!(outcomes[1].result.is_ok());
        assert!(outcomes[2].result.is_ok());
    }

    #[test]
    fn fail_fast_cancels_the_queue_after_the_first_failure() {
        use miopt::runner::JobFault;
        let mut spec = Arc::unwrap_or_clone(spec_of(&["FwSoft"]));
        spec.faults = vec![JobFault::Panic(0)];
        let spec = Arc::new(spec);
        // One worker makes the order deterministic: job 0 panics, then
        // the queued jobs 1 and 2 must be cancelled, never run.
        let opts = PoolOptions {
            workers: 1,
            fail_fast: true,
            ..PoolOptions::default()
        };
        let outcomes = run_dag(&spec, &[], &NoCache, &opts);
        assert!(matches!(outcomes[0].result, Err(JobError::Panicked { .. })));
        assert_eq!(outcomes[1].result, Err(JobError::Cancelled));
        assert_eq!(outcomes[2].result, Err(JobError::Cancelled));
        assert_eq!(outcomes[1].attempts, 0);
    }
}
