//! High-level sweep orchestration: a [`SweepSpec`] in, executed through
//! the worker pool with optional persistent caching and crash-resilient
//! journaling, a [`SweepReport`] (provenance + per-job records) out.

use crate::cache::{CacheKey, ResultCache};
use crate::journal::{self, Journal, JournalWriter};
use crate::pool::{run_dag, JobError, JobOutcome, NoCache, PoolOptions, ResultSource};
use crate::provenance::Provenance;
use crate::results::{job_record, job_records, JobRecord, SweepReport};
use miopt::runner::{Job, RunResult, SweepSpec};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Orchestration options for one sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker pool configuration.
    pub pool: PoolOptions,
    /// Persistent result cache; `None` simulates every job.
    pub cache: Option<ResultCache>,
}

/// Where a journaled sweep keeps its write-ahead state, and whether this
/// invocation resumes an interrupted run.
#[derive(Debug, Clone)]
pub struct JournalOptions {
    /// Directory holding journals and reports (normally `results/runs`).
    pub dir: PathBuf,
    /// Resume: replay the existing journal instead of starting fresh.
    pub resume: bool,
}

/// A finished sweep: every job outcome plus the structured report.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// One outcome per job, in job-id order.
    pub outcomes: Vec<JobOutcome>,
    /// The report ready to write under `results/runs/`.
    pub report: SweepReport,
    /// Journal state files to remove once the final report is safely on
    /// disk (empty for unjournaled sweeps).
    pub cleanup: Vec<PathBuf>,
}

impl SweepRun {
    /// The successful results in job-id order, or a description of every
    /// failed job.
    ///
    /// # Errors
    ///
    /// Lists each failed job as `label: error`, one per line.
    pub fn results(&self, spec: &SweepSpec) -> Result<Vec<RunResult>, String> {
        let mut failures = Vec::new();
        let mut results = Vec::with_capacity(self.outcomes.len());
        for o in &self.outcomes {
            match &o.result {
                Ok(r) => results.push(r.clone()),
                Err(e) => failures.push(format!("{}: {e}", spec.job_label(&o.job))),
            }
        }
        if failures.is_empty() {
            Ok(results)
        } else {
            Err(failures.join("\n"))
        }
    }

    /// Removes journal/partial state left behind by a journaled sweep
    /// (the journal store directory and the partial report). Call only
    /// after the final report has been written.
    pub fn remove_journal_state(&self) {
        for path in &self.cleanup {
            if path.is_dir() {
                let _ = std::fs::remove_dir_all(path);
            } else {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

/// [`ResultSource`] adapter over the persistent cache. Store failures
/// are reported to stderr but never fail the sweep: a read-only checkout
/// still computes, just without persistence.
struct CacheSource {
    cache: ResultCache,
}

impl ResultSource for CacheSource {
    fn fetch(&self, spec: &SweepSpec, job: &Job) -> Option<Result<RunResult, JobError>> {
        self.cache.load(spec, job).map(Ok)
    }

    fn offer(&self, spec: &SweepSpec, job: &Job, outcome: &JobOutcome) {
        let Ok(result) = &outcome.result else { return };
        if let Err(e) = self.cache.store(spec, job, result) {
            eprintln!(
                "warning: result cache store failed for {}: {e}",
                spec.job_label(job)
            );
        }
    }
}

/// The continuously rewritten partial report of a journaled sweep: after
/// every job, `<name>.partial.json` is atomically replaced so that a
/// kill at *any* instant leaves a well-formed report of everything done
/// so far. This is the graceful-interruption mechanism — no signal
/// handler needed.
struct PartialState {
    path: PathBuf,
    name: String,
    provenance: Provenance,
    records: Mutex<Vec<JobRecord>>,
}

impl PartialState {
    fn push_and_rewrite(&self, rec: JobRecord) {
        let mut records = self.records.lock().expect("partial-report lock");
        records.push(rec);
        let mut jobs = records.clone();
        jobs.sort_by_key(|r| r.id);
        let report = SweepReport {
            name: self.name.clone(),
            provenance: self.provenance.clone(),
            jobs,
        };
        if let Err(e) = journal::replace_file(&self.path, &report.to_json().to_pretty()) {
            eprintln!("warning: partial report write failed: {e}");
        }
    }
}

/// [`ResultSource`] for journaled sweeps: replays journal entries from a
/// previous (killed) run, falls through to the persistent cache, and
/// write-ahead-logs every freshly computed outcome.
struct JournalSource {
    /// Outcomes recorded by the interrupted run, by job id.
    served: HashMap<usize, JobRecord>,
    writer: JournalWriter,
    inner: Option<CacheSource>,
    partial: PartialState,
}

impl ResultSource for JournalSource {
    fn fetch(&self, spec: &SweepSpec, job: &Job) -> Option<Result<RunResult, JobError>> {
        if let Some(rec) = self.served.get(&job.id) {
            return Some(replay(spec, job, rec));
        }
        self.inner.as_ref().and_then(|c| c.fetch(spec, job))
    }

    fn offer(&self, spec: &SweepSpec, job: &Job, outcome: &JobOutcome) {
        let rec = job_record(spec, outcome, &CacheKey::for_job(spec, job));
        if let Err(e) = self.writer.append(&rec) {
            eprintln!(
                "warning: journal append failed for {}: {e}",
                spec.job_label(job)
            );
        }
        if let Some(inner) = &self.inner {
            inner.offer(spec, job, outcome);
        }
        self.partial.push_and_rewrite(rec);
    }
}

/// Reconstructs a pool outcome from a journaled record: successes
/// rebuild the [`RunResult`] from the stored metrics; failures replay as
/// [`JobError::Journaled`] without re-running the job.
fn replay(spec: &SweepSpec, job: &Job, rec: &JobRecord) -> Result<RunResult, JobError> {
    match &rec.metrics {
        Some(m) => Ok(RunResult {
            workload: spec.workloads[job.workload].name.clone(),
            policy: job.policy,
            metrics: m.clone(),
            telemetry: None,
        }),
        None => Err(JobError::Journaled(rec.status.clone())),
    }
}

/// Journal state threaded through a journaled sweep.
struct JournalState {
    served: HashMap<usize, JobRecord>,
    writer: JournalWriter,
    dir: PathBuf,
}

/// Runs every job of `spec` and assembles the report named `name`,
/// without journaling.
///
/// When the spec enables telemetry, the result cache is bypassed for the
/// whole sweep: cached entries store metrics only, and serving a hit
/// would silently drop that job's time series.
#[must_use]
pub fn run_sweep(spec: &Arc<SweepSpec>, name: &str, opts: &SweepOptions) -> SweepRun {
    run_sweep_core(spec, name, opts, None)
}

/// Runs a sweep with a write-ahead journal under `journal.dir`, so a
/// killed run can be resumed with `journal.resume = true` (the CLI's
/// `--resume <run-id>`). Resumed jobs are replayed from the journal —
/// never re-simulated — and the final report matches an uninterrupted
/// run modulo timing fields.
///
/// # Errors
///
/// Returns a description when the spec has telemetry enabled (time
/// series are not journaled), when resuming and the journal is missing
/// or belongs to a different sweep, or when the journal cannot be
/// created.
pub fn run_sweep_journaled(
    spec: &Arc<SweepSpec>,
    name: &str,
    opts: &SweepOptions,
    journal: &JournalOptions,
) -> Result<SweepRun, String> {
    if spec.run_opts.telemetry_interval.is_some() {
        return Err(
            "telemetry sweeps cannot be journaled: time series are not written to the \
             journal, so a resumed run would silently lose them"
                .to_string(),
        );
    }
    let served: HashMap<usize, JobRecord> = if journal.resume {
        let loaded = Journal::load(&journal.dir, name, spec)?;
        loaded.entries.into_iter().map(|r| (r.id, r)).collect()
    } else {
        HashMap::new()
    };
    let writer = if journal.resume {
        JournalWriter::append_to(&journal.dir, name)
    } else {
        JournalWriter::create(&journal.dir, name, spec)
    }
    .map_err(|e| format!("cannot open journal for run `{name}`: {e}"))?;
    if journal.resume {
        eprintln!(
            "resuming `{name}`: {} of {} jobs already journaled",
            served.len(),
            spec.job_count()
        );
    }
    Ok(run_sweep_core(
        spec,
        name,
        opts,
        Some(JournalState {
            served,
            writer,
            dir: journal.dir.clone(),
        }),
    ))
}

fn run_sweep_core(
    spec: &Arc<SweepSpec>,
    name: &str,
    opts: &SweepOptions,
    journal: Option<JournalState>,
) -> SweepRun {
    let workers = opts.pool.effective_workers();
    let mut provenance = Provenance::collect(&spec.cfg, workers);
    provenance.telemetry_interval = spec.run_opts.telemetry_interval;
    let cache = if spec.run_opts.telemetry_interval.is_some() {
        if opts.cache.is_some() {
            eprintln!("note: telemetry enabled; bypassing the result cache so every job records a time series");
        }
        &None
    } else {
        &opts.cache
    };
    let started = Instant::now();
    let (outcomes, journaled) = match journal {
        Some(js) => {
            let served = js.served.clone();
            let source = JournalSource {
                served: js.served,
                writer: js.writer,
                inner: cache.clone().map(|cache| CacheSource { cache }),
                partial: PartialState {
                    path: journal::partial_path(&js.dir, name),
                    name: name.to_string(),
                    provenance: provenance.clone(),
                    records: Mutex::new(served.values().cloned().collect()),
                },
            };
            let outcomes = run_dag(spec, &[], &source, &opts.pool);
            (outcomes, Some((served, js.dir)))
        }
        None => match cache {
            Some(cache) => {
                let source = CacheSource {
                    cache: cache.clone(),
                };
                (run_dag(spec, &[], &source, &opts.pool), None)
            }
            None => (run_dag(spec, &[], &NoCache, &opts.pool), None),
        },
    };
    provenance.elapsed_ms = started.elapsed().as_millis() as u64;
    let keys: Vec<CacheKey> = spec
        .jobs()
        .iter()
        .map(|j| CacheKey::for_job(spec, j))
        .collect();
    let mut jobs = job_records(spec, &outcomes, &keys);
    let mut cleanup = Vec::new();
    if let Some((served, dir)) = journaled {
        // Journal-served jobs keep the record of the run that actually
        // computed them (original status, attempts, elapsed), so the
        // resumed report matches the uninterrupted one.
        for rec in served.into_values() {
            let id = rec.id;
            jobs[id] = rec;
        }
        cleanup.push(journal::journal_dir(&dir, name));
        cleanup.push(journal::partial_path(&dir, name));
    }
    provenance.quarantined = jobs
        .iter()
        .filter(|r| r.status.starts_with("quarantined"))
        .map(|r| format!("{}/{}", r.workload, r.policy))
        .collect();
    let report = SweepReport {
        name: name.to_string(),
        provenance,
        jobs,
    };
    SweepRun {
        outcomes,
        report,
        cleanup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt::SystemConfig;
    use miopt_workloads::{by_name, SuiteConfig};

    fn test_spec() -> Arc<SweepSpec> {
        Arc::new(SweepSpec::statics(
            SystemConfig::small_test(),
            vec![by_name(&SuiteConfig::quick(), "FwSoft").unwrap()],
        ))
    }

    #[test]
    fn sweep_produces_a_complete_report() {
        let spec = test_spec();
        let run = run_sweep(&spec, "unit", &SweepOptions::default());
        assert_eq!(run.outcomes.len(), spec.job_count());
        assert_eq!(run.report.jobs.len(), spec.job_count());
        assert_eq!(run.report.name, "unit");
        assert!(run.report.jobs.iter().all(|j| j.status == "ok"));
        assert!(run.cleanup.is_empty(), "unjournaled sweeps leave no state");
        let results = run.results(&spec).expect("all jobs succeed");
        let statics = spec.assemble_statics(&results);
        assert_eq!(statics.len(), 1);
        assert_eq!(statics[0].len(), 3);
    }

    #[test]
    fn caching_round_trips_through_a_real_sweep() {
        let dir = std::env::temp_dir().join(format!("miopt-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = test_spec();
        let opts = SweepOptions {
            cache: Some(ResultCache::new(&dir)),
            ..SweepOptions::default()
        };
        let cold = run_sweep(&spec, "cold", &opts);
        assert!(cold.outcomes.iter().all(|o| !o.cached));
        let warm = run_sweep(&spec, "warm", &opts);
        assert!(
            warm.outcomes.iter().all(|o| o.cached),
            "second run must hit"
        );
        for (a, b) in cold.outcomes.iter().zip(&warm.outcomes) {
            assert_eq!(
                a.result.as_ref().unwrap().metrics,
                b.result.as_ref().unwrap().metrics,
                "cached results must be bit-identical to fresh ones"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Strips the timing fields a resume legitimately changes, leaving
    /// everything that must be byte-identical.
    fn stable_json(report: &SweepReport) -> String {
        let mut doc = report.to_json();
        fn scrub(doc: &mut crate::json::Json) {
            use crate::json::Json;
            if let Json::Obj(pairs) = doc {
                pairs.retain(|(k, _)| {
                    !matches!(
                        k.as_str(),
                        "elapsed_ms" | "started_unix_ms" | "git_dirty" | "git_rev"
                    )
                });
                for (_, v) in pairs.iter_mut() {
                    scrub(v);
                }
            }
            if let Json::Arr(items) = doc {
                for v in items.iter_mut() {
                    scrub(v);
                }
            }
        }
        scrub(&mut doc);
        doc.to_pretty()
    }

    #[test]
    fn killed_sweeps_resume_without_rerunning_finished_jobs() {
        let dir = std::env::temp_dir().join(format!("miopt-resume-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = test_spec();
        let journal_opts = JournalOptions {
            dir: dir.clone(),
            resume: false,
        };

        // Reference: an uninterrupted journaled run.
        let full = run_sweep_journaled(&spec, "ref", &SweepOptions::default(), &journal_opts)
            .expect("journaled sweep runs");
        assert!(full.report.jobs.iter().all(|j| j.status == "ok"));
        assert!(
            journal::journal_dir(&dir, "ref").exists(),
            "journal exists until explicitly cleaned up"
        );
        full.remove_journal_state();
        assert!(!journal::journal_dir(&dir, "ref").exists());

        // Simulate a SIGKILL after two jobs: hand-build the journal an
        // interrupted run would have left behind.
        let w = JournalWriter::create(&dir, "killed", &spec).unwrap();
        for rec in &full.report.jobs[..2] {
            w.append(rec).unwrap();
        }
        drop(w);

        // Resume must complete the sweep, replaying — not re-running —
        // the two journaled jobs.
        let resumed = run_sweep_journaled(
            &spec,
            "killed",
            &SweepOptions::default(),
            &JournalOptions {
                dir: dir.clone(),
                resume: true,
            },
        )
        .expect("resume succeeds");
        assert!(resumed.outcomes[0].cached, "journaled job replayed");
        assert!(resumed.outcomes[1].cached, "journaled job replayed");
        assert_eq!(resumed.outcomes[0].attempts, 0);
        assert!(!resumed.outcomes[2].cached, "missing job simulated");

        // The resumed report is byte-identical modulo timing fields
        // (the report keeps the *original* run's records for replayed
        // jobs, so even their `cached`/`attempts` flags match).
        let mut reference = full.report.clone();
        reference.name = "killed".to_string();
        assert_eq!(stable_json(&reference), stable_json(&resumed.report));

        // Resuming a completed-and-cleaned run is a descriptive error.
        resumed.remove_journal_state();
        let err = run_sweep_journaled(
            &spec,
            "killed",
            &SweepOptions::default(),
            &JournalOptions {
                dir: dir.clone(),
                resume: true,
            },
        )
        .unwrap_err();
        assert!(err.contains("no journal"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
