//! High-level sweep orchestration: a [`SweepSpec`] in, executed through
//! the worker pool with optional persistent caching, a [`SweepReport`]
//! (provenance + per-job records) out.

use crate::cache::{CacheKey, ResultCache};
use crate::pool::{run_dag, JobOutcome, NoCache, PoolOptions, ResultSource};
use crate::provenance::Provenance;
use crate::results::{job_records, SweepReport};
use miopt::runner::{Job, RunResult, SweepSpec};
use std::sync::Arc;
use std::time::Instant;

/// Orchestration options for one sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker pool configuration.
    pub pool: PoolOptions,
    /// Persistent result cache; `None` simulates every job.
    pub cache: Option<ResultCache>,
}

/// A finished sweep: every job outcome plus the structured report.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// One outcome per job, in job-id order.
    pub outcomes: Vec<JobOutcome>,
    /// The report ready to write under `results/runs/`.
    pub report: SweepReport,
}

impl SweepRun {
    /// The successful results in job-id order, or a description of every
    /// failed job.
    ///
    /// # Errors
    ///
    /// Lists each failed job as `label: error`, one per line.
    pub fn results(&self, spec: &SweepSpec) -> Result<Vec<RunResult>, String> {
        let mut failures = Vec::new();
        let mut results = Vec::with_capacity(self.outcomes.len());
        for o in &self.outcomes {
            match &o.result {
                Ok(r) => results.push(r.clone()),
                Err(e) => failures.push(format!("{}: {e}", spec.job_label(&o.job))),
            }
        }
        if failures.is_empty() {
            Ok(results)
        } else {
            Err(failures.join("\n"))
        }
    }
}

/// [`ResultSource`] adapter over the persistent cache. Store failures
/// are reported to stderr but never fail the sweep: a read-only checkout
/// still computes, just without persistence.
struct CacheSource {
    cache: ResultCache,
}

impl ResultSource for CacheSource {
    fn fetch(&self, spec: &SweepSpec, job: &Job) -> Option<RunResult> {
        self.cache.load(spec, job)
    }

    fn offer(&self, spec: &SweepSpec, job: &Job, result: &RunResult) {
        if let Err(e) = self.cache.store(spec, job, result) {
            eprintln!(
                "warning: result cache store failed for {}: {e}",
                spec.job_label(job)
            );
        }
    }
}

/// Runs every job of `spec` and assembles the report named `name`.
///
/// When the spec enables telemetry, the result cache is bypassed for the
/// whole sweep: cached entries store metrics only, and serving a hit
/// would silently drop that job's time series.
#[must_use]
pub fn run_sweep(spec: &Arc<SweepSpec>, name: &str, opts: &SweepOptions) -> SweepRun {
    let workers = opts.pool.effective_workers();
    let mut provenance = Provenance::collect(&spec.cfg, workers);
    provenance.telemetry_interval = spec.run_opts.telemetry_interval;
    let cache = if spec.run_opts.telemetry_interval.is_some() {
        if opts.cache.is_some() {
            eprintln!("note: telemetry enabled; bypassing the result cache so every job records a time series");
        }
        &None
    } else {
        &opts.cache
    };
    let started = Instant::now();
    let outcomes = match cache {
        Some(cache) => {
            let source = CacheSource {
                cache: cache.clone(),
            };
            run_dag(spec, &[], &source, &opts.pool)
        }
        None => run_dag(spec, &[], &NoCache, &opts.pool),
    };
    provenance.elapsed_ms = started.elapsed().as_millis() as u64;
    let keys: Vec<CacheKey> = spec
        .jobs()
        .iter()
        .map(|j| CacheKey::for_job(spec, j))
        .collect();
    let report = SweepReport {
        name: name.to_string(),
        provenance,
        jobs: job_records(spec, &outcomes, &keys),
    };
    SweepRun { outcomes, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt::SystemConfig;
    use miopt_workloads::{by_name, SuiteConfig};

    fn test_spec() -> Arc<SweepSpec> {
        Arc::new(SweepSpec::statics(
            SystemConfig::small_test(),
            vec![by_name(&SuiteConfig::quick(), "FwSoft").unwrap()],
        ))
    }

    #[test]
    fn sweep_produces_a_complete_report() {
        let spec = test_spec();
        let run = run_sweep(&spec, "unit", &SweepOptions::default());
        assert_eq!(run.outcomes.len(), spec.job_count());
        assert_eq!(run.report.jobs.len(), spec.job_count());
        assert_eq!(run.report.name, "unit");
        assert!(run.report.jobs.iter().all(|j| j.status == "ok"));
        let results = run.results(&spec).expect("all jobs succeed");
        let statics = spec.assemble_statics(&results);
        assert_eq!(statics.len(), 1);
        assert_eq!(statics[0].len(), 3);
    }

    #[test]
    fn caching_round_trips_through_a_real_sweep() {
        let dir = std::env::temp_dir().join(format!("miopt-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = test_spec();
        let opts = SweepOptions {
            cache: Some(ResultCache::new(&dir)),
            ..SweepOptions::default()
        };
        let cold = run_sweep(&spec, "cold", &opts);
        assert!(cold.outcomes.iter().all(|o| !o.cached));
        let warm = run_sweep(&spec, "warm", &opts);
        assert!(
            warm.outcomes.iter().all(|o| o.cached),
            "second run must hit"
        );
        for (a, b) in cold.outcomes.iter().zip(&warm.outcomes) {
            assert_eq!(
                a.result.as_ref().unwrap().metrics,
                b.result.as_ref().unwrap().metrics,
                "cached results must be bit-identical to fresh ones"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
