//! Persistent result caching keyed by experiment identity.
//!
//! A sweep job is fully determined by `(system config, workload, policy)`
//! — the simulator is deterministic — so its [`Metrics`](miopt::Metrics) can be reused
//! across runs. The cache stores one JSON file per completed job under a
//! cache directory (default `results/cache/`), named by an FNV-1a 64
//! digest of:
//!
//! * the [`config_hash`] of the machine,
//! * the workload's [`stable_id`](miopt_workloads::Workload::stable_id),
//! * the policy label,
//! * the results [`SCHEMA_VERSION`] and
//!   the global seed.
//!
//! Any change to machine parameters, workload geometry, policy, schema,
//! or seed therefore misses the cache instead of resurrecting stale
//! numbers. Corrupt or unreadable entries are treated as misses. This is
//! also the schema migration mechanism: the v1→v2 stat-name flattening
//! bumped `SCHEMA_VERSION`, so every old entry simply misses and is
//! re-simulated (stale files can be deleted at leisure).
//!
//! Cache entries store metrics only, never telemetry time series (those
//! can be hundreds of epochs per run); telemetry-enabled sweeps bypass
//! the cache entirely so every run records a full series.

use crate::json::Json;
use crate::provenance::{config_hash, GLOBAL_SEED};
use crate::results::{metrics_from_json, metrics_to_json, SCHEMA_VERSION};
use miopt::runner::{Job, RunResult, SweepSpec};
use miopt_engine::hash::Fnv1a;
use std::path::PathBuf;

/// The identity of one cached experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey(u64);

impl CacheKey {
    /// The key for one job of a sweep.
    #[must_use]
    pub fn for_job(spec: &SweepSpec, job: &Job) -> CacheKey {
        let mut h = Fnv1a::new();
        h.write(config_hash(&spec.cfg).as_bytes());
        h.write(spec.workloads[job.workload].stable_id().as_bytes());
        h.write(job.policy.label().as_bytes());
        h.write_u64(u64::from(SCHEMA_VERSION));
        h.write_u64(GLOBAL_SEED);
        CacheKey(h.finish())
    }

    /// The key as fixed-width hex (the cache file stem).
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// A directory of cached job results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache { dir: dir.into() }
    }

    /// The conventional repository cache location.
    #[must_use]
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results/cache")
    }

    fn path_of(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Loads a cached result, or `None` on miss/corruption. The stored
    /// workload name and policy must match the requesting job (hash
    /// collisions or hand-edited files downgrade to a miss).
    #[must_use]
    pub fn load(&self, spec: &SweepSpec, job: &Job) -> Option<RunResult> {
        let key = CacheKey::for_job(spec, job);
        let text = std::fs::read_to_string(self.path_of(key)).ok()?;
        let doc = Json::parse(&text).ok()?;
        let workload = spec.workloads[job.workload].name.clone();
        if doc.get("workload")?.as_str()? != workload
            || doc.get("policy")?.as_str()? != job.policy.label()
        {
            return None;
        }
        let metrics = metrics_from_json(doc.get("metrics")?).ok()?;
        Some(RunResult {
            workload,
            policy: job.policy,
            metrics,
            telemetry: None,
        })
    }

    /// Stores a completed job's result. Write errors are reported, not
    /// fatal: a read-only checkout still runs sweeps, just uncached.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn store(&self, spec: &SweepSpec, job: &Job, result: &RunResult) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let key = CacheKey::for_job(spec, job);
        let doc = Json::obj([
            ("workload", Json::str(&result.workload)),
            (
                "workload_id",
                Json::str(spec.workloads[job.workload].stable_id()),
            ),
            ("policy", Json::str(job.policy.label())),
            ("config_hash", Json::str(config_hash(&spec.cfg))),
            ("schema_version", Json::U64(u64::from(SCHEMA_VERSION))),
            ("metrics", metrics_to_json(&result.metrics)),
        ]);
        // Write-then-rename so a crashed run never leaves a truncated
        // entry that would poison later lookups.
        let tmp = self.dir.join(format!(".{}.tmp", key.hex()));
        std::fs::write(&tmp, doc.to_pretty())?;
        std::fs::rename(&tmp, self.path_of(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt::SystemConfig;
    use miopt_workloads::{by_name, SuiteConfig};

    fn test_spec() -> SweepSpec {
        SweepSpec::statics(
            SystemConfig::small_test(),
            vec![by_name(&SuiteConfig::quick(), "FwSoft").unwrap()],
        )
    }

    #[test]
    fn keys_separate_every_identity_component() {
        let spec = test_spec();
        let jobs = spec.jobs();
        let base = CacheKey::for_job(&spec, &jobs[0]);
        // Different policy.
        assert_ne!(base, CacheKey::for_job(&spec, &jobs[1]));
        // Different machine.
        let mut other = spec.clone();
        other.cfg.queue_capacity += 1;
        assert_ne!(base, CacheKey::for_job(&other, &jobs[0]));
        // Same everything: equal.
        assert_eq!(base, CacheKey::for_job(&test_spec(), &jobs[0]));
    }

    #[test]
    fn store_load_round_trip_and_mismatch_rejection() {
        let dir = std::env::temp_dir().join(format!("miopt-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::new(&dir);
        let spec = test_spec();
        let jobs = spec.jobs();

        // Miss on empty cache.
        assert!(cache.load(&spec, &jobs[0]).is_none());

        let fresh = spec.run_job(&jobs[0]).expect("job runs");
        cache.store(&spec, &jobs[0], &fresh).unwrap();
        let hit = cache.load(&spec, &jobs[0]).expect("hit after store");
        assert_eq!(hit.metrics, fresh.metrics);
        assert_eq!(hit.workload, fresh.workload);

        // Other jobs still miss.
        assert!(cache.load(&spec, &jobs[1]).is_none());

        // Corrupt entry downgrades to a miss.
        let path = dir.join(format!("{}.json", CacheKey::for_job(&spec, &jobs[0]).hex()));
        std::fs::write(&path, "{ not json").unwrap();
        assert!(cache.load(&spec, &jobs[0]).is_none());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
