//! A dependency-free JSON document model, writer, and parser.
//!
//! The harness persists run results and provenance as JSON so external
//! tooling can consume them, but the workspace deliberately has no
//! external dependencies (it must build fully offline). This module
//! implements the small JSON subset the results schema needs:
//!
//! * objects preserve insertion order (serialized files are diffable),
//! * unsigned 64-bit integers round-trip exactly (cycle counts exceed
//!   `f64`'s 53-bit integer range in principle),
//! * floats round-trip exactly through Rust's shortest-representation
//!   formatting (`{:?}`),
//! * the parser accepts exactly what the writer emits, plus arbitrary
//!   whitespace.
//!
//! # Examples
//!
//! ```
//! use miopt_harness::json::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::str("FwSoft")),
//!     ("cycles", Json::U64(123_456)),
//!     ("ratio", Json::F64(0.5)),
//! ]);
//! let text = doc.to_pretty();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(doc, back);
//! assert_eq!(back.get("cycles").and_then(Json::as_u64), Some(123_456));
//! ```

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, serialized without a decimal point.
    U64(u64),
    /// A floating-point number (also covers negative integers).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks a key up in an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is an exact non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            // Accept floats that happen to be exact small integers, so a
            // hand-edited file with `"cycles": 100.0` still loads.
            Json::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) => Some(x as u64),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(n) => Some(n as f64),
            Json::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and trailing newline.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Writes a float using Rust's shortest round-trip representation,
/// always with a decimal point or exponent so it re-parses as `F64`.
fn write_f64(out: &mut String, x: f64) {
    assert!(x.is_finite(), "JSON cannot represent NaN/inf (got {x})");
    let s = format!("{x:?}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not produced by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code).ok_or_else(|| {
                                format!("surrogate \\u escape at byte {}", self.pos)
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character; `pos` only ever stops
                    // on ASCII structure, so it is a char boundary.
                    let c = self.text[self.pos..].chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::obj([
            ("null", Json::Null),
            ("yes", Json::Bool(true)),
            ("big", Json::U64(u64::MAX)),
            ("clock", Json::F64(1.6e9)),
            ("neg", Json::F64(-2.5)),
            ("text", Json::str("a \"quoted\"\nline\tand \\slash")),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj::<String>([])),
            (
                "arr",
                Json::Arr(vec![Json::U64(1), Json::str("two"), Json::Bool(false)]),
            ),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn u64_integers_survive_exactly() {
        for n in [0, 1, 1 << 53, u64::MAX - 1, u64::MAX] {
            let text = Json::U64(n).to_compact();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n), "{n}");
        }
    }

    #[test]
    fn floats_survive_exactly() {
        for x in [0.0, 1.6e9, 0.1, -1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let text = Json::F64(x).to_compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn whole_floats_reparse_as_floats() {
        let text = Json::F64(1600000000.0).to_compact();
        assert!(text.contains('.') || text.contains('e'), "{text}");
        assert!(matches!(Json::parse(&text).unwrap(), Json::F64(_)));
    }

    #[test]
    fn object_access_helpers() {
        let doc = Json::parse(r#"{"a": 1, "b": {"c": "x"}, "d": [true]}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x")
        );
        assert_eq!(
            doc.get("d").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(
            doc.get("d").unwrap().as_arr().unwrap()[0].as_bool(),
            Some(true)
        );
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "[1,]x",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn control_characters_escape_and_return() {
        let doc = Json::str("bell\u{7}end");
        let text = doc.to_compact();
        assert!(text.contains("\\u0007"), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }
}
