//! The `miopt-harness` binary: regenerates the paper's tables and
//! figures through the parallel sweep orchestrator. See
//! [`miopt_harness::cli`] for the flag reference.

fn main() {
    let args = miopt_harness::cli::parse_args(std::env::args().skip(1));
    std::process::exit(miopt_harness::cli::run(&args));
}
