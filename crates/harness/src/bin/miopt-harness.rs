//! The `miopt-harness` binary: regenerates the paper's tables and
//! figures through the parallel sweep orchestrator, runs the
//! multi-tenant serving sweep via the `serve` subcommand, and filters /
//! aggregates finished reports via the `query` subcommand. See
//! [`miopt_harness::cli`], [`miopt_harness::serve`], and
//! [`miopt_harness::query`] for the flag references.

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        let args = miopt_harness::serve::parse_serve_args(args);
        std::process::exit(miopt_harness::serve::run_serve(&args));
    }
    if args.peek().map(String::as_str) == Some("query") {
        args.next();
        let args = miopt_harness::query::parse_query_args(args);
        std::process::exit(miopt_harness::query::run_query(&args));
    }
    let args = miopt_harness::cli::parse_args(args);
    std::process::exit(miopt_harness::cli::run(&args));
}
