//! The shared retry backoff policy: capped exponential growth with
//! deterministic, seeded jitter.
//!
//! Both sweep execution paths — the figure sweeps' worker pool
//! ([`crate::pool`]) and the serve sweep's grid executor
//! ([`crate::serve`]) — retry transient failures (timeouts, panics).
//! Before this module each grew its own ad-hoc doubling loop; now both
//! share one [`Backoff`] so the schedule is defined, tested, and tuned
//! in exactly one place.
//!
//! Jitter matters even single-machine: when several workers hit a
//! transient failure at once (a loaded box starving every job past its
//! timeout), unjittered backoff retries them in lockstep and they
//! collide again. The jitter here is *deterministic* — a
//! [`SplitMix64`] stream keyed by `(seed, task, attempt)` — so the
//! schedule is reproducible run-to-run, testable to the nanosecond,
//! and still decorrelates tasks from each other. No wall clock, no
//! global RNG.

use miopt_engine::rng::SplitMix64;
use std::time::Duration;

/// A capped exponential backoff schedule with deterministic jitter.
///
/// Attempt `k` (1-based: the delay taken *after* the `k`-th failure)
/// waits `base · 2^(k-1)`, capped at `cap`, then jittered to a uniform
/// value in `[0.75·d, 1.25·d)` using a stream derived from `seed` and
/// the task id. Two calls with the same `(seed, task, attempt)` always
/// return the same delay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry (pre-jitter).
    pub base: Duration,
    /// Upper bound the exponential growth saturates at (pre-jitter).
    pub cap: Duration,
    /// Seed of the jitter streams. Sweeps use a fixed seed so retry
    /// schedules are part of the reproducible run.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff {
            base: Duration::from_millis(100),
            cap: Duration::from_secs(5),
            seed: 0,
        }
    }
}

impl Backoff {
    /// A schedule starting at `base` with the default cap and seed.
    #[must_use]
    pub fn new(base: Duration) -> Backoff {
        Backoff {
            base,
            ..Backoff::default()
        }
    }

    /// The delay to sleep after failed attempt number `attempt`
    /// (1-based) of task `task`. Deterministic in all three inputs.
    #[must_use]
    pub fn delay(&self, task: u64, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(63);
        let nanos = u128::from(self.base.as_nanos() as u64)
            .saturating_mul(1u128 << exp)
            .min(self.cap.as_nanos());
        // Jitter to [0.75·d, 1.25·d) with pure integer math: three
        // quarters guaranteed, plus a seeded uniform draw of up to one
        // half. (d/2 · r) >> 64 is the top 64 bits of the product, i.e.
        // d/2 scaled by r/2^64 ∈ [0, 1).
        let mut stream = SplitMix64::new(
            self.seed ^ task.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt),
        );
        let r = u128::from(stream.next_u64());
        let jittered = nanos / 4 * 3 + (((nanos / 2) * r) >> 64);
        Duration::from_nanos(u64::try_from(jittered).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_decorrelated() {
        let b = Backoff::default();
        assert_eq!(b.delay(3, 1), b.delay(3, 1), "same inputs, same delay");
        assert_ne!(b.delay(3, 1), b.delay(4, 1), "tasks are decorrelated");
        assert_ne!(
            b.delay(3, 1),
            Backoff {
                seed: 1,
                ..Backoff::default()
            }
            .delay(3, 1),
            "the seed matters"
        );
    }

    #[test]
    fn growth_is_exponential_within_jitter_bounds() {
        let b = Backoff::default();
        for task in 0..16u64 {
            for attempt in 1..=6u32 {
                let ideal = (b.base * 2u32.pow(attempt - 1)).min(b.cap);
                let d = b.delay(task, attempt);
                assert!(
                    d >= ideal.mul_f64(0.75) && d < ideal.mul_f64(1.25),
                    "task {task} attempt {attempt}: {d:?} outside [0.75, 1.25)·{ideal:?}"
                );
            }
        }
    }

    #[test]
    fn the_cap_binds() {
        let b = Backoff {
            base: Duration::from_millis(100),
            cap: Duration::from_millis(400),
            seed: 0,
        };
        // Attempt 10 would be 51.2s uncapped; jitter keeps it under
        // 1.25 × the 400ms cap.
        assert!(b.delay(0, 10) <= Duration::from_millis(500));
        // Sub-cap attempts are unaffected by the cap.
        assert!(b.delay(0, 1) < Duration::from_millis(125));
    }

    /// Pins the exact schedule: any change to the growth curve or the
    /// jitter derivation shows up as a failing nanosecond count here.
    #[test]
    fn the_schedule_is_pinned() {
        let b = Backoff::default();
        let schedule: Vec<u64> = (1..=4).map(|a| b.delay(0, a).as_nanos() as u64).collect();
        assert_eq!(
            schedule,
            vec![103_328_078, 209_118_973, 322_690_068, 772_582_327],
            "the default schedule for task 0 changed"
        );
    }
}
