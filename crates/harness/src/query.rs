//! The `miopt-harness query` subcommand: filter and aggregate the
//! sweep reports under a runs directory without leaving the terminal.
//!
//! A run directory accumulates figure-sweep and serve-sweep reports
//! (plus, after a crash, journal stores). `query` answers the two
//! questions that otherwise need ad-hoc scripts: *"what do the numbers
//! say?"* — filter job rows by workload/policy/status and aggregate any
//! dotted metric key — and *"what state is this run directory in?"* —
//! `--journals` inspects every journal store read-only and reports
//! clean/torn/corrupt per store, which is the first step of diagnosing
//! an interrupted or damaged run.
//!
//! ```text
//! miopt-harness query [--dir <runs_dir>] [--run <name>]
//!     [--workload <name>] [--policy <label>] [--status <status>]
//!     [--metric key[,key...]] [--agg count|sum|min|max|mean|p50|p95|p99]
//!     [--json] [--journals]
//! ```
//!
//! Figure-sweep reports contribute one row per job; serve reports
//! contribute one row per job × tenant (the tenant's workload becomes
//! the row's workload). Metric keys are the reports' own dotted names
//! (`cycles`, `l2.load_hits`, `dram.row_conflicts`, `p99`, …).

use crate::json::Json;
use miopt_store::Wal;
use std::path::PathBuf;

/// Parsed `query` subcommand options.
pub struct QueryArgs {
    /// Directory scanned for `*.json` reports and `*.journal` stores.
    pub runs_dir: PathBuf,
    /// Keep only the report whose `sweep` name equals this.
    pub run: Option<String>,
    /// Keep only rows whose workload name equals this.
    pub workload: Option<String>,
    /// Keep only rows whose policy label equals this.
    pub policy: Option<String>,
    /// Keep only rows whose status equals this (`ok`, or a failure
    /// text; the special value `failed` matches every non-`ok` row).
    pub status: Option<String>,
    /// Metric keys to aggregate (dotted names from the reports).
    pub metrics: Vec<String>,
    /// Aggregations to compute per metric.
    pub aggs: Vec<Agg>,
    /// Emit machine-readable JSON instead of the table.
    pub json: bool,
    /// Inspect journal stores instead of aggregating reports.
    pub journals: bool,
}

/// One aggregation over a metric's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Number of rows carrying the metric.
    Count,
    /// Sum of the values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean.
    Mean,
    /// Nearest-rank percentile (50/95/99).
    Percentile(u32),
}

impl Agg {
    fn parse(s: &str) -> Agg {
        match s {
            "count" => Agg::Count,
            "sum" => Agg::Sum,
            "min" => Agg::Min,
            "max" => Agg::Max,
            "mean" => Agg::Mean,
            "p50" => Agg::Percentile(50),
            "p95" => Agg::Percentile(95),
            "p99" => Agg::Percentile(99),
            other => {
                panic!("unknown aggregation {other:?} (use count|sum|min|max|mean|p50|p95|p99)")
            }
        }
    }

    fn label(self) -> String {
        match self {
            Agg::Count => "count".to_string(),
            Agg::Sum => "sum".to_string(),
            Agg::Min => "min".to_string(),
            Agg::Max => "max".to_string(),
            Agg::Mean => "mean".to_string(),
            Agg::Percentile(p) => format!("p{p}"),
        }
    }

    /// The aggregate of `sorted` (ascending). `None` on empty input
    /// except for `Count`, which is 0.
    fn apply(self, sorted: &[f64]) -> Option<f64> {
        match self {
            Agg::Count => Some(sorted.len() as f64),
            _ if sorted.is_empty() => None,
            Agg::Sum => Some(sorted.iter().sum()),
            Agg::Min => Some(sorted[0]),
            Agg::Max => Some(sorted[sorted.len() - 1]),
            Agg::Mean => Some(sorted.iter().sum::<f64>() / sorted.len() as f64),
            Agg::Percentile(p) => {
                // Nearest-rank: the smallest value with at least p% of
                // the sample at or below it.
                let rank = (u64::from(p) * sorted.len() as u64).div_ceil(100);
                Some(sorted[(rank.max(1) as usize) - 1])
            }
        }
    }
}

/// Parses the arguments after `query`.
///
/// # Panics
///
/// Panics with a descriptive message on malformed arguments, matching
/// [`crate::cli::parse_args`].
#[must_use]
pub fn parse_query_args(args: impl Iterator<Item = String>) -> QueryArgs {
    let mut out = QueryArgs {
        runs_dir: PathBuf::from("results/runs"),
        run: None,
        workload: None,
        policy: None,
        status: None,
        metrics: vec!["cycles".to_string()],
        aggs: vec![Agg::Count, Agg::Min, Agg::Mean, Agg::Percentile(99)],
        json: false,
        journals: false,
    };
    let mut args = args;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--dir" => out.runs_dir = PathBuf::from(value("--dir")),
            "--run" => out.run = Some(value("--run")),
            "--workload" => out.workload = Some(value("--workload")),
            "--policy" => out.policy = Some(value("--policy")),
            "--status" => out.status = Some(value("--status")),
            "--metric" => {
                out.metrics = value("--metric").split(',').map(str::to_string).collect();
            }
            "--agg" => {
                out.aggs = value("--agg").split(',').map(Agg::parse).collect();
            }
            "--json" => out.json = true,
            "--journals" => out.journals = true,
            other => panic!("unexpected argument {other:?}"),
        }
    }
    out
}

/// One flattened job (or job × tenant) row from a report.
struct Row {
    run: String,
    workload: String,
    policy: String,
    status: String,
    values: Vec<(String, f64)>,
}

impl Row {
    fn value(&self, key: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Reads every number off a JSON object as `(key, f64)` pairs.
fn numeric_fields(doc: &Json, out: &mut Vec<(String, f64)>) {
    if let Json::Obj(pairs) = doc {
        for (k, v) in pairs {
            if let Some(n) = v.as_f64() {
                out.push((k.clone(), n));
            }
        }
    }
}

/// Flattens one report document into rows. Returns `None` when the
/// document is not a sweep report (no `sweep` + `jobs` keys), so stray
/// JSON files in the run directory are skipped, not errors.
fn report_rows(doc: &Json) -> Option<Vec<Row>> {
    let run = doc.get("sweep")?.as_str()?.to_string();
    let jobs = doc.get("jobs")?.as_arr()?;
    let serve = doc.get("kind").and_then(Json::as_str) == Some("serve");
    let mut rows = Vec::new();
    for job in jobs {
        let policy = job
            .get("policy")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let status = job
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        if serve {
            let mut shared = Vec::new();
            numeric_fields(job, &mut shared);
            for tenant in job.get("tenants").and_then(Json::as_arr).unwrap_or(&[]) {
                let mut values = shared.clone();
                numeric_fields(tenant, &mut values);
                rows.push(Row {
                    run: run.clone(),
                    workload: tenant
                        .get("workload")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    policy: policy.clone(),
                    status: status.clone(),
                    values,
                });
            }
        } else {
            let mut values = Vec::new();
            numeric_fields(job, &mut values);
            if let Some(metrics) = job.get("metrics") {
                numeric_fields(metrics, &mut values);
            }
            rows.push(Row {
                run: run.clone(),
                workload: job
                    .get("workload")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                policy: policy.clone(),
                status: status.clone(),
                values,
            });
        }
    }
    Some(rows)
}

fn keep(args: &QueryArgs, row: &Row) -> bool {
    if let Some(w) = &args.workload {
        if &row.workload != w {
            return false;
        }
    }
    if let Some(p) = &args.policy {
        if &row.policy != p {
            return false;
        }
    }
    match args.status.as_deref() {
        Some("failed") => row.status != "ok",
        Some(s) => row.status == s,
        None => true,
    }
}

/// Loads and flattens every report under `runs_dir`, honouring the
/// `--run` filter. Returns `(reports seen, rows)`.
fn collect_rows(args: &QueryArgs) -> Result<(usize, Vec<Row>), String> {
    let entries = std::fs::read_dir(&args.runs_dir)
        .map_err(|e| format!("cannot read {}: {e}", args.runs_dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut reports = 0;
    let mut rows = Vec::new();
    for path in paths {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(doc) = Json::parse(&text) else {
            continue;
        };
        let Some(report_rows) = report_rows(&doc) else {
            continue;
        };
        if let Some(run) = &args.run {
            if report_rows.first().is_none_or(|r| &r.run != run) {
                continue;
            }
        }
        reports += 1;
        rows.extend(report_rows.into_iter().filter(|r| keep(args, r)));
    }
    Ok((reports, rows))
}

/// Aggregates `rows` into one JSON object per metric key.
fn aggregate(args: &QueryArgs, rows: &[Row]) -> Json {
    let metrics = args
        .metrics
        .iter()
        .map(|key| {
            let mut values: Vec<f64> = rows.iter().filter_map(|r| r.value(key)).collect();
            values.sort_by(f64::total_cmp);
            let stats = args
                .aggs
                .iter()
                .filter_map(|agg| agg.apply(&values).map(|v| (agg.label(), Json::F64(v))))
                .collect();
            (key.clone(), Json::Obj(stats))
        })
        .collect();
    Json::Obj(metrics)
}

/// Runs the report-aggregation mode. Returns the process exit code.
fn run_reports(args: &QueryArgs) -> i32 {
    let (reports, rows) = match collect_rows(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let summary = aggregate(args, &rows);
    if args.json {
        let doc = Json::obj([
            ("reports", Json::U64(reports as u64)),
            ("rows", Json::U64(rows.len() as u64)),
            ("metrics", summary),
        ]);
        println!("{}", doc.to_pretty());
        return 0;
    }
    println!("{} row(s) from {reports} report(s)", rows.len());
    let width = args
        .metrics
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(6)
        .max(6);
    print!("{:width$}", "metric");
    for agg in &args.aggs {
        print!(" {:>14}", agg.label());
    }
    println!();
    if let Json::Obj(metrics) = &summary {
        for (key, stats) in metrics {
            print!("{key:width$}");
            for agg in &args.aggs {
                match stats.get(&agg.label()).and_then(Json::as_f64) {
                    Some(v) => print!(" {v:>14.2}"),
                    None => print!(" {:>14}", "-"),
                }
            }
            println!();
        }
    }
    0
}

/// Runs the `--journals` diagnosis mode: a read-only
/// [`Wal::inspect`] over every journal store under the run directory.
/// Returns the process exit code (1 when any store is unhealthy, so the
/// mode doubles as a scriptable health check).
fn run_journals(args: &QueryArgs) -> i32 {
    let entries = match std::fs::read_dir(&args.runs_dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.runs_dir.display());
            return 1;
        }
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    let mut unhealthy = 0;
    let mut seen = 0;
    let mut docs = Vec::new();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        if let Some(run) = &args.run {
            if !name.starts_with(run.as_str()) {
                continue;
            }
        }
        if path.is_dir() && name.ends_with(".journal") {
            seen += 1;
            match Wal::inspect(&path) {
                Ok(info) => {
                    if !info.healthy {
                        unhealthy += 1;
                    }
                    if args.json {
                        docs.push(Json::obj([
                            ("journal", Json::str(name)),
                            ("records", Json::U64(info.records.len() as u64)),
                            ("last_seq", Json::U64(info.last_seq)),
                            ("state", Json::str(&info.state)),
                            ("healthy", Json::Bool(info.healthy)),
                        ]));
                    } else {
                        println!(
                            "{name}: {} record(s), last seq {}, state: {}",
                            info.records.len(),
                            info.last_seq,
                            info.state
                        );
                    }
                }
                Err(e) => {
                    unhealthy += 1;
                    if args.json {
                        docs.push(Json::obj([
                            ("journal", Json::str(name)),
                            ("state", Json::str(format!("unreadable: {e}"))),
                            ("healthy", Json::Bool(false)),
                        ]));
                    } else {
                        println!("{name}: unreadable: {e}");
                    }
                }
            }
        } else if path.is_file() && name.ends_with(".journal.jsonl") {
            seen += 1;
            if args.json {
                docs.push(Json::obj([
                    ("journal", Json::str(name)),
                    ("state", Json::str("v1 jsonl (migrates on next --resume)")),
                    ("healthy", Json::Bool(true)),
                ]));
            } else {
                println!("{name}: v1 jsonl (migrates on next --resume)");
            }
        }
    }
    if args.json {
        println!("{}", Json::Arr(docs).to_pretty());
    } else if seen == 0 {
        println!(
            "no journals under {} (all runs completed cleanly)",
            args.runs_dir.display()
        );
    }
    i32::from(unhealthy > 0)
}

/// Runs the `query` subcommand. Returns the process exit code.
#[must_use]
pub fn run_query(args: &QueryArgs) -> i32 {
    if args.journals {
        run_journals(args)
    } else {
        run_reports(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "miopt-query-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args_for(dir: &Path) -> QueryArgs {
        let mut args = parse_query_args(std::iter::empty());
        args.runs_dir = dir.to_path_buf();
        args
    }

    fn write_figure_report(dir: &Path) {
        let report = r#"{
            "sweep": "fig-test", "schema_version": 3,
            "jobs": [
                {"id": 0, "workload": "FwSoft", "policy": "CacheR",
                 "status": "ok", "elapsed_ms": 5,
                 "metrics": {"cycles": 100, "l2.load_hits": 40}},
                {"id": 1, "workload": "FwSoft", "policy": "CacheRW",
                 "status": "ok", "elapsed_ms": 7,
                 "metrics": {"cycles": 300, "l2.load_hits": 80}},
                {"id": 2, "workload": "FwPool", "policy": "CacheR",
                 "status": "timed out", "elapsed_ms": 9}
            ]
        }"#;
        std::fs::write(dir.join("fig-test.json"), report).unwrap();
        // Non-report JSON files are skipped, not errors.
        std::fs::write(dir.join("notes.json"), r#"{"hello": 1}"#).unwrap();
    }

    fn write_serve_report(dir: &Path) {
        let report = r#"{
            "sweep": "serve-test", "kind": "serve", "schema_version": 3,
            "jobs": [
                {"id": 0, "policy": "CacheR", "load": 30000, "status": "ok",
                 "cycles": 900,
                 "tenants": [
                    {"name": "t0", "workload": "FwSoft", "p99": 50, "completed": 3},
                    {"name": "t1", "workload": "FwPool", "p99": 70, "completed": 3}
                 ]}
            ]
        }"#;
        std::fs::write(dir.join("serve-test.json"), report).unwrap();
    }

    #[test]
    fn aggregates_metrics_across_reports_with_filters() {
        let dir = temp_dir("agg");
        write_figure_report(&dir);
        write_serve_report(&dir);
        let mut args = args_for(&dir);
        args.metrics = vec!["cycles".to_string()];
        args.aggs = vec![Agg::Count, Agg::Min, Agg::Max, Agg::Mean];
        let (reports, rows) = collect_rows(&args).unwrap();
        assert_eq!(reports, 2);
        // 3 figure jobs + 1 serve job x 2 tenants.
        assert_eq!(rows.len(), 5);
        let summary = aggregate(&args, &rows);
        let cycles = summary.get("cycles").unwrap();
        // The timed-out job has no metrics; serve rows carry the job's
        // cycles: values are 100, 300, 900, 900.
        assert_eq!(cycles.get("count").unwrap().as_f64(), Some(4.0));
        assert_eq!(cycles.get("min").unwrap().as_f64(), Some(100.0));
        assert_eq!(cycles.get("max").unwrap().as_f64(), Some(900.0));
        assert_eq!(cycles.get("mean").unwrap().as_f64(), Some(550.0));

        args.workload = Some("FwSoft".to_string());
        args.metrics = vec!["l2.load_hits".to_string(), "p99".to_string()];
        let (_, rows) = collect_rows(&args).unwrap();
        assert_eq!(rows.len(), 3, "two figure rows and one tenant row");
        let summary = aggregate(&args, &rows);
        let hits = summary.get("l2.load_hits").unwrap();
        assert_eq!(hits.get("count").unwrap().as_f64(), Some(2.0));
        let p99 = summary.get("p99").unwrap();
        assert_eq!(p99.get("count").unwrap().as_f64(), Some(1.0));

        args.workload = None;
        args.status = Some("failed".to_string());
        let (_, rows) = collect_rows(&args).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].workload, "FwPool");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(Agg::Percentile(50).apply(&values), Some(50.0));
        assert_eq!(Agg::Percentile(99).apply(&values), Some(99.0));
        assert_eq!(Agg::Percentile(99).apply(&[7.0]), Some(7.0));
        assert_eq!(Agg::Percentile(99).apply(&[]), None);
        assert_eq!(Agg::Count.apply(&[]), Some(0.0));
    }

    #[test]
    fn journals_mode_reports_store_health() {
        let dir = temp_dir("journals");
        let store = dir.join("crashed.journal");
        let opened = miopt_store::Wal::open(&store, miopt_store::StoreOptions::default()).unwrap();
        opened.wal.append(b"{\"header\":true}").unwrap();
        opened.wal.append(b"{\"id\":0}").unwrap();
        drop(opened);
        std::fs::write(dir.join("old.journal.jsonl"), "{}\n").unwrap();
        let mut args = args_for(&dir);
        args.journals = true;
        assert_eq!(run_query(&args), 0, "clean stores exit 0");

        // Tear the active segment: still healthy=false? No — torn tails
        // are repairable, inspect flags them but the store stays
        // usable; corruption is what trips the exit code.
        let seg = std::fs::read_dir(&store)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() - 5;
        bytes[mid] ^= 0xff;
        std::fs::write(&seg, &bytes).unwrap();
        assert_eq!(run_query(&args), 1, "a corrupt store exits 1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "unexpected argument")]
    fn query_rejects_unknown_flags() {
        drop(parse_query_args(
            ["--frobnicate"].iter().map(|s| (*s).to_string()),
        ));
    }
}
