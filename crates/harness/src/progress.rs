//! Sweep progress reporting.
//!
//! One completion line per job to stderr, so long sweeps are observable
//! without polluting stdout (which carries tables/CSV). Reporting is
//! serialized internally; the output never interleaves across workers.

use crate::pool::JobOutcome;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A thread-safe per-job progress reporter.
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    enabled: bool,
}

impl Progress {
    /// A reporter over `total` jobs; disabled reporters are free.
    #[must_use]
    pub fn new(total: usize, enabled: bool) -> Progress {
        Progress {
            total,
            done: AtomicUsize::new(0),
            enabled,
        }
    }

    /// Reports one completed (or skipped) job.
    pub fn report(&self, label: &str, outcome: &JobOutcome) {
        let done = self.done.fetch_add(1, Ordering::SeqCst) + 1;
        if !self.enabled {
            return;
        }
        let status = match &outcome.result {
            Ok(_) if outcome.cached => "cached".to_string(),
            Ok(_) => format!("{:.2}s", outcome.elapsed.as_secs_f64()),
            Err(e) => e.to_string(),
        };
        // A single write per line keeps concurrent reports intact.
        let line = format!(
            "[{done:>width$}/{total}] {label}: {status}\n",
            total = self.total,
            width = self.total.to_string().len(),
        );
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_reporter_still_counts() {
        let p = Progress::new(3, false);
        assert_eq!(p.done.load(Ordering::SeqCst), 0);
        // Reporting without output must not panic and must advance.
        let spec = {
            use miopt::SystemConfig;
            use miopt_workloads::{by_name, SuiteConfig};
            miopt::runner::SweepSpec::statics(
                SystemConfig::small_test(),
                vec![by_name(&SuiteConfig::quick(), "FwSoft").unwrap()],
            )
        };
        let job = spec.jobs()[0];
        let outcome = JobOutcome {
            job,
            result: Err(crate::pool::JobError::DepFailed(0)),
            elapsed: std::time::Duration::ZERO,
            cached: false,
            attempts: 0,
        };
        p.report("x", &outcome);
        assert_eq!(p.done.load(Ordering::SeqCst), 1);
    }
}
