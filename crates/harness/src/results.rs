//! Structured results: converting run metrics to and from JSON, and the
//! on-disk sweep report written under `results/runs/`.
//!
//! The schema (version [`SCHEMA_VERSION`]) is documented in DESIGN.md
//! §"miopt-harness". The important property is *exactness*: every counter
//! is a JSON integer and the clock is written with shortest round-trip
//! float formatting, so deserializing a cached result reproduces the
//! original [`Metrics`] bit for bit — the determinism guarantees of the
//! simulator extend through the results layer.

use crate::json::Json;
use crate::pool::JobError;
use crate::provenance::Provenance;
use miopt::runner::{RunResult, SimError};
use miopt::Metrics;
use miopt::StallDiagnostic;
use miopt_cache::CacheStats;
use miopt_dram::DramStats;
use miopt_gpu::GpuStats;
use std::path::Path;

/// Version tag of the results/cache JSON schema. Bump on any change to
/// the serialized layout; cached results from other versions are ignored.
///
/// Version history:
/// * **2** (current) — additionally carries per-job `attempts` and, for
///   wedged runs, a `diagnostic` object; both are additive report-only
///   fields, so the cache file format (and therefore the version) is
///   unchanged. Counters flattened to the workspace-wide dotted stat-name
///   registry (`l2.load_hits`, `dram.row_conflicts`, …) shared with
///   telemetry. Because the cache key includes this constant, every v1
///   cache entry misses and is transparently re-simulated; stale
///   `results/cache/*.json` files can simply be deleted.
/// * **1** — nested per-component objects (`{"dram": {"reads": …}}`).
pub const SCHEMA_VERSION: u32 = 2;

/// Appends `pairs` under `scope` as flat `scope.name` keys.
fn push_scoped(out: &mut Vec<(String, Json)>, scope: &str, pairs: Vec<(&'static str, u64)>) {
    for (name, value) in pairs {
        out.push((format!("{scope}.{name}"), Json::U64(value)));
    }
}

/// A `from_pairs` getter reading flat `scope.name` keys off `obj`.
fn scoped_field<'a>(obj: &'a Json, scope: &'a str) -> impl FnMut(&str) -> Option<u64> + 'a {
    move |key| obj.get(&format!("{scope}.{key}"))?.as_u64()
}

/// Serializes metrics to a flat JSON object keyed by the dotted
/// stat-name registry (`gpu.valu_lane_ops`, `dram.row_conflicts`,
/// `l1.load_hits`, `l2.store_allocs`, …) plus `cycles` and
/// `gpu_clock_hz`.
#[must_use]
pub fn metrics_to_json(m: &Metrics) -> Json {
    let mut pairs = vec![
        ("cycles".to_string(), Json::U64(m.cycles)),
        ("gpu_clock_hz".to_string(), Json::F64(m.gpu_clock_hz())),
    ];
    push_scoped(&mut pairs, "gpu", m.gpu.to_pairs());
    push_scoped(&mut pairs, "dram", m.dram.to_pairs());
    push_scoped(&mut pairs, "l1", m.l1.to_pairs());
    push_scoped(&mut pairs, "l2", m.l2.to_pairs());
    Json::Obj(pairs)
}

/// Rebuilds metrics from [`metrics_to_json`] output.
///
/// # Errors
///
/// Returns a description of the first missing or malformed field.
pub fn metrics_from_json(obj: &Json) -> Result<Metrics, String> {
    let cycles = obj
        .get("cycles")
        .and_then(Json::as_u64)
        .ok_or("missing or invalid `cycles`")?;
    let clock = obj
        .get("gpu_clock_hz")
        .and_then(Json::as_f64)
        .ok_or("missing or invalid `gpu_clock_hz`")?;
    let gpu = GpuStats::from_pairs(scoped_field(obj, "gpu"))?;
    let dram = DramStats::from_pairs(scoped_field(obj, "dram"))?;
    let l1 = CacheStats::from_pairs(scoped_field(obj, "l1"))?;
    let l2 = CacheStats::from_pairs(scoped_field(obj, "l2"))?;
    Ok(Metrics::from_parts(cycles, gpu, dram, l1, l2, clock))
}

/// One job's entry in a sweep report.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id within the sweep (assembly order).
    pub id: usize,
    /// Workload display name.
    pub workload: String,
    /// Stable workload identity ([`miopt_workloads::Workload::stable_id`]).
    pub workload_id: String,
    /// Policy label (e.g. `CacheRW-PCby`).
    pub policy: String,
    /// The persistent result-cache key of this job, as hex.
    pub cache_key: String,
    /// Whether the result was loaded from the cache rather than
    /// simulated.
    pub cached: bool,
    /// Wall milliseconds this job took in this sweep (≈0 when cached).
    pub elapsed_ms: u64,
    /// `"ok"`, or the failure description for panicked/timed-out jobs.
    pub status: String,
    /// How many times the job was executed (0 when served from the
    /// cache or a journal, ≥2 only when a retry policy re-ran it).
    pub attempts: usize,
    /// The metrics, when the job succeeded.
    pub metrics: Option<Metrics>,
    /// The stall diagnostic, when the simulator timed out or halted on
    /// an invariant violation (see [`stall_diagnostic_to_json`]).
    pub diagnostic: Option<Json>,
}

impl JobRecord {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_string(), Json::U64(self.id as u64)),
            ("workload".to_string(), Json::str(&self.workload)),
            ("workload_id".to_string(), Json::str(&self.workload_id)),
            ("policy".to_string(), Json::str(&self.policy)),
            ("cache_key".to_string(), Json::str(&self.cache_key)),
            ("cached".to_string(), Json::Bool(self.cached)),
            ("elapsed_ms".to_string(), Json::U64(self.elapsed_ms)),
            ("status".to_string(), Json::str(&self.status)),
            ("attempts".to_string(), Json::U64(self.attempts as u64)),
        ];
        if let Some(m) = &self.metrics {
            pairs.push(("metrics".to_string(), metrics_to_json(m)));
        }
        if let Some(d) = &self.diagnostic {
            pairs.push(("diagnostic".to_string(), d.clone()));
        }
        Json::Obj(pairs)
    }

    /// The record as one compact JSON line (the journal entry format).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        self.to_json().to_compact()
    }

    /// Rebuilds a record from its JSON form (used when replaying a
    /// resume journal).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<JobRecord, String> {
        let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing `{key}`"));
        let text = |key: &str| {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{key}` is not a string"))
        };
        let int = |key: &str| {
            field(key)?
                .as_u64()
                .ok_or_else(|| format!("`{key}` is not an integer"))
        };
        let metrics = match doc.get("metrics") {
            Some(m) => Some(metrics_from_json(m)?),
            None => None,
        };
        Ok(JobRecord {
            id: int("id")? as usize,
            workload: text("workload")?,
            workload_id: text("workload_id")?,
            policy: text("policy")?,
            cache_key: text("cache_key")?,
            cached: field("cached")?.as_bool().ok_or("`cached` is not a bool")?,
            elapsed_ms: int("elapsed_ms")?,
            status: text("status")?,
            attempts: int("attempts")? as usize,
            metrics,
            diagnostic: doc.get("diagnostic").cloned(),
        })
    }
}

/// Serializes a simulator stall diagnostic for the sweep report: the
/// stall cycle/phase/reason, the oldest in-flight request, per-queue
/// occupancies, MSHR contents, wavefront states, and any invariant
/// violations — everything `miopt-core` gathered when the run wedged.
#[must_use]
pub fn stall_diagnostic_to_json(d: &StallDiagnostic) -> Json {
    let mut pairs = vec![
        ("cycle".to_string(), Json::U64(d.cycle)),
        ("phase".to_string(), Json::str(d.phase)),
        ("reason".to_string(), Json::str(d.reason.to_string())),
    ];
    if let Some(oldest) = &d.oldest_request {
        pairs.push(("oldest_request".to_string(), Json::str(oldest)));
    }
    pairs.push((
        "queues".to_string(),
        Json::Arr(
            d.queues
                .iter()
                .map(|(name, occ)| {
                    Json::obj([
                        ("queue", Json::str(name)),
                        ("occupancy", Json::U64(*occ as u64)),
                    ])
                })
                .collect(),
        ),
    ));
    pairs.push((
        "mshrs".to_string(),
        Json::Arr(
            d.mshrs
                .iter()
                .map(|(component, entries)| {
                    Json::obj([
                        ("component", Json::str(component)),
                        (
                            "entries",
                            Json::Arr(entries.iter().map(Json::str).collect()),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    pairs.push((
        "wavefronts".to_string(),
        Json::Arr(d.wavefronts.iter().map(Json::str).collect()),
    ));
    pairs.push((
        "violations".to_string(),
        Json::Arr(
            d.violations
                .iter()
                .map(|v| {
                    Json::obj([
                        ("component", Json::str(&v.component)),
                        ("invariant", Json::str(v.invariant)),
                        ("detail", Json::str(&v.detail)),
                    ])
                })
                .collect(),
        ),
    ));
    Json::Obj(pairs)
}

/// A complete sweep report: provenance plus one record per job.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Sweep name (also the `results/runs/<name>.json` file stem).
    pub name: String,
    /// Run provenance.
    pub provenance: Provenance,
    /// Per-job records, in job-id order.
    pub jobs: Vec<JobRecord>,
}

impl SweepReport {
    /// The report as a JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("sweep", Json::str(&self.name)),
            ("schema_version", Json::U64(u64::from(SCHEMA_VERSION))),
            ("provenance", self.provenance.to_json()),
            (
                "jobs",
                Json::Arr(self.jobs.iter().map(JobRecord::to_json).collect()),
            ),
        ])
    }

    /// Writes the report under `dir` as `<name>.json`, creating the
    /// directory if needed, and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_under(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }
}

/// Builds one job record from its outcome (also used for per-job
/// journal appends, where records are needed before the sweep ends).
#[must_use]
pub fn job_record(
    spec: &miopt::runner::SweepSpec,
    outcome: &crate::pool::JobOutcome,
    key: &crate::cache::CacheKey,
) -> JobRecord {
    let o = outcome;
    let w = &spec.workloads[o.job.workload];
    let diagnostic = match &o.result {
        Err(JobError::Sim(
            SimError::Timeout { diagnostic, .. } | SimError::Halted { diagnostic, .. },
        )) => Some(stall_diagnostic_to_json(diagnostic)),
        _ => None,
    };
    JobRecord {
        id: o.job.id,
        workload: w.name.clone(),
        workload_id: w.stable_id(),
        policy: o.job.policy.label(),
        cache_key: key.hex(),
        cached: o.cached,
        elapsed_ms: o.elapsed.as_millis() as u64,
        status: match &o.result {
            Ok(_) => "ok".to_string(),
            Err(e) => e.to_string(),
        },
        attempts: o.attempts,
        metrics: o.result.as_ref().ok().map(|r| r.metrics.clone()),
        diagnostic,
    }
}

/// Builds the job records for a finished sweep.
#[must_use]
pub fn job_records(
    spec: &miopt::runner::SweepSpec,
    outcomes: &[crate::pool::JobOutcome],
    keys: &[crate::cache::CacheKey],
) -> Vec<JobRecord> {
    outcomes
        .iter()
        .map(|o| job_record(spec, o, &keys[o.job.id]))
        .collect()
}

/// Round-trips a [`RunResult`] through JSON (used by the cache layer).
#[must_use]
pub fn run_result_to_json(r: &RunResult) -> Json {
    Json::obj([
        ("workload", Json::str(&r.workload)),
        ("policy", Json::str(r.policy.label())),
        ("metrics", metrics_to_json(&r.metrics)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt::runner::run_one;
    use miopt::{CachePolicy, PolicyConfig, SystemConfig};
    use miopt_workloads::{by_name, SuiteConfig};

    #[test]
    fn metrics_round_trip_bit_exactly() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let r = run_one(
            &SystemConfig::small_test(),
            &w,
            PolicyConfig::of(CachePolicy::CacheRW),
        )
        .expect("run finishes");
        let doc = metrics_to_json(&r.metrics);
        let text = doc.to_pretty();
        let back = metrics_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r.metrics);
        // And the derived figure metrics agree exactly.
        assert_eq!(back.gvops().to_bits(), r.metrics.gvops().to_bits());
        assert_eq!(
            back.stalls_per_request().to_bits(),
            r.metrics.stalls_per_request().to_bits()
        );
    }

    #[test]
    fn missing_fields_are_reported() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let r = run_one(
            &SystemConfig::small_test(),
            &w,
            PolicyConfig::of(CachePolicy::Uncached),
        )
        .expect("run finishes");
        let mut doc = metrics_to_json(&r.metrics);
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "dram.row_conflicts");
        }
        let err = metrics_from_json(&doc).unwrap_err();
        assert!(err.contains("row_conflicts"), "{err}");
    }

    #[test]
    fn serialized_keys_follow_the_dotted_registry() {
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let r = run_one(
            &SystemConfig::small_test(),
            &w,
            PolicyConfig::of(CachePolicy::CacheR),
        )
        .expect("run finishes");
        let doc = metrics_to_json(&r.metrics);
        let Json::Obj(pairs) = &doc else {
            panic!("metrics serialize to an object")
        };
        // Flat layout: every counter key is `scope.name`.
        for (key, _) in pairs {
            assert!(
                key == "cycles"
                    || key == "gpu_clock_hz"
                    || ["gpu.", "dram.", "l1.", "l2."]
                        .iter()
                        .any(|scope| key.starts_with(scope)),
                "unexpected key {key}"
            );
        }
        for key in [
            "gpu.valu_lane_ops",
            "dram.row_conflicts",
            "l1.load_hits",
            "l2.load_hits",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
    }
}
