//! Telemetry exporters: JSONL time series and Chrome `trace_event` JSON.
//!
//! A [`TelemetryRun`] is plain in-memory data; this module turns it into
//! the two on-disk formats the harness ships:
//!
//! * **JSONL** (`<workload>-<policy>.jsonl`) — one self-describing JSON
//!   object per line: a `header` line carrying the schema version and the
//!   stat-name registry, one `epoch` line per sampling interval with the
//!   raw counter deltas plus derived rates (IPC, hit rates, stalls per
//!   request, row-hit ratio, L2 bypass fraction), then `span` and
//!   `instant` lines for phases and discrete events. Line-oriented so
//!   `grep`/`jq -c` stream it without loading the whole series.
//! * **Chrome trace** (`<workload>-<policy>.trace.json`) — the
//!   `trace_event` format chrome://tracing and [Perfetto] load directly:
//!   phases as complete (`"X"`) slices, discrete events as instants
//!   (`"i"`), and per-epoch eviction/rinse/bypass/row-conflict deltas as
//!   counter (`"C"`) tracks. Timestamps are microseconds of simulated
//!   time (`cycle / (gpu_clock_hz / 1e6)`).
//!
//! Both serializers are pure functions of the run — floats use the JSON
//! layer's shortest round-trip formatting — so exports are byte-identical
//! across harness worker counts.
//!
//! [Perfetto]: https://ui.perfetto.dev

use crate::json::Json;
use crate::results::SCHEMA_VERSION;
use miopt::runner::RunResult;
use miopt_telemetry::{Epoch, TelemetryRun};
use std::path::{Path, PathBuf};

/// `0/0`-safe ratio: empty epochs report a rate of zero, not NaN (which
/// JSON cannot represent anyway).
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Delta of counter `name` in `epoch`, or 0 if the registry lacks it
/// (e.g. a future config without that component).
fn delta(run: &TelemetryRun, epoch: &Epoch, name: &str) -> u64 {
    run.index_of(name).map_or(0, |i| epoch.deltas[i])
}

/// Summed delta over several counters of `epoch`.
fn delta_sum(run: &TelemetryRun, epoch: &Epoch, names: &[&str]) -> u64 {
    names.iter().map(|n| delta(run, epoch, n)).sum()
}

/// The five per-cache stall counters under `scope`, summed.
fn stall_delta(run: &TelemetryRun, epoch: &Epoch, scope: &str) -> u64 {
    [
        "stall_mshr",
        "stall_set_busy",
        "stall_merge",
        "stall_out_queue",
        "stall_port",
    ]
    .iter()
    .map(|f| delta(run, epoch, &format!("{scope}.{f}")))
    .sum()
}

/// The derived per-epoch rates appended to every JSONL `epoch` line.
fn derived_rates(run: &TelemetryRun, epoch: &Epoch) -> Json {
    let requests = delta_sum(run, epoch, &["gpu.line_loads", "gpu.line_stores"]);
    let hit_rate = |scope: &str| {
        ratio(
            delta_sum(
                run,
                epoch,
                &[
                    &format!("{scope}.load_hits"),
                    &format!("{scope}.store_hits"),
                ],
            ),
            delta(run, epoch, &format!("{scope}.accesses")),
        )
    };
    Json::obj([
        (
            "ipc",
            Json::F64(ratio(
                delta(run, epoch, "gpu.valu_lane_ops"),
                epoch.cycles(),
            )),
        ),
        ("l1_hit_rate", Json::F64(hit_rate("l1"))),
        ("l2_hit_rate", Json::F64(hit_rate("l2"))),
        (
            "stalls_per_request",
            Json::F64(ratio(
                stall_delta(run, epoch, "l1") + stall_delta(run, epoch, "l2"),
                requests,
            )),
        ),
        (
            "row_hit_ratio",
            Json::F64(ratio(
                delta(run, epoch, "dram.row_hits_hits"),
                delta(run, epoch, "dram.row_hits_total"),
            )),
        ),
        (
            "l2_bypass_fraction",
            Json::F64(ratio(
                delta_sum(run, epoch, &["l2.load_bypasses", "l2.store_bypasses"]),
                delta(run, epoch, "l2.accesses"),
            )),
        ),
    ])
}

/// Serializes a run as JSONL: one compact JSON object per line.
#[must_use]
pub fn to_jsonl(run: &TelemetryRun, workload: &str, policy: &str, gpu_clock_hz: f64) -> String {
    let mut lines = Vec::with_capacity(1 + run.epochs.len() + run.spans.len() + run.instants.len());
    lines.push(
        Json::obj([
            ("type", Json::str("header")),
            ("schema_version", Json::U64(u64::from(SCHEMA_VERSION))),
            ("workload", Json::str(workload)),
            ("policy", Json::str(policy)),
            ("interval", Json::U64(run.interval)),
            ("gpu_clock_hz", Json::F64(gpu_clock_hz)),
            (
                "names",
                Json::Arr(run.names.iter().map(Json::str).collect()),
            ),
        ])
        .to_compact(),
    );
    for epoch in &run.epochs {
        let deltas = run
            .names
            .iter()
            .zip(&epoch.deltas)
            .map(|(name, &d)| (name.clone(), Json::U64(d)))
            .collect();
        lines.push(
            Json::obj([
                ("type", Json::str("epoch")),
                ("start_cycle", Json::U64(epoch.start_cycle)),
                ("end_cycle", Json::U64(epoch.end_cycle)),
                ("deltas", Json::Obj(deltas)),
                ("derived", derived_rates(run, epoch)),
            ])
            .to_compact(),
        );
    }
    for span in &run.spans {
        lines.push(
            Json::obj([
                ("type", Json::str("span")),
                ("name", Json::str(&span.name)),
                ("start_cycle", Json::U64(span.start_cycle)),
                ("end_cycle", Json::U64(span.end_cycle)),
            ])
            .to_compact(),
        );
    }
    for instant in &run.instants {
        lines.push(
            Json::obj([
                ("type", Json::str("instant")),
                ("name", Json::str(&instant.name)),
                ("cycle", Json::U64(instant.cycle)),
            ])
            .to_compact(),
        );
    }
    lines.push(String::new()); // trailing newline
    lines.join("\n")
}

/// Serializes a run in Chrome `trace_event` JSON (load in
/// chrome://tracing or <https://ui.perfetto.dev>).
#[must_use]
pub fn to_chrome_trace(
    run: &TelemetryRun,
    workload: &str,
    policy: &str,
    gpu_clock_hz: f64,
) -> String {
    // Microseconds of simulated time per cycle.
    let us = |cycle: u64| Json::F64(cycle as f64 / (gpu_clock_hz / 1e6));
    let mut events = Vec::new();
    events.push(Json::obj([
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::U64(0)),
        ("tid", Json::U64(0)),
        (
            "args",
            Json::obj([("name", Json::str(format!("{workload}/{policy}")))]),
        ),
    ]));
    events.push(Json::obj([
        ("name", Json::str("thread_name")),
        ("ph", Json::str("M")),
        ("pid", Json::U64(0)),
        ("tid", Json::U64(0)),
        ("args", Json::obj([("name", Json::str("phases"))])),
    ]));
    for span in &run.spans {
        events.push(Json::obj([
            ("name", Json::str(&span.name)),
            ("cat", Json::str("phase")),
            ("ph", Json::str("X")),
            ("ts", us(span.start_cycle)),
            (
                "dur",
                Json::F64((span.end_cycle - span.start_cycle) as f64 / (gpu_clock_hz / 1e6)),
            ),
            ("pid", Json::U64(0)),
            ("tid", Json::U64(0)),
        ]));
    }
    for instant in &run.instants {
        events.push(Json::obj([
            ("name", Json::str(&instant.name)),
            ("cat", Json::str("event")),
            ("ph", Json::str("i")),
            ("ts", us(instant.cycle)),
            ("pid", Json::U64(0)),
            ("tid", Json::U64(0)),
            ("s", Json::str("p")),
        ]));
    }
    // Counter tracks: one sample per epoch, stamped at the epoch's end
    // (the cycle the deltas were measured at).
    for epoch in &run.epochs {
        let sample = |name: &str, args: Vec<(String, Json)>| {
            Json::obj([
                ("name", Json::str(name)),
                ("cat", Json::str("counter")),
                ("ph", Json::str("C")),
                ("ts", us(epoch.end_cycle)),
                ("pid", Json::U64(0)),
                ("args", Json::Obj(args)),
            ])
        };
        events.push(sample(
            "l2 events / epoch",
            vec![
                (
                    "evictions".to_string(),
                    Json::U64(delta_sum(
                        run,
                        epoch,
                        &["l2.evictions_clean", "l2.writebacks"],
                    )),
                ),
                (
                    "rinses".to_string(),
                    Json::U64(delta(run, epoch, "l2.rinse_writebacks")),
                ),
                (
                    "bypasses".to_string(),
                    Json::U64(delta_sum(
                        run,
                        epoch,
                        &["l2.load_bypasses", "l2.store_bypasses"],
                    )),
                ),
                (
                    "predictor_bypasses".to_string(),
                    Json::U64(delta(run, epoch, "l2.predictor_bypasses")),
                ),
            ],
        ));
        events.push(sample(
            "dram row conflicts / epoch",
            vec![(
                "row_conflicts".to_string(),
                Json::U64(delta(run, epoch, "dram.row_conflicts")),
            )],
        ));
    }
    Json::obj([
        ("displayTimeUnit", Json::str("ms")),
        ("traceEvents", Json::Arr(events)),
    ])
    .to_pretty()
}

/// The file stem both exports of one job share: `<workload>-<policy>`,
/// with path-hostile characters replaced.
#[must_use]
pub fn file_stem(workload: &str, policy: &str) -> String {
    format!("{workload}-{policy}")
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes both exports of `result` under `dir` and returns the two paths
/// (`.jsonl`, `.trace.json`), or `None` when the run carried no
/// telemetry (telemetry off, or a cache hit).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_files(dir: &Path, result: &RunResult) -> std::io::Result<Option<(PathBuf, PathBuf)>> {
    let Some(run) = &result.telemetry else {
        return Ok(None);
    };
    std::fs::create_dir_all(dir)?;
    let policy = result.policy.label();
    let clock = result.metrics.gpu_clock_hz();
    let stem = file_stem(&result.workload, &policy);
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    let trace_path = dir.join(format!("{stem}.trace.json"));
    std::fs::write(&jsonl_path, to_jsonl(run, &result.workload, &policy, clock))?;
    std::fs::write(
        &trace_path,
        to_chrome_trace(run, &result.workload, &policy, clock),
    )?;
    Ok(Some((jsonl_path, trace_path)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt_telemetry::{EventInstant, Span};

    fn sample_run() -> TelemetryRun {
        TelemetryRun {
            interval: 100,
            names: vec![
                "gpu.valu_lane_ops".into(),
                "gpu.line_loads".into(),
                "gpu.line_stores".into(),
                "l1.accesses".into(),
                "l1.load_hits".into(),
                "l1.store_hits".into(),
                "l2.accesses".into(),
                "l2.load_hits".into(),
                "l2.store_hits".into(),
                "l2.load_bypasses".into(),
                "l2.store_bypasses".into(),
                "dram.row_hits_hits".into(),
                "dram.row_hits_total".into(),
                "dram.row_conflicts".into(),
            ],
            epochs: vec![
                Epoch {
                    start_cycle: 0,
                    end_cycle: 100,
                    deltas: vec![640, 10, 6, 16, 8, 3, 8, 4, 0, 2, 0, 3, 4, 1],
                },
                Epoch {
                    start_cycle: 100,
                    end_cycle: 150,
                    deltas: vec![0; 14],
                },
            ],
            spans: vec![Span {
                name: "run".into(),
                start_cycle: 0,
                end_cycle: 150,
            }],
            instants: vec![EventInstant {
                name: "kernel:gemm#0".into(),
                cycle: 0,
            }],
        }
    }

    #[test]
    fn jsonl_lines_parse_and_carry_derived_rates() {
        let text = to_jsonl(&sample_run(), "FwSoft", "CacheRW", 1.6e9);
        let lines: Vec<&str> = text.lines().collect();
        // header + 2 epochs + 1 span + 1 instant.
        assert_eq!(lines.len(), 5);
        let header = Json::parse(lines[0]).unwrap();
        assert_eq!(header.get("type").and_then(Json::as_str), Some("header"));
        assert_eq!(header.get("interval").and_then(Json::as_u64), Some(100));
        let epoch = Json::parse(lines[1]).unwrap();
        let derived = epoch.get("derived").unwrap();
        assert_eq!(derived.get("ipc").and_then(Json::as_f64), Some(6.4));
        assert_eq!(
            derived.get("l1_hit_rate").and_then(Json::as_f64),
            Some(11.0 / 16.0)
        );
        assert_eq!(
            derived.get("l2_bypass_fraction").and_then(Json::as_f64),
            Some(0.25)
        );
        assert_eq!(
            derived.get("row_hit_ratio").and_then(Json::as_f64),
            Some(0.75)
        );
        // The empty epoch's rates degrade to zero, never NaN.
        let empty = Json::parse(lines[2]).unwrap();
        assert_eq!(
            empty
                .get("derived")
                .and_then(|d| d.get("ipc"))
                .and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            Json::parse(lines[3])
                .unwrap()
                .get("type")
                .and_then(Json::as_str),
            Some("span")
        );
        assert_eq!(
            Json::parse(lines[4])
                .unwrap()
                .get("name")
                .and_then(Json::as_str),
            Some("kernel:gemm#0")
        );
    }

    #[test]
    fn chrome_trace_is_valid_trace_event_json() {
        let text = to_chrome_trace(&sample_run(), "FwSoft", "CacheRW", 1.6e9);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 metadata + 1 span + 1 instant + 2 epochs × 2 counter tracks.
        assert_eq!(events.len(), 8);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        // 150 cycles at 1.6 GHz = 93.75 ns = 0.09375 µs.
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(0.09375));
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("C")));
    }

    #[test]
    fn exports_are_deterministic() {
        let run = sample_run();
        assert_eq!(
            to_jsonl(&run, "w", "p", 1.6e9),
            to_jsonl(&run.clone(), "w", "p", 1.6e9)
        );
        assert_eq!(
            to_chrome_trace(&run, "w", "p", 1.6e9),
            to_chrome_trace(&run.clone(), "w", "p", 1.6e9)
        );
    }

    #[test]
    fn file_stems_are_path_safe() {
        assert_eq!(file_stem("FwSoft", "CacheRW-PCby"), "FwSoft-CacheRW-PCby");
        assert_eq!(file_stem("a/b c", "p"), "a_b_c-p");
    }
}
