//! Run provenance: everything needed to answer "where did this number
//! come from?" months after a sweep ran.
//!
//! A [`Provenance`] block is embedded in every sweep report under
//! `results/runs/`. It records the exact simulated machine (as a stable
//! FNV-1a fingerprint of the full [`SystemConfig`]), the simulator
//! version and results schema, the git revision (and whether the tree was
//! dirty), the deterministic seed, the worker count, and wall time.

use crate::json::Json;
use miopt::SystemConfig;
use miopt_engine::hash::fnv1a_64;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// The simulator's global seed. The miopt simulator derives all of its
/// pseudo-randomness from fixed per-component SplitMix64 seeds, so runs
/// are bit-reproducible without a user-supplied seed; this constant is
/// recorded so the schema already has the field when a configurable seed
/// arrives.
pub const GLOBAL_SEED: u64 = 0;

/// Fingerprint of a system configuration: FNV-1a 64 over the canonical
/// (Debug) rendering of every field, as fixed-width hex.
///
/// Two configs hash equal iff every parameter matches; the hash changes
/// when a config field is added, which conservatively invalidates cached
/// results rather than silently reusing them.
#[must_use]
pub fn config_hash(cfg: &SystemConfig) -> String {
    format!("{:016x}", fnv1a_64(format!("{cfg:?}").as_bytes()))
}

/// Provenance of one sweep run.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// `miopt-harness` crate version.
    pub sim_version: String,
    /// Git `HEAD` revision, or `"unknown"` outside a repository.
    pub git_rev: String,
    /// Whether the working tree had uncommitted changes.
    pub git_dirty: bool,
    /// [`config_hash`] of the simulated machine.
    pub config_hash: String,
    /// The deterministic global seed ([`GLOBAL_SEED`]).
    pub seed: u64,
    /// Worker threads the sweep ran with (1 = serial).
    pub workers: usize,
    /// Telemetry sampling interval in cycles, when telemetry was enabled
    /// for the sweep (`None` = telemetry off).
    pub telemetry_interval: Option<u64>,
    /// Milliseconds since the Unix epoch at sweep start.
    pub started_unix_ms: u64,
    /// Total sweep wall time in milliseconds.
    pub elapsed_ms: u64,
    /// Labels of jobs that exhausted their retry budget and were
    /// quarantined (empty on a clean sweep).
    pub quarantined: Vec<String>,
}

impl Provenance {
    /// Collects provenance at sweep start; `elapsed_ms` is zero until
    /// filled in at completion.
    #[must_use]
    pub fn collect(cfg: &SystemConfig, workers: usize) -> Provenance {
        let (git_rev, git_dirty) = git_state();
        Provenance {
            sim_version: env!("CARGO_PKG_VERSION").to_string(),
            git_rev,
            git_dirty,
            config_hash: config_hash(cfg),
            seed: GLOBAL_SEED,
            workers,
            telemetry_interval: None,
            started_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64),
            elapsed_ms: 0,
            quarantined: Vec::new(),
        }
    }

    /// The provenance block as JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("sim_version", Json::str(&self.sim_version)),
            ("git_rev", Json::str(&self.git_rev)),
            ("git_dirty", Json::Bool(self.git_dirty)),
            ("config_hash", Json::str(&self.config_hash)),
            ("seed", Json::U64(self.seed)),
            ("workers", Json::U64(self.workers as u64)),
            (
                "telemetry_interval",
                self.telemetry_interval.map_or(Json::Null, Json::U64),
            ),
            ("started_unix_ms", Json::U64(self.started_unix_ms)),
            ("elapsed_ms", Json::U64(self.elapsed_ms)),
            (
                "quarantined",
                Json::Arr(self.quarantined.iter().map(Json::str).collect()),
            ),
        ])
    }
}

/// `(HEAD revision, dirty?)`, or `("unknown", false)` when git is
/// unavailable.
fn git_state() -> (String, bool) {
    let rev = Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let dirty = Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    (rev, dirty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_separates_configs_and_is_stable() {
        let a = SystemConfig::paper_table1();
        let b = SystemConfig::small_test();
        assert_eq!(config_hash(&a), config_hash(&a.clone()));
        assert_ne!(config_hash(&a), config_hash(&b));
        assert_eq!(config_hash(&a).len(), 16);
        let mut c = SystemConfig::paper_table1();
        c.queue_capacity += 1;
        assert_ne!(config_hash(&a), config_hash(&c), "every field must count");
    }

    #[test]
    fn provenance_serializes_all_fields() {
        let mut p = Provenance::collect(&SystemConfig::small_test(), 4);
        p.elapsed_ms = 1234;
        p.telemetry_interval = Some(50_000);
        p.quarantined = vec!["FwSoft/CacheR".to_string()];
        let doc = p.to_json();
        assert_eq!(
            doc.get("quarantined")
                .and_then(Json::as_arr)
                .and_then(|a| a[0].as_str()),
            Some("FwSoft/CacheR")
        );
        assert_eq!(doc.get("workers").and_then(Json::as_u64), Some(4));
        assert_eq!(
            doc.get("telemetry_interval").and_then(Json::as_u64),
            Some(50_000)
        );
        assert_eq!(doc.get("elapsed_ms").and_then(Json::as_u64), Some(1234));
        assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(GLOBAL_SEED));
        assert_eq!(
            doc.get("config_hash").and_then(Json::as_str).map(str::len),
            Some(16)
        );
        assert!(doc.get("git_rev").is_some());
    }
}
