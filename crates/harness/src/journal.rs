//! Crash-resilient sweeps: a checksummed write-ahead job journal and
//! partial reports.
//!
//! A journaled sweep appends one record per completed job to the
//! result store at `results/runs/<name>.journal/` *before* the sweep
//! finishes, so a sweep killed mid-flight (OOM killer, Ctrl-C, a power
//! cut) leaves a durable record of everything already computed.
//! Re-running with `miopt-harness --resume <name>` replays the
//! journaled outcomes — successes *and* failures — without
//! re-simulating them, runs only the missing jobs, and produces a
//! final report identical to an uninterrupted run modulo timing
//! fields.
//!
//! The journal is a [`miopt_store::Wal`] — a segmented log where every
//! record carries a length prefix, a monotonic sequence number, and an
//! FNV-1a checksum (see `miopt-store` for the format and the recovery
//! state machine):
//!
//! * Record 1 — a header object: `{"journal": <name>,
//!   "schema_version": …, "journal_version": …, "fingerprint": <sweep
//!   fingerprint>, "jobs": <total job count>}`.
//! * Records 2.. — one compact [`JobRecord`] per completed job, in
//!   completion order (job ids make the order irrelevant on replay).
//!
//! On resume, a torn final record (the in-flight write at kill time)
//! is truncated away and the sweep continues; *interior* damage — a
//! bit flip, a missing record in the middle — is refused with a
//! descriptive error naming the byte offset, and the damaged file is
//! quarantined for forensics. The v1 plain-JSONL journal format
//! (`<name>.journal.jsonl`) is migrated to the store automatically the
//! first time it is resumed.
//!
//! The [`sweep_fingerprint`] ties a journal to the exact sweep that
//! wrote it: the machine config, the job grid (workload identities and
//! policy labels), the run options, and any injected faults. Resuming
//! with different CLI flags (a different `--scale`, an added policy, a
//! changed cycle budget) is refused rather than silently mixing results
//! from two different experiments.
//!
//! Alongside the journal, the sweep rewrites
//! `results/runs/<name>.partial.json` (write-fsync-rename, so readers
//! never observe a torn file and a power cut never loses the previous
//! version) after every job. This is the graceful-interruption story:
//! the simulator forbids `unsafe` and links no signal-handling crate,
//! so instead of intercepting Ctrl-C the harness makes sure a current
//! partial report *already* exists at every instant one could arrive.
//! Both files are removed once the final report is safely on disk.

use crate::json::Json;
use crate::provenance::config_hash;
use crate::results::{JobRecord, SCHEMA_VERSION};
use miopt::runner::SweepSpec;
use miopt_engine::hash::Fnv1a;
use miopt_store::{Durability, RecoveryKind, StoreOptions, Wal};
use std::path::{Path, PathBuf};

/// Version tag of the journal layout. Version 1 was a plain JSONL
/// file; version 2 is the checksummed segmented store.
pub const JOURNAL_VERSION: u32 = 2;

/// The journal store directory for a sweep named `name` under
/// `runs_dir`.
#[must_use]
pub fn journal_dir(runs_dir: &Path, name: &str) -> PathBuf {
    runs_dir.join(format!("{name}.journal"))
}

/// The legacy (version 1) plain-JSONL journal path. Only consulted to
/// migrate interrupted v1 runs; new journals are stores under
/// [`journal_dir`].
#[must_use]
pub fn journal_v1_path(runs_dir: &Path, name: &str) -> PathBuf {
    runs_dir.join(format!("{name}.journal.jsonl"))
}

/// The partial-report path for a sweep named `name` under `runs_dir`.
#[must_use]
pub fn partial_path(runs_dir: &Path, name: &str) -> PathBuf {
    runs_dir.join(format!("{name}.partial.json"))
}

/// The store configuration every harness journal uses: fsync per
/// record (a kill loses at most the in-flight job), small segments so
/// long sweeps exercise sealing and compaction.
#[must_use]
pub fn journal_store_options() -> StoreOptions {
    StoreOptions {
        durability: Durability::PerRecord,
        segment_bytes: 256 * 1024,
    }
}

fn fingerprint_versioned(spec: &SweepSpec, journal_version: u32) -> String {
    let mut h = Fnv1a::new();
    h.write(config_hash(&spec.cfg).as_bytes());
    h.write_u64(u64::from(SCHEMA_VERSION));
    h.write_u64(u64::from(journal_version));
    let jobs = spec.jobs();
    h.write_u64(jobs.len() as u64);
    for job in &jobs {
        h.write(spec.workloads[job.workload].stable_id().as_bytes());
        h.write(job.policy.label().as_bytes());
    }
    h.write(format!("{:?}", spec.run_opts).as_bytes());
    h.write(format!("{:?}", spec.faults).as_bytes());
    format!("{:016x}", h.finish())
}

/// Fingerprint binding a journal to one exact sweep: the machine
/// config, results schema, job grid (stable workload ids × policy
/// labels), run options, and injected faults. Any difference means the
/// journaled outcomes are not interchangeable with the new sweep's.
#[must_use]
pub fn sweep_fingerprint(spec: &SweepSpec) -> String {
    fingerprint_versioned(spec, JOURNAL_VERSION)
}

/// The fingerprint a version-1 journal of this sweep would carry (the
/// journal version participates in the hash, so v1 files need their own
/// expectation during migration).
pub(crate) fn sweep_fingerprint_v1(spec: &SweepSpec) -> String {
    fingerprint_versioned(spec, 1)
}

/// Builds the header payload (record 1 of every journal store).
fn header_json(name: &str, fingerprint: &str, jobs: u64) -> String {
    Json::obj([
        ("journal", Json::str(name)),
        ("schema_version", Json::U64(u64::from(SCHEMA_VERSION))),
        ("journal_version", Json::U64(u64::from(JOURNAL_VERSION))),
        ("fingerprint", Json::str(fingerprint)),
        ("jobs", Json::U64(jobs)),
    ])
    .to_compact()
}

/// An append-only journal writer. Each appended record is checksummed,
/// sequence-numbered, and fsynced before `append` returns, so a
/// `SIGKILL` loses at most the in-flight record.
pub struct JournalWriter {
    wal: Wal,
}

impl JournalWriter {
    /// Creates (replacing any previous journal of the same name, v1 or
    /// v2) the journal store for `spec` and writes the header record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(runs_dir: &Path, name: &str, spec: &SweepSpec) -> std::io::Result<JournalWriter> {
        std::fs::create_dir_all(runs_dir)?;
        let dir = journal_dir(runs_dir, name);
        if dir.is_dir() {
            std::fs::remove_dir_all(&dir)?;
        }
        let v1 = journal_v1_path(runs_dir, name);
        if v1.is_file() {
            std::fs::remove_file(&v1)?;
        }
        let opened = Wal::open(&dir, journal_store_options())?;
        let header = header_json(name, &sweep_fingerprint(spec), spec.jobs().len() as u64);
        opened.wal.append(header.as_bytes())?;
        Ok(JournalWriter { wal: opened.wal })
    }

    /// Reopens an existing journal store for appending (resume),
    /// repairing a torn tail if the previous run was killed mid-append.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; a missing journal or interior
    /// corruption is an error here too (the caller validates first via
    /// [`Journal::load`], which also migrates v1 journals).
    pub fn append_to(runs_dir: &Path, name: &str) -> std::io::Result<JournalWriter> {
        let dir = journal_dir(runs_dir, name);
        if !dir.is_dir() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no journal store at {}", dir.display()),
            ));
        }
        let opened = Wal::open(&dir, journal_store_options())?;
        Ok(JournalWriter { wal: opened.wal })
    }

    /// Appends one job record, fsyncing it before returning. When
    /// enough records have accumulated to seal segments, they are
    /// folded into a snapshot in the background of the append path
    /// (compaction never blocks other appenders).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&self, record: &JobRecord) -> std::io::Result<()> {
        self.wal.append(record.to_json_line().as_bytes())?;
        if self.wal.sealed_segments() > 0 {
            if let Err(e) = self.wal.compact() {
                // Compaction is an optimization; the sealed segments
                // remain readable, so a failed fold must not kill the
                // sweep.
                eprintln!("warning: journal compaction failed: {e}");
            }
        }
        Ok(())
    }
}

/// A journal loaded for resume: the records of every job that completed
/// before the previous run died.
#[derive(Debug)]
pub struct Journal {
    /// Journaled records, in the order they completed.
    pub entries: Vec<JobRecord>,
}

impl Journal {
    /// Loads the journal store at `<runs_dir>/<name>.journal/` and
    /// validates that it belongs to `spec` (same fingerprint) before
    /// trusting any entry. A torn final record (the in-flight write at
    /// kill time) is repaired and dropped; interior corruption is a
    /// hard error naming the damaged file and byte offset (the file is
    /// quarantined with a `.quarantined` suffix). A legacy v1 JSONL
    /// journal is migrated to the store first.
    ///
    /// # Errors
    ///
    /// Returns a description when the journal is missing, unreadable,
    /// corrupt, or was written by a different sweep.
    pub fn load(runs_dir: &Path, name: &str, spec: &SweepSpec) -> Result<Journal, String> {
        let dir = journal_dir(runs_dir, name);
        if !dir.is_dir() {
            let v1 = journal_v1_path(runs_dir, name);
            if v1.is_file() {
                migrate_v1(runs_dir, name, spec)?;
            } else {
                return Err(format!(
                    "no journal for run `{name}` at {} \
                     (was the sweep started without journaling, or already completed?)",
                    dir.display()
                ));
            }
        }
        let opened = Wal::open(&dir, journal_store_options())
            .map_err(|e| format!("journal {} is damaged: {e}", dir.display()))?;
        if let RecoveryKind::TornTail {
            file,
            offset,
            dropped_bytes,
        } = &opened.recovery.kind
        {
            eprintln!(
                "note: journal {}: torn tail repaired at byte {offset} \
                 ({dropped_bytes} byte(s) from the in-flight record dropped)",
                file.display()
            );
        }
        let mut records = opened.records.iter();
        let header = records
            .next()
            .ok_or_else(|| format!("journal {} is empty", dir.display()))?;
        let header_text = std::str::from_utf8(&header.payload)
            .map_err(|_| format!("journal {} has a non-UTF-8 header", dir.display()))?;
        let header = Json::parse(header_text)
            .map_err(|e| format!("journal {} has a malformed header: {e}", dir.display()))?;
        let fingerprint = header
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("journal {} header lacks a fingerprint", dir.display()))?;
        let expected = sweep_fingerprint(spec);
        if fingerprint != expected {
            return Err(format!(
                "journal {} was written by a different sweep \
                 (fingerprint {fingerprint}, this invocation is {expected}); \
                 resume with the exact flags of the original run, or delete \
                 the journal to start over",
                dir.display()
            ));
        }
        let total = spec.jobs().len();
        let mut entries = Vec::new();
        for rec in records {
            // Every payload here survived a checksum, so parse failures
            // are logic errors, not torn writes: refuse loudly.
            let text = std::str::from_utf8(&rec.payload).map_err(|_| {
                format!("journal {} record {} is not UTF-8", dir.display(), rec.seq)
            })?;
            let doc = Json::parse(text).map_err(|e| {
                format!("journal {} record {} invalid: {e}", dir.display(), rec.seq)
            })?;
            let rec = JobRecord::from_json(&doc)
                .map_err(|e| format!("journal {} entry invalid: {e}", dir.display()))?;
            if rec.id >= total {
                return Err(format!(
                    "journal {} names job {} but the sweep has {total} jobs",
                    dir.display(),
                    rec.id
                ));
            }
            entries.push(rec);
        }
        Ok(Journal { entries })
    }
}

/// Migrates a version-1 plain-JSONL journal into a journal store, then
/// removes the v1 file. Torn trailing lines (the v1 crash artifact)
/// are dropped, exactly as the v1 loader did.
fn migrate_v1(runs_dir: &Path, name: &str, spec: &SweepSpec) -> Result<(), String> {
    let path = journal_v1_path(runs_dir, name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read v1 journal {}: {e}", path.display()))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| format!("journal {} is empty", path.display()))?;
    let header = Json::parse(header)
        .map_err(|e| format!("journal {} has a malformed header: {e}", path.display()))?;
    let fingerprint = header
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("journal {} header lacks a fingerprint", path.display()))?;
    let expected = sweep_fingerprint_v1(spec);
    if fingerprint != expected {
        return Err(format!(
            "journal {} was written by a different sweep \
             (fingerprint {fingerprint}, this invocation is {expected}); \
             resume with the exact flags of the original run, or delete \
             the journal to start over",
            path.display()
        ));
    }
    let total = spec.jobs().len();
    let mut entry_lines = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        // A SIGKILL could truncate the final v1 line mid-write; that
        // job simply re-runs.
        let Ok(doc) = Json::parse(line) else { continue };
        let rec = JobRecord::from_json(&doc)
            .map_err(|e| format!("journal {} entry invalid: {e}", path.display()))?;
        if rec.id >= total {
            return Err(format!(
                "journal {} names job {} but the sweep has {total} jobs",
                path.display(),
                rec.id
            ));
        }
        entry_lines.push(rec.to_json_line());
    }
    let dir = journal_dir(runs_dir, name);
    if dir.is_dir() {
        std::fs::remove_dir_all(&dir)
            .map_err(|e| format!("cannot replace journal store {}: {e}", dir.display()))?;
    }
    let opened = Wal::open(&dir, journal_store_options())
        .map_err(|e| format!("cannot create journal store {}: {e}", dir.display()))?;
    let store_err =
        |e: miopt_store::StoreError| format!("cannot write journal store {}: {e}", dir.display());
    opened
        .wal
        .append(header_json(name, &sweep_fingerprint(spec), total as u64).as_bytes())
        .map_err(store_err)?;
    for line in &entry_lines {
        opened.wal.append(line.as_bytes()).map_err(store_err)?;
    }
    opened.wal.sync().map_err(store_err)?;
    std::fs::remove_file(&path)
        .map_err(|e| format!("cannot remove migrated v1 journal {}: {e}", path.display()))?;
    let _ = miopt_store::sync_dir(runs_dir);
    eprintln!(
        "note: migrated v1 journal {} ({} entries) to {}",
        path.display(),
        entry_lines.len(),
        dir.display()
    );
    Ok(())
}

/// Durably replaces `path` with `contents`: write-fsync-rename, then
/// fsync the parent directory. Readers never observe a torn file, and
/// a power cut at any instant leaves either the old or the new
/// complete file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn replace_file(path: &Path, contents: &str) -> std::io::Result<()> {
    miopt_store::atomic_replace(path, contents.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt::SystemConfig;
    use miopt_workloads::{by_name, SuiteConfig};
    use std::io::Write as _;

    fn spec() -> SweepSpec {
        let s = SuiteConfig::quick();
        SweepSpec::statics(
            SystemConfig::small_test(),
            vec![by_name(&s, "FwSoft").unwrap()],
        )
    }

    fn record(id: usize) -> JobRecord {
        JobRecord {
            id,
            workload: "FwSoft".to_string(),
            workload_id: "soft:quick".to_string(),
            policy: "CacheR".to_string(),
            cache_key: "00112233".to_string(),
            cached: false,
            elapsed_ms: 7,
            status: "ok".to_string(),
            attempts: 1,
            metrics: None,
            diagnostic: None,
        }
    }

    fn only_segment(dir: &Path) -> PathBuf {
        let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        segs.sort();
        assert_eq!(segs.len(), 1);
        segs.pop().unwrap()
    }

    #[test]
    fn fingerprint_tracks_the_grid_and_options() {
        let base = spec();
        assert_eq!(sweep_fingerprint(&base), sweep_fingerprint(&base.clone()));
        let mut narrower = base.clone();
        narrower.policies.pop();
        assert_ne!(sweep_fingerprint(&base), sweep_fingerprint(&narrower));
        let mut other_opts = base.clone();
        other_opts.run_opts.max_cycles /= 2;
        assert_ne!(sweep_fingerprint(&base), sweep_fingerprint(&other_opts));
        let mut checked = base.clone();
        checked.run_opts.check_invariants = true;
        assert_ne!(sweep_fingerprint(&base), sweep_fingerprint(&checked));
        // The journal format version participates too: a v1 journal of
        // the same sweep carries a different fingerprint.
        assert_ne!(sweep_fingerprint(&base), sweep_fingerprint_v1(&base));
    }

    #[test]
    fn journal_round_trips_and_tolerates_a_torn_tail() {
        let dir = std::env::temp_dir().join("miopt-journal-test");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = spec();
        let w = JournalWriter::create(&dir, "t", &spec).unwrap();
        w.append(&record(0)).unwrap();
        w.append(&record(2)).unwrap();
        drop(w);
        // Simulate a SIGKILL mid-append: a torn trailing frame.
        let seg = only_segment(&journal_dir(&dir, "t"));
        let mut f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0x2a, 0x00, 0x00, 0x00, 0x03]).unwrap(); // 5 of 20 header bytes
        drop(f);
        let j = Journal::load(&dir, "t", &spec).unwrap();
        assert_eq!(
            j.entries.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 2],
            "torn tail dropped, intact entries kept"
        );
        assert_eq!(j.entries[0].status, "ok");
        // After repair the journal accepts appends again.
        let w = JournalWriter::append_to(&dir, "t").unwrap();
        w.append(&record(1)).unwrap();
        drop(w);
        let j = Journal::load(&dir, "t", &spec).unwrap();
        assert_eq!(
            j.entries.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 2, 1]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_corruption_is_refused_with_the_byte_offset() {
        let dir = std::env::temp_dir().join("miopt-journal-corrupt-test");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = spec();
        let w = JournalWriter::create(&dir, "t", &spec).unwrap();
        w.append(&record(0)).unwrap();
        w.append(&record(1)).unwrap();
        drop(w);
        let seg = only_segment(&journal_dir(&dir, "t"));
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();
        let err = Journal::load(&dir, "t", &spec).unwrap_err();
        assert!(err.contains("damaged"), "{err}");
        assert!(err.contains("byte offset"), "{err}");
        assert!(err.contains("quarantined"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_a_foreign_journal() {
        let dir = std::env::temp_dir().join("miopt-journal-fingerprint-test");
        let _ = std::fs::remove_dir_all(&dir);
        let original = spec();
        JournalWriter::create(&dir, "t", &original).unwrap();
        let mut different = original.clone();
        different.run_opts.max_cycles /= 2;
        let err = Journal::load(&dir, "t", &different).unwrap_err();
        assert!(err.contains("different sweep"), "{err}");
        // Missing journals get a descriptive error, not a panic.
        let err = Journal::load(&dir, "absent", &original).unwrap_err();
        assert!(err.contains("no journal"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The v1 migration path: a plain-JSONL journal left by an older
    /// build — torn tail and all — loads through migration, lands in
    /// the store, and keeps resuming identically.
    #[test]
    fn v1_jsonl_journals_migrate_and_resume_identically() {
        let dir = std::env::temp_dir().join("miopt-journal-migrate-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = spec();
        // Hand-write the v1 file exactly as the old writer did.
        let v1 = journal_v1_path(&dir, "old");
        let header = Json::obj([
            ("journal", Json::str("old")),
            ("schema_version", Json::U64(u64::from(SCHEMA_VERSION))),
            ("journal_version", Json::U64(1)),
            ("fingerprint", Json::str(sweep_fingerprint_v1(&spec))),
            ("jobs", Json::U64(spec.jobs().len() as u64)),
        ]);
        let mut text = format!("{}\n", header.to_compact());
        text.push_str(&format!("{}\n", record(0).to_json_line()));
        text.push_str(&format!("{}\n", record(2).to_json_line()));
        text.push_str("{\"id\": 1, \"workl"); // torn at kill time
        std::fs::write(&v1, &text).unwrap();

        let j = Journal::load(&dir, "old", &spec).unwrap();
        assert_eq!(
            j.entries.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 2],
            "v1 entries survive migration; the torn line is dropped"
        );
        assert!(!v1.exists(), "the v1 file is consumed by migration");
        assert!(journal_dir(&dir, "old").is_dir());
        // The migrated journal behaves like a native v2 one.
        let w = JournalWriter::append_to(&dir, "old").unwrap();
        w.append(&record(1)).unwrap();
        drop(w);
        let j = Journal::load(&dir, "old", &spec).unwrap();
        assert_eq!(
            j.entries.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 2, 1]
        );

        // A v1 journal from a *different* sweep is refused, unmigrated.
        let mut other = spec.clone();
        other.run_opts.max_cycles /= 2;
        let v1b = journal_v1_path(&dir, "foreign");
        let header = Json::obj([
            ("fingerprint", Json::str(sweep_fingerprint_v1(&other))),
            ("jobs", Json::U64(other.jobs().len() as u64)),
        ]);
        std::fs::write(&v1b, format!("{}\n", header.to_compact())).unwrap();
        let err = Journal::load(&dir, "foreign", &spec).unwrap_err();
        assert!(err.contains("different sweep"), "{err}");
        assert!(v1b.exists(), "a refused v1 journal is left untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
