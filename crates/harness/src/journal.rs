//! Crash-resilient sweeps: a write-ahead job journal and partial
//! reports.
//!
//! A journaled sweep appends one JSON line per completed job to
//! `results/runs/<name>.journal.jsonl` *before* the sweep finishes, so a
//! sweep killed mid-flight (OOM killer, Ctrl-C, a power cut) leaves a
//! durable record of everything already computed. Re-running with
//! `miopt-harness --resume <name>` replays the journaled outcomes —
//! successes *and* failures — without re-simulating them, runs only the
//! missing jobs, and produces a final report identical to an
//! uninterrupted run modulo timing fields.
//!
//! Layout of the journal file:
//!
//! * Line 1 — a header object: `{"journal": <name>, "schema_version": …,
//!   "fingerprint": <sweep fingerprint>, "jobs": <total job count>}`.
//! * Lines 2.. — one compact [`JobRecord`] per completed job, in
//!   completion order (job ids make the order irrelevant on replay).
//!
//! The [`sweep_fingerprint`] ties a journal to the exact sweep that
//! wrote it: the machine config, the job grid (workload identities and
//! policy labels), the run options, and any injected faults. Resuming
//! with different CLI flags (a different `--scale`, an added policy, a
//! changed cycle budget) is refused rather than silently mixing results
//! from two different experiments.
//!
//! Alongside the journal, the sweep rewrites
//! `results/runs/<name>.partial.json` (write-then-rename, so readers
//! never observe a torn file) after every job. This is the
//! graceful-interruption story: the simulator forbids `unsafe` and links
//! no signal-handling crate, so instead of intercepting Ctrl-C the
//! harness makes sure a current partial report *already* exists at every
//! instant one could arrive. Both files are removed once the final
//! report is safely on disk.

use crate::json::Json;
use crate::provenance::config_hash;
use crate::results::{JobRecord, SCHEMA_VERSION};
use miopt::runner::SweepSpec;
use miopt_engine::util::Fnv1a;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Version tag of the journal file layout.
pub const JOURNAL_VERSION: u32 = 1;

/// The journal path for a sweep named `name` under `runs_dir`.
#[must_use]
pub fn journal_path(runs_dir: &Path, name: &str) -> PathBuf {
    runs_dir.join(format!("{name}.journal.jsonl"))
}

/// The partial-report path for a sweep named `name` under `runs_dir`.
#[must_use]
pub fn partial_path(runs_dir: &Path, name: &str) -> PathBuf {
    runs_dir.join(format!("{name}.partial.json"))
}

/// Fingerprint binding a journal to one exact sweep: the machine
/// config, results schema, job grid (stable workload ids × policy
/// labels), run options, and injected faults. Any difference means the
/// journaled outcomes are not interchangeable with the new sweep's.
#[must_use]
pub fn sweep_fingerprint(spec: &SweepSpec) -> String {
    let mut h = Fnv1a::new();
    h.write(config_hash(&spec.cfg).as_bytes());
    h.write_u64(u64::from(SCHEMA_VERSION));
    h.write_u64(u64::from(JOURNAL_VERSION));
    let jobs = spec.jobs();
    h.write_u64(jobs.len() as u64);
    for job in &jobs {
        h.write(spec.workloads[job.workload].stable_id().as_bytes());
        h.write(job.policy.label().as_bytes());
    }
    h.write(format!("{:?}", spec.run_opts).as_bytes());
    h.write(format!("{:?}", spec.faults).as_bytes());
    format!("{:016x}", h.finish())
}

/// An append-only journal writer. Each appended record is flushed
/// immediately so a `SIGKILL` loses at most the in-flight line.
pub struct JournalWriter {
    file: Mutex<File>,
}

impl JournalWriter {
    /// Creates (truncating any previous journal of the same name) the
    /// journal for `spec` and writes the header line.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(runs_dir: &Path, name: &str, spec: &SweepSpec) -> std::io::Result<JournalWriter> {
        std::fs::create_dir_all(runs_dir)?;
        let mut file = File::create(journal_path(runs_dir, name))?;
        let header = Json::obj([
            ("journal", Json::str(name)),
            ("schema_version", Json::U64(u64::from(SCHEMA_VERSION))),
            ("journal_version", Json::U64(u64::from(JOURNAL_VERSION))),
            ("fingerprint", Json::str(sweep_fingerprint(spec))),
            ("jobs", Json::U64(spec.jobs().len() as u64)),
        ]);
        writeln!(file, "{}", header.to_compact())?;
        file.flush()?;
        Ok(JournalWriter {
            file: Mutex::new(file),
        })
    }

    /// Reopens an existing journal for appending (resume).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append_to(runs_dir: &Path, name: &str) -> std::io::Result<JournalWriter> {
        let file = File::options()
            .append(true)
            .open(journal_path(runs_dir, name))?;
        Ok(JournalWriter {
            file: Mutex::new(file),
        })
    }

    /// Appends one job record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    ///
    /// # Panics
    ///
    /// Panics if another writer panicked while holding the lock.
    pub fn append(&self, record: &JobRecord) -> std::io::Result<()> {
        let mut file = self.file.lock().expect("journal lock");
        writeln!(file, "{}", record.to_json_line())?;
        file.flush()
    }
}

/// A journal loaded for resume: the records of every job that completed
/// before the previous run died.
#[derive(Debug)]
pub struct Journal {
    /// Journaled records, in the order they completed.
    pub entries: Vec<JobRecord>,
}

impl Journal {
    /// Loads `<runs_dir>/<name>.journal.jsonl` and validates that it
    /// belongs to `spec` (same fingerprint) before trusting any entry.
    /// Truncated trailing lines (the in-flight write at kill time) are
    /// tolerated and dropped; a malformed header or fingerprint mismatch
    /// is a hard error.
    ///
    /// # Errors
    ///
    /// Returns a description when the journal is missing, unreadable,
    /// malformed, or was written by a different sweep.
    pub fn load(runs_dir: &Path, name: &str, spec: &SweepSpec) -> Result<Journal, String> {
        let path = journal_path(runs_dir, name);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "no journal for run `{name}` at {}: {e} \
                 (was the sweep started without journaling, or already completed?)",
                path.display()
            )
        })?;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| format!("journal {} is empty", path.display()))?;
        let header = Json::parse(header)
            .map_err(|e| format!("journal {} has a malformed header: {e}", path.display()))?;
        let fingerprint = header
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("journal {} header lacks a fingerprint", path.display()))?;
        let expected = sweep_fingerprint(spec);
        if fingerprint != expected {
            return Err(format!(
                "journal {} was written by a different sweep \
                 (fingerprint {fingerprint}, this invocation is {expected}); \
                 resume with the exact flags of the original run, or delete \
                 the journal to start over",
                path.display()
            ));
        }
        let total = spec.jobs().len();
        let mut entries = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            // A SIGKILL can truncate the final line mid-write; that job
            // simply re-runs.
            let Ok(doc) = Json::parse(line) else { continue };
            let rec = JobRecord::from_json(&doc)
                .map_err(|e| format!("journal {} entry invalid: {e}", path.display()))?;
            if rec.id >= total {
                return Err(format!(
                    "journal {} names job {} but the sweep has {total} jobs",
                    path.display(),
                    rec.id
                ));
            }
            entries.push(rec);
        }
        Ok(Journal { entries })
    }
}

/// Atomically (write-then-rename) replaces `path` with `contents`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn replace_file(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt::SystemConfig;
    use miopt_workloads::{by_name, SuiteConfig};

    fn spec() -> SweepSpec {
        let s = SuiteConfig::quick();
        SweepSpec::statics(
            SystemConfig::small_test(),
            vec![by_name(&s, "FwSoft").unwrap()],
        )
    }

    fn record(id: usize) -> JobRecord {
        JobRecord {
            id,
            workload: "FwSoft".to_string(),
            workload_id: "soft:quick".to_string(),
            policy: "CacheR".to_string(),
            cache_key: "00112233".to_string(),
            cached: false,
            elapsed_ms: 7,
            status: "ok".to_string(),
            attempts: 1,
            metrics: None,
            diagnostic: None,
        }
    }

    #[test]
    fn fingerprint_tracks_the_grid_and_options() {
        let base = spec();
        assert_eq!(sweep_fingerprint(&base), sweep_fingerprint(&base.clone()));
        let mut narrower = base.clone();
        narrower.policies.pop();
        assert_ne!(sweep_fingerprint(&base), sweep_fingerprint(&narrower));
        let mut other_opts = base.clone();
        other_opts.run_opts.max_cycles /= 2;
        assert_ne!(sweep_fingerprint(&base), sweep_fingerprint(&other_opts));
        let mut checked = base.clone();
        checked.run_opts.check_invariants = true;
        assert_ne!(sweep_fingerprint(&base), sweep_fingerprint(&checked));
    }

    #[test]
    fn journal_round_trips_and_tolerates_a_torn_tail() {
        let dir = std::env::temp_dir().join("miopt-journal-test");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = spec();
        let w = JournalWriter::create(&dir, "t", &spec).unwrap();
        w.append(&record(0)).unwrap();
        w.append(&record(2)).unwrap();
        drop(w);
        // Simulate a SIGKILL mid-append: a torn trailing line.
        let path = journal_path(&dir, "t");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"id\": 1, \"workl");
        std::fs::write(&path, &text).unwrap();
        let j = Journal::load(&dir, "t", &spec).unwrap();
        assert_eq!(
            j.entries.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 2],
            "torn tail dropped, intact entries kept"
        );
        assert_eq!(j.entries[0].status, "ok");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_a_foreign_journal() {
        let dir = std::env::temp_dir().join("miopt-journal-fingerprint-test");
        let _ = std::fs::remove_dir_all(&dir);
        let original = spec();
        JournalWriter::create(&dir, "t", &original).unwrap();
        let mut different = original.clone();
        different.run_opts.max_cycles /= 2;
        let err = Journal::load(&dir, "t", &different).unwrap_err();
        assert!(err.contains("different sweep"), "{err}");
        // Missing journals get a descriptive error, not a panic.
        let err = Journal::load(&dir, "absent", &original).unwrap_err();
        assert!(err.contains("no journal"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
