//! The `miopt-harness serve` subcommand: the policy × load tail-latency
//! sweep over multi-tenant serving scenarios.
//!
//! Where the figure sweeps ask "which cache policy minimizes kernel
//! runtime?", this sweep asks the serving question: with several model
//! instances sharing the GPU under open-loop traffic, which policy
//! minimizes *p99 request latency*? Each job fixes one candidate policy
//! (applied to every tenant) and one load level (the mean inter-arrival
//! gap), replays the *same* pre-expanded arrival schedules against it,
//! and reports per-tenant p50/p95/p99 latency and throughput.
//!
//! Traffic is part of the experiment's identity: the arrival seed and
//! the FNV-1a hash of every tenant's expanded schedule are recorded in
//! the report's provenance block and folded into the resume-journal
//! fingerprint, so `--resume` provably replays identical traffic and
//! the final report is byte-identical in all simulation-derived fields.
//!
//! ```text
//! miopt-harness serve [--system small|paper] [--scale quick|paper]
//!     [--tenants name=Workload,name=Workload] [--policies P,P,...]
//!     [--loads N,N,...] [--requests N] [--seed N] [--partition]
//!     [--max-batch N] [--budget N] [--jobs N] [--serial] [--retries N]
//!     [--no-skip] [--check-invariants] [--out <dir>]
//!     [--sweep-name <name>] [--resume <run-id>] [--no-journal] [--quiet]
//! ```

use crate::journal::{
    journal_dir, journal_store_options, journal_v1_path, partial_path, replace_file,
    JOURNAL_VERSION,
};
use crate::json::Json;
use crate::pool::{panic_message, RetryPolicy};
use crate::provenance::{config_hash, Provenance, GLOBAL_SEED};
use crate::results::SCHEMA_VERSION;
use miopt::{CachePolicy, PolicyConfig, SystemConfig, WayRange};
use miopt_engine::hash::{fnv1a_64, Fnv1a};
use miopt_serve::{ArrivalSchedule, ServeConfig, TenantSpec};
use miopt_store::{RecoveryKind, Wal};
use miopt_workloads::{by_name, SuiteConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Parsed `serve` subcommand options.
pub struct ServeArgs {
    /// The machine (`"small"` or `"paper"`).
    pub system_name: String,
    /// Workload suite scale name (`"quick"` or `"paper"`).
    pub scale_name: String,
    /// `(tenant name, workload name)` pairs.
    pub tenants: Vec<(String, String)>,
    /// Candidate policies, each applied to every tenant for one column
    /// of the grid.
    pub policies: Vec<PolicyConfig>,
    /// Load levels: mean inter-arrival gaps in cycles (smaller = more
    /// load).
    pub loads: Vec<u64>,
    /// Requests per tenant per job.
    pub requests: usize,
    /// Arrival seed (tenant streams are derived from it).
    pub seed: u64,
    /// Give each tenant an equal exclusive share of L2 ways.
    pub partition: bool,
    /// Most requests folded into one dispatch.
    pub max_batch: u32,
    /// Per-job absolute cycle budget.
    pub budget: u64,
    /// Worker threads (0 = all available cores).
    pub jobs: usize,
    /// Extra attempts for panicked jobs (total attempts = retries + 1).
    /// Not part of the journal fingerprint: retry budget may change
    /// between a run and its resume.
    pub retries: usize,
    /// Force per-cycle stepping.
    pub no_skip: bool,
    /// Enable sentinel invariant checking per job.
    pub check_invariants: bool,
    /// Directory reports are written under.
    pub runs_dir: PathBuf,
    /// Report name (the `<runs_dir>/<name>.json` stem).
    pub sweep_name: String,
    /// Resume the named interrupted run.
    pub resume: Option<String>,
    /// Disable the write-ahead journal.
    pub no_journal: bool,
    /// Suppress per-job progress lines.
    pub quiet: bool,
}

/// Parses the arguments after `serve`.
///
/// # Panics
///
/// Panics with a descriptive message on malformed arguments, matching
/// [`crate::cli::parse_args`].
#[must_use]
pub fn parse_serve_args(args: impl Iterator<Item = String>) -> ServeArgs {
    let mut out = ServeArgs {
        system_name: "small".to_string(),
        scale_name: "quick".to_string(),
        tenants: vec![
            ("t0".to_string(), "FwSoft".to_string()),
            ("t1".to_string(), "FwPool".to_string()),
        ],
        policies: vec![
            PolicyConfig::of(CachePolicy::Uncached),
            PolicyConfig::of(CachePolicy::CacheR),
            PolicyConfig::of(CachePolicy::CacheRW),
        ],
        loads: vec![60_000, 15_000],
        requests: 12,
        seed: GLOBAL_SEED,
        partition: false,
        max_batch: 4,
        budget: 2_000_000_000,
        jobs: 0,
        retries: 0,
        no_skip: false,
        check_invariants: false,
        runs_dir: PathBuf::from("results/runs"),
        sweep_name: String::new(),
        resume: None,
        no_journal: false,
        quiet: false,
    };
    let mut args = args;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--system" => {
                let v = value("--system");
                assert!(
                    v == "small" || v == "paper",
                    "unknown system {v:?} (use small|paper)"
                );
                out.system_name = v;
            }
            "--scale" => {
                let v = value("--scale");
                assert!(
                    v == "quick" || v == "paper",
                    "unknown scale {v:?} (use quick|paper)"
                );
                out.scale_name = v;
            }
            "--tenants" => {
                out.tenants = value("--tenants")
                    .split(',')
                    .map(|pair| {
                        let (name, workload) = pair.split_once('=').unwrap_or_else(|| {
                            panic!("--tenants wants name=Workload, got {pair:?}")
                        });
                        (name.to_string(), workload.to_string())
                    })
                    .collect();
            }
            "--policies" => {
                out.policies = value("--policies")
                    .split(',')
                    .map(|p| match p {
                        "Uncached" => PolicyConfig::of(CachePolicy::Uncached),
                        "CacheR" => PolicyConfig::of(CachePolicy::CacheR),
                        "CacheRW" => PolicyConfig::of(CachePolicy::CacheRW),
                        other => panic!("unknown policy {other:?} (use Uncached|CacheR|CacheRW)"),
                    })
                    .collect();
            }
            "--loads" => {
                out.loads = value("--loads")
                    .split(',')
                    .map(|l| l.parse().expect("--loads wants cycle counts"))
                    .collect();
            }
            "--requests" => {
                out.requests = value("--requests")
                    .parse()
                    .expect("--requests needs a number");
            }
            "--seed" => out.seed = value("--seed").parse().expect("--seed needs a number"),
            "--partition" => out.partition = true,
            "--max-batch" => {
                out.max_batch = value("--max-batch")
                    .parse()
                    .expect("--max-batch needs a number");
            }
            "--budget" => {
                out.budget = value("--budget").parse().expect("--budget needs a number");
            }
            "--jobs" => out.jobs = value("--jobs").parse().expect("--jobs needs a number"),
            "--serial" => out.jobs = 1,
            "--retries" => {
                out.retries = value("--retries")
                    .parse()
                    .expect("--retries needs a number");
            }
            "--no-skip" => out.no_skip = true,
            "--check-invariants" => out.check_invariants = true,
            "--out" => out.runs_dir = PathBuf::from(value("--out")),
            "--sweep-name" => out.sweep_name = value("--sweep-name"),
            "--resume" => out.resume = Some(value("--resume")),
            "--no-journal" => out.no_journal = true,
            "--quiet" => out.quiet = true,
            other => panic!("unexpected argument {other:?}"),
        }
    }
    if out.sweep_name.is_empty() {
        out.sweep_name = format!("serve-{}-{}", out.system_name, out.scale_name);
    }
    if let Some(id) = &out.resume {
        out.sweep_name.clone_from(id);
    }
    out
}

/// The fully resolved serve sweep: every job's scenario is derivable
/// from this value alone, which is what the fingerprint hashes.
#[derive(Debug, Clone)]
pub struct ServeSweepSpec {
    /// The simulated machine.
    pub system: SystemConfig,
    /// Workload suite scale.
    pub scale: SuiteConfig,
    /// `(tenant name, workload name)` pairs.
    pub tenants: Vec<(String, String)>,
    /// Candidate policies.
    pub policies: Vec<PolicyConfig>,
    /// Mean inter-arrival gaps in cycles.
    pub loads: Vec<u64>,
    /// Requests per tenant per job.
    pub requests: usize,
    /// Arrival seed.
    pub seed: u64,
    /// Equal-share L2 way partitioning.
    pub partition: bool,
    /// Batching limit.
    pub max_batch: u32,
    /// Per-job cycle budget.
    pub budget: u64,
    /// Force per-cycle stepping.
    pub no_skip: bool,
    /// Sentinel invariant checking.
    pub check_invariants: bool,
}

/// One cell of the policy × load grid.
#[derive(Debug, Clone)]
pub struct ServeJob {
    /// Job id (assembly order: policies outer, loads inner).
    pub id: usize,
    /// The policy applied to every tenant.
    pub policy: PolicyConfig,
    /// Mean inter-arrival gap in cycles.
    pub load: u64,
}

impl ServeSweepSpec {
    /// Resolves CLI arguments into a spec.
    ///
    /// # Panics
    ///
    /// Panics when a tenant names an unknown workload or the grid is
    /// empty.
    #[must_use]
    pub fn from_args(args: &ServeArgs) -> ServeSweepSpec {
        let system = match args.system_name.as_str() {
            "paper" => SystemConfig::paper_table1(),
            _ => SystemConfig::small_test(),
        };
        let scale = match args.scale_name.as_str() {
            "paper" => SuiteConfig::paper(),
            _ => SuiteConfig::quick(),
        };
        assert!(!args.tenants.is_empty(), "--tenants matched no tenants");
        assert!(!args.policies.is_empty(), "--policies matched no policies");
        assert!(!args.loads.is_empty(), "--loads matched no load levels");
        for (_, workload) in &args.tenants {
            assert!(
                by_name(&scale, workload).is_some(),
                "unknown workload {workload:?}"
            );
        }
        ServeSweepSpec {
            system,
            scale,
            tenants: args.tenants.clone(),
            policies: args.policies.clone(),
            loads: args.loads.clone(),
            requests: args.requests,
            seed: args.seed,
            partition: args.partition,
            max_batch: args.max_batch,
            budget: args.budget,
            no_skip: args.no_skip,
            check_invariants: args.check_invariants,
        }
    }

    /// The job grid, policies outer and loads inner.
    #[must_use]
    pub fn jobs(&self) -> Vec<ServeJob> {
        let mut jobs = Vec::with_capacity(self.policies.len() * self.loads.len());
        for policy in &self.policies {
            for &load in &self.loads {
                jobs.push(ServeJob {
                    id: jobs.len(),
                    policy: *policy,
                    load,
                });
            }
        }
        jobs
    }

    /// The equal-share L2 partition of tenant `i`, when partitioning is
    /// on (the last tenant absorbs the remainder ways).
    fn partition_of(&self, i: usize) -> Option<WayRange> {
        if !self.partition {
            return None;
        }
        let n = self.tenants.len();
        let share = self.system.l2.ways / n;
        assert!(share >= 1, "fewer L2 ways than tenants");
        let count = if i == n - 1 {
            self.system.l2.ways - i * share
        } else {
            share
        };
        Some(WayRange::new(i * share, count))
    }

    /// The arrival schedule of tenant `i` at load level `load`. Streams
    /// are derived from the sweep seed, the tenant name, and the load —
    /// but *not* the policy, so every policy in a column faces
    /// byte-identical traffic.
    #[must_use]
    pub fn schedule_of(&self, i: usize, load: u64) -> ArrivalSchedule {
        let stream = self.seed ^ fnv1a_64(format!("{}:{load}", self.tenants[i].0).as_bytes());
        ArrivalSchedule::poisson(stream, load as f64, self.requests)
    }

    /// The full scenario for one job.
    ///
    /// # Panics
    ///
    /// Panics when a tenant names an unknown workload (prevented by
    /// [`ServeSweepSpec::from_args`]).
    #[must_use]
    pub fn serve_config(&self, job: &ServeJob) -> ServeConfig {
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, (name, workload))| TenantSpec {
                name: name.clone(),
                workload: by_name(&self.scale, workload).expect("validated workload"),
                policy: job.policy,
                schedule: self.schedule_of(i, job.load),
                l2_partition: self.partition_of(i),
                max_batch: self.max_batch,
            })
            .collect();
        ServeConfig {
            system: self.system.clone(),
            tenants,
            max_cycles: self.budget,
            no_skip: self.no_skip,
            check_invariants: self.check_invariants,
            telemetry_interval: None,
        }
    }

    /// FNV-1a over every tenant's schedule at every load level — the
    /// traffic identity of the whole sweep.
    #[must_use]
    pub fn arrivals_fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for &load in &self.loads {
            for i in 0..self.tenants.len() {
                h.write_u64(self.schedule_of(i, load).hash());
            }
        }
        h.finish()
    }

    /// Fingerprint binding a journal to one exact serve sweep: machine,
    /// schema, grid, tenant workload identities, run options, and the
    /// arrival seed plus expanded-schedule hashes (so resumed traffic is
    /// provably identical).
    #[must_use]
    pub fn fingerprint(&self) -> String {
        self.fingerprint_versioned(JOURNAL_VERSION)
    }

    /// The fingerprint a version-1 (plain JSONL) journal of this sweep
    /// carries — the journal version participates in the hash, so v1
    /// files must be validated against the v1 value before migration.
    pub(crate) fn fingerprint_v1(&self) -> String {
        self.fingerprint_versioned(1)
    }

    fn fingerprint_versioned(&self, journal_version: u32) -> String {
        let mut h = Fnv1a::new();
        h.write(b"serve");
        h.write(config_hash(&self.system).as_bytes());
        h.write_u64(u64::from(SCHEMA_VERSION));
        h.write_u64(u64::from(journal_version));
        let jobs = self.jobs();
        h.write_u64(jobs.len() as u64);
        for job in &jobs {
            h.write(job.policy.label().as_bytes());
            h.write_u64(job.load);
        }
        for (name, workload) in &self.tenants {
            h.write(name.as_bytes());
            h.write(
                by_name(&self.scale, workload)
                    .expect("validated workload")
                    .stable_id()
                    .as_bytes(),
            );
        }
        h.write_u64(self.requests as u64);
        h.write_u64(self.seed);
        h.write_u64(u64::from(self.partition));
        h.write_u64(u64::from(self.max_batch));
        h.write_u64(self.budget);
        h.write_u64(u64::from(self.no_skip));
        h.write_u64(u64::from(self.check_invariants));
        h.write_u64(self.arrivals_fingerprint());
        format!("{:016x}", h.finish())
    }
}

/// One tenant's results inside a [`ServeJobRecord`]. All fields are
/// exact integers, so the serialized record is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRecord {
    /// Tenant name.
    pub name: String,
    /// Workload name.
    pub workload: String,
    /// Requests scheduled / completed.
    pub requested: u64,
    /// Requests completed.
    pub completed: u64,
    /// Dispatches.
    pub batches: u64,
    /// Kernel launches.
    pub kernels: u64,
    /// Cycles the tenant's kernels held the GPU.
    pub busy_cycles: u64,
    /// Deepest queue observed.
    pub queue_peak: u64,
    /// DRAM read bursts attributed to the tenant.
    pub dram_reads: u64,
    /// DRAM write bursts attributed to the tenant.
    pub dram_writes: u64,
    /// Request-crossbar transfers attributed to the tenant.
    pub noc_req_transfers: u64,
    /// Response-crossbar transfers attributed to the tenant.
    pub noc_resp_transfers: u64,
    /// Sum of request latencies in cycles (mean = sum / completed).
    pub latency_sum: u64,
    /// p50 request latency in cycles.
    pub p50: u64,
    /// p95 request latency in cycles.
    pub p95: u64,
    /// p99 request latency in cycles.
    pub p99: u64,
}

/// One job's entry in a serve sweep report. Contains no wall-clock
/// fields: a resumed sweep reproduces these records byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeJobRecord {
    /// Job id within the sweep.
    pub id: usize,
    /// Policy label.
    pub policy: String,
    /// Mean inter-arrival gap in cycles.
    pub load: u64,
    /// `"ok"`, or the failure description.
    pub status: String,
    /// Cycle at which the last dispatch completed (0 on failure).
    pub cycles: u64,
    /// Per-tenant results (empty on failure).
    pub tenants: Vec<TenantRecord>,
}

impl ServeJobRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::U64(self.id as u64)),
            ("policy", Json::str(&self.policy)),
            ("load", Json::U64(self.load)),
            ("status", Json::str(&self.status)),
            ("cycles", Json::U64(self.cycles)),
            (
                "tenants",
                Json::Arr(
                    self.tenants
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("name", Json::str(&t.name)),
                                ("workload", Json::str(&t.workload)),
                                ("requested", Json::U64(t.requested)),
                                ("completed", Json::U64(t.completed)),
                                ("batches", Json::U64(t.batches)),
                                ("kernels", Json::U64(t.kernels)),
                                ("busy_cycles", Json::U64(t.busy_cycles)),
                                ("queue_peak", Json::U64(t.queue_peak)),
                                ("dram_reads", Json::U64(t.dram_reads)),
                                ("dram_writes", Json::U64(t.dram_writes)),
                                ("noc_req_transfers", Json::U64(t.noc_req_transfers)),
                                ("noc_resp_transfers", Json::U64(t.noc_resp_transfers)),
                                ("latency_sum", Json::U64(t.latency_sum)),
                                ("p50", Json::U64(t.p50)),
                                ("p95", Json::U64(t.p95)),
                                ("p99", Json::U64(t.p99)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The record as one compact JSON line (the journal entry format).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        self.to_json().to_compact()
    }

    /// Rebuilds a record from its JSON form (journal replay).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<ServeJobRecord, String> {
        let int = |doc: &Json, key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or invalid `{key}`"))
        };
        let text = |doc: &Json, key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or invalid `{key}`"))
        };
        let mut tenants = Vec::new();
        for t in doc
            .get("tenants")
            .and_then(Json::as_arr)
            .ok_or("missing or invalid `tenants`")?
        {
            tenants.push(TenantRecord {
                name: text(t, "name")?,
                workload: text(t, "workload")?,
                requested: int(t, "requested")?,
                completed: int(t, "completed")?,
                batches: int(t, "batches")?,
                kernels: int(t, "kernels")?,
                busy_cycles: int(t, "busy_cycles")?,
                queue_peak: int(t, "queue_peak")?,
                dram_reads: int(t, "dram_reads")?,
                dram_writes: int(t, "dram_writes")?,
                noc_req_transfers: int(t, "noc_req_transfers")?,
                noc_resp_transfers: int(t, "noc_resp_transfers")?,
                latency_sum: int(t, "latency_sum")?,
                p50: int(t, "p50")?,
                p95: int(t, "p95")?,
                p99: int(t, "p99")?,
            });
        }
        Ok(ServeJobRecord {
            id: int(doc, "id")? as usize,
            policy: text(doc, "policy")?,
            load: int(doc, "load")?,
            status: text(doc, "status")?,
            cycles: int(doc, "cycles")?,
            tenants,
        })
    }
}

/// Runs one grid cell.
#[must_use]
pub fn run_serve_job(spec: &ServeSweepSpec, job: &ServeJob) -> ServeJobRecord {
    let cfg = spec.serve_config(job);
    match miopt_serve::run(&cfg) {
        Ok(result) => ServeJobRecord {
            id: job.id,
            policy: job.policy.label(),
            load: job.load,
            status: "ok".to_string(),
            cycles: result.cycles,
            tenants: result
                .tenants
                .iter()
                .zip(&spec.tenants)
                .map(|(t, (_, workload))| TenantRecord {
                    name: t.name.clone(),
                    workload: workload.clone(),
                    requested: t.requested,
                    completed: t.completed,
                    batches: t.batches,
                    kernels: t.kernels,
                    busy_cycles: t.busy_cycles,
                    queue_peak: t.queue_peak,
                    dram_reads: t.dram_reads,
                    dram_writes: t.dram_writes,
                    noc_req_transfers: t.noc_req_transfers,
                    noc_resp_transfers: t.noc_resp_transfers,
                    latency_sum: u64::try_from(t.latency.sum()).unwrap_or(u64::MAX),
                    p50: t.p50().unwrap_or(0),
                    p95: t.p95().unwrap_or(0),
                    p99: t.p99().unwrap_or(0),
                })
                .collect(),
        },
        Err(e) => ServeJobRecord {
            id: job.id,
            policy: job.policy.label(),
            load: job.load,
            status: e.to_string(),
            cycles: 0,
            tenants: Vec::new(),
        },
    }
}

/// The serve journal's header record (record 1 of the store): the
/// fingerprint plus the traffic identity, so a resumed run can prove it
/// replays the same arrivals.
fn serve_header_json(name: &str, spec: &ServeSweepSpec) -> String {
    Json::obj([
        ("journal", Json::str(name)),
        ("kind", Json::str("serve")),
        ("schema_version", Json::U64(u64::from(SCHEMA_VERSION))),
        ("journal_version", Json::U64(u64::from(JOURNAL_VERSION))),
        ("fingerprint", Json::str(spec.fingerprint())),
        ("arrival_seed", Json::U64(spec.seed)),
        (
            "arrivals_fingerprint",
            Json::str(format!("{:016x}", spec.arrivals_fingerprint())),
        ),
        ("jobs", Json::U64(spec.jobs().len() as u64)),
    ])
    .to_compact()
}

/// Append-only journal writer for serve sweeps, backed by the same
/// checksummed [`miopt_store`] write-ahead log as the figure sweeps.
/// Record 1 is the serve header; each completed job appends one compact
/// JSON record, fsynced before `append` returns.
pub struct ServeJournalWriter {
    wal: Wal,
}

impl ServeJournalWriter {
    /// Creates the journal store (replacing any previous journal of the
    /// same name, v1 or v2) and writes the header record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(
        runs_dir: &Path,
        name: &str,
        spec: &ServeSweepSpec,
    ) -> std::io::Result<ServeJournalWriter> {
        std::fs::create_dir_all(runs_dir)?;
        let dir = journal_dir(runs_dir, name);
        if dir.is_dir() {
            std::fs::remove_dir_all(&dir)?;
        }
        let v1 = journal_v1_path(runs_dir, name);
        if v1.is_file() {
            std::fs::remove_file(&v1)?;
        }
        let opened = Wal::open(&dir, journal_store_options())?;
        opened
            .wal
            .append(serve_header_json(name, spec).as_bytes())?;
        Ok(ServeJournalWriter { wal: opened.wal })
    }

    /// Reopens an existing journal store for appending (resume),
    /// repairing a torn tail if the previous run was killed mid-append.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the caller validates the journal
    /// first via [`load_serve_journal`], which also migrates v1 files.
    pub fn append_to(runs_dir: &Path, name: &str) -> std::io::Result<ServeJournalWriter> {
        let dir = journal_dir(runs_dir, name);
        if !dir.is_dir() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no journal store at {}", dir.display()),
            ));
        }
        let opened = Wal::open(&dir, journal_store_options())?;
        Ok(ServeJournalWriter { wal: opened.wal })
    }

    /// Appends one record, fsyncing it before returning, and folds
    /// sealed segments into a snapshot when any have accumulated.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&self, record: &ServeJobRecord) -> std::io::Result<()> {
        self.wal.append(record.to_json_line().as_bytes())?;
        if self.wal.sealed_segments() > 0 {
            if let Err(e) = self.wal.compact() {
                // Compaction is an optimization; the sealed segments
                // remain readable, so a failed fold must not kill the
                // sweep.
                eprintln!("warning: serve journal compaction failed: {e}");
            }
        }
        Ok(())
    }
}

/// Loads a serve journal for resume, validating its fingerprint against
/// `spec` before trusting any entry. A torn final record (the in-flight
/// write at kill time) is repaired and dropped; interior corruption is
/// a hard error naming the damaged file and byte offset (the file is
/// quarantined with a `.quarantined` suffix). A legacy v1 JSONL journal
/// is migrated to the store first.
///
/// # Errors
///
/// Returns a description when the journal is missing, corrupt, or was
/// written by a different sweep (different grid, options, or traffic).
pub fn load_serve_journal(
    runs_dir: &Path,
    name: &str,
    spec: &ServeSweepSpec,
) -> Result<Vec<ServeJobRecord>, String> {
    let dir = journal_dir(runs_dir, name);
    if !dir.is_dir() {
        let v1 = journal_v1_path(runs_dir, name);
        if v1.is_file() {
            migrate_serve_v1(runs_dir, name, spec)?;
        } else {
            return Err(format!(
                "no journal for serve run `{name}` at {} \
                 (was the sweep started without journaling, or already completed?)",
                dir.display()
            ));
        }
    }
    let opened = Wal::open(&dir, journal_store_options())
        .map_err(|e| format!("journal {} is damaged: {e}", dir.display()))?;
    if let RecoveryKind::TornTail {
        file,
        offset,
        dropped_bytes,
    } = &opened.recovery.kind
    {
        eprintln!(
            "note: journal {}: torn tail repaired at byte {offset} \
             ({dropped_bytes} byte(s) from the in-flight record dropped)",
            file.display()
        );
    }
    let mut records = opened.records.iter();
    let header = records
        .next()
        .ok_or_else(|| format!("journal {} is empty", dir.display()))?;
    let header_text = std::str::from_utf8(&header.payload)
        .map_err(|_| format!("journal {} has a non-UTF-8 header", dir.display()))?;
    let header = Json::parse(header_text)
        .map_err(|e| format!("journal {} has a malformed header: {e}", dir.display()))?;
    let fingerprint = header
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("journal {} header lacks a fingerprint", dir.display()))?;
    let expected = spec.fingerprint();
    if fingerprint != expected {
        return Err(format!(
            "journal {} was written by a different serve sweep \
             (fingerprint {fingerprint}, this invocation is {expected}); \
             resume with the exact flags of the original run, or delete \
             the journal to start over",
            dir.display()
        ));
    }
    let total = spec.jobs().len();
    let mut entries = Vec::new();
    for rec in records {
        // Every payload here survived a checksum, so parse failures are
        // logic errors, not torn writes: refuse loudly.
        let text = std::str::from_utf8(&rec.payload)
            .map_err(|_| format!("journal {} record {} is not UTF-8", dir.display(), rec.seq))?;
        let doc = Json::parse(text)
            .map_err(|e| format!("journal {} record {} invalid: {e}", dir.display(), rec.seq))?;
        let rec = ServeJobRecord::from_json(&doc)
            .map_err(|e| format!("journal {} entry invalid: {e}", dir.display()))?;
        if rec.id >= total {
            return Err(format!(
                "journal {} names job {} but the sweep has {total} jobs",
                dir.display(),
                rec.id
            ));
        }
        entries.push(rec);
    }
    Ok(entries)
}

/// Migrates a version-1 plain-JSONL serve journal into a journal store,
/// then removes the v1 file. Torn trailing lines (the v1 crash
/// artifact) are dropped, exactly as the v1 loader did.
fn migrate_serve_v1(runs_dir: &Path, name: &str, spec: &ServeSweepSpec) -> Result<(), String> {
    let path = journal_v1_path(runs_dir, name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read v1 journal {}: {e}", path.display()))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| format!("journal {} is empty", path.display()))?;
    let header = Json::parse(header)
        .map_err(|e| format!("journal {} has a malformed header: {e}", path.display()))?;
    let fingerprint = header
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("journal {} header lacks a fingerprint", path.display()))?;
    let expected = spec.fingerprint_v1();
    if fingerprint != expected {
        return Err(format!(
            "journal {} was written by a different serve sweep \
             (fingerprint {fingerprint}, this invocation is {expected}); \
             resume with the exact flags of the original run, or delete \
             the journal to start over",
            path.display()
        ));
    }
    let total = spec.jobs().len();
    let mut entry_lines = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        // A SIGKILL could truncate the final v1 line mid-write; that
        // job simply re-runs.
        let Ok(doc) = Json::parse(line) else { continue };
        let rec = ServeJobRecord::from_json(&doc)
            .map_err(|e| format!("journal {} entry invalid: {e}", path.display()))?;
        if rec.id >= total {
            return Err(format!(
                "journal {} names job {} but the sweep has {total} jobs",
                path.display(),
                rec.id
            ));
        }
        entry_lines.push(rec.to_json_line());
    }
    let dir = journal_dir(runs_dir, name);
    if dir.is_dir() {
        std::fs::remove_dir_all(&dir)
            .map_err(|e| format!("cannot replace journal store {}: {e}", dir.display()))?;
    }
    let opened = Wal::open(&dir, journal_store_options())
        .map_err(|e| format!("cannot create journal store {}: {e}", dir.display()))?;
    let store_err =
        |e: miopt_store::StoreError| format!("cannot write journal store {}: {e}", dir.display());
    opened
        .wal
        .append(serve_header_json(name, spec).as_bytes())
        .map_err(store_err)?;
    for line in &entry_lines {
        opened.wal.append(line.as_bytes()).map_err(store_err)?;
    }
    opened.wal.sync().map_err(store_err)?;
    std::fs::remove_file(&path)
        .map_err(|e| format!("cannot remove migrated v1 journal {}: {e}", path.display()))?;
    let _ = miopt_store::sync_dir(runs_dir);
    eprintln!(
        "note: migrated v1 serve journal {} ({} entries) to {}",
        path.display(),
        entry_lines.len(),
        dir.display()
    );
    Ok(())
}

/// Runs one grid cell under the retry policy. Panics are the only
/// transient failure mode a serve job has (the simulator is
/// deterministic, so a sim-level error repeats identically and is
/// reported, not retried); each retry waits on the shared
/// [`crate::backoff::Backoff`] schedule, and an exhausted budget turns
/// the last panic into the record's `status`.
fn run_serve_job_with_retry(
    spec: &ServeSweepSpec,
    job: &ServeJob,
    retry: &RetryPolicy,
) -> ServeJobRecord {
    let budget = retry.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        attempt += 1;
        match catch_unwind(AssertUnwindSafe(|| run_serve_job(spec, job))) {
            Ok(record) => return record,
            Err(payload) => {
                let message = panic_message(&*payload);
                if attempt >= budget {
                    return ServeJobRecord {
                        id: job.id,
                        policy: job.policy.label(),
                        load: job.load,
                        status: format!("panicked: {message}"),
                        cycles: 0,
                        tenants: Vec::new(),
                    };
                }
                eprintln!(
                    "warning: serve job {} panicked ({message}); retrying \
                     (attempt {} of {budget})",
                    job.id,
                    attempt + 1
                );
                std::thread::sleep(retry.backoff.delay(job.id as u64, attempt as u32));
            }
        }
    }
}

/// Executes the grid across `workers` threads, skipping ids present in
/// `existing` (journal replay), and returns every record in job-id
/// order. Results are byte-identical at any worker count: workers only
/// race for *which* job to run next, never over a job's outcome.
///
/// # Panics
///
/// Panics if `existing` names a job id outside the grid.
#[must_use]
pub fn execute(
    spec: &ServeSweepSpec,
    workers: usize,
    quiet: bool,
    journal: Option<&ServeJournalWriter>,
    existing: &[ServeJobRecord],
    retry: &RetryPolicy,
) -> Vec<ServeJobRecord> {
    let jobs = spec.jobs();
    let mut slots: Vec<Option<ServeJobRecord>> = vec![None; jobs.len()];
    for rec in existing {
        slots[rec.id] = Some(rec.clone());
    }
    let todo: Vec<&ServeJob> = jobs.iter().filter(|j| slots[j.id].is_none()).collect();
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        workers
    }
    .min(todo.len().max(1));

    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::<ServeJobRecord>::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = todo.get(i) else { break };
                let record = run_serve_job_with_retry(spec, job, retry);
                if !quiet {
                    eprintln!(
                        "  [serve {}/{}] {} @ load {}: {}",
                        job.id + 1,
                        jobs.len(),
                        record.policy,
                        record.load,
                        record.status
                    );
                }
                if let Some(j) = journal {
                    if let Err(e) = j.append(&record) {
                        eprintln!("warning: journal append failed: {e}");
                    }
                }
                done.lock().expect("serve results lock").push(record);
            });
        }
    });
    for record in done.into_inner().expect("serve results lock") {
        let id = record.id;
        slots[id] = Some(record);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job ran or was journaled"))
        .collect()
}

/// The worst (maximum) tenant p99 of a job — the sweep's tail metric.
fn worst_p99(rec: &ServeJobRecord) -> u64 {
    rec.tenants.iter().map(|t| t.p99).max().unwrap_or(u64::MAX)
}

/// Per-load summary rows: which policy wins on tail latency (worst
/// tenant p99) and which wins on mean dispatch runtime (GPU busy cycles
/// per batch). When they differ, queueing has inverted the paper's
/// isolated-runtime ranking — the effect the sweep exists to expose.
#[must_use]
pub fn summarize(spec: &ServeSweepSpec, records: &[ServeJobRecord]) -> Json {
    let rows = spec
        .loads
        .iter()
        .map(|&load| {
            let at_load: Vec<&ServeJobRecord> = records
                .iter()
                .filter(|r| r.load == load && r.status == "ok")
                .collect();
            let by_p99 = at_load.iter().min_by_key(|r| worst_p99(r));
            // Exact rational compare of busy/batches, no float rounding.
            let by_mean = at_load.iter().min_by(|a, b| {
                let (ab, an): (u128, u128) = (
                    a.tenants.iter().map(|t| u128::from(t.busy_cycles)).sum(),
                    a.tenants.iter().map(|t| u128::from(t.batches)).sum(),
                );
                let (bb, bn): (u128, u128) = (
                    b.tenants.iter().map(|t| u128::from(t.busy_cycles)).sum(),
                    b.tenants.iter().map(|t| u128::from(t.batches)).sum(),
                );
                (ab * bn.max(1)).cmp(&(bb * an.max(1)))
            });
            let best_p99 = by_p99.map_or("none", |r| r.policy.as_str());
            let best_mean = by_mean.map_or("none", |r| r.policy.as_str());
            Json::obj([
                ("load", Json::U64(load)),
                ("best_by_p99", Json::str(best_p99)),
                ("best_by_mean_batch", Json::str(best_mean)),
                ("tail_diverges_from_mean", Json::Bool(best_p99 != best_mean)),
            ])
        })
        .collect();
    Json::Arr(rows)
}

/// Assembles the full report document: provenance (including the
/// arrival seed and schedule hash), the grid, per-job records, and the
/// per-load summary.
#[must_use]
pub fn report_json(
    spec: &ServeSweepSpec,
    name: &str,
    provenance: &Provenance,
    records: &[ServeJobRecord],
) -> Json {
    let mut prov = provenance.to_json();
    if let Json::Obj(pairs) = &mut prov {
        pairs.push(("arrival_seed".to_string(), Json::U64(spec.seed)));
        pairs.push((
            "arrivals_fingerprint".to_string(),
            Json::str(format!("{:016x}", spec.arrivals_fingerprint())),
        ));
    }
    Json::obj([
        ("sweep", Json::str(name)),
        ("kind", Json::str("serve")),
        ("schema_version", Json::U64(u64::from(SCHEMA_VERSION))),
        ("provenance", prov),
        (
            "grid",
            Json::obj([
                (
                    "tenants",
                    Json::Arr(
                        spec.tenants
                            .iter()
                            .map(|(n, w)| {
                                Json::obj([("name", Json::str(n)), ("workload", Json::str(w))])
                            })
                            .collect(),
                    ),
                ),
                (
                    "policies",
                    Json::Arr(spec.policies.iter().map(|p| Json::str(p.label())).collect()),
                ),
                (
                    "loads",
                    Json::Arr(spec.loads.iter().map(|&l| Json::U64(l)).collect()),
                ),
                ("requests", Json::U64(spec.requests as u64)),
                ("max_batch", Json::U64(u64::from(spec.max_batch))),
                ("partition", Json::Bool(spec.partition)),
            ]),
        ),
        (
            "jobs",
            Json::Arr(records.iter().map(ServeJobRecord::to_json).collect()),
        ),
        ("summary", summarize(spec, records)),
    ])
}

/// Prints the human-readable sweep table to stdout.
fn print_table(spec: &ServeSweepSpec, records: &[ServeJobRecord]) {
    println!("== serve: policy x load -> tail latency (cycles) ==");
    println!(
        "{:14} {:>10} {:>10}  per-tenant p50/p95/p99 (completed)",
        "policy", "load", "cycles"
    );
    for r in records {
        let tenants = if r.status == "ok" {
            r.tenants
                .iter()
                .map(|t| {
                    format!(
                        "{}: {}/{}/{} ({})",
                        t.name, t.p50, t.p95, t.p99, t.completed
                    )
                })
                .collect::<Vec<_>>()
                .join("  ")
        } else {
            format!("FAILED: {}", r.status)
        };
        println!("{:14} {:>10} {:>10}  {tenants}", r.policy, r.load, r.cycles);
    }
    let summary = summarize(spec, records);
    if let Json::Arr(rows) = &summary {
        for row in rows {
            let load = row.get("load").and_then(Json::as_u64).unwrap_or(0);
            let p99 = row.get("best_by_p99").and_then(Json::as_str).unwrap_or("?");
            let mean = row
                .get("best_by_mean_batch")
                .and_then(Json::as_str)
                .unwrap_or("?");
            let mark = if p99 == mean {
                ""
            } else {
                "  <-- tail diverges"
            };
            println!("load {load}: best by p99 = {p99}, best by mean batch = {mean}{mark}");
        }
    }
}

/// Runs the `serve` subcommand. Returns the process exit code.
#[must_use]
pub fn run_serve(args: &ServeArgs) -> i32 {
    let spec = ServeSweepSpec::from_args(args);
    let jobs = spec.jobs();
    eprintln!(
        "running serve sweep: {} policies x {} loads = {} jobs, {} tenants ...",
        spec.policies.len(),
        spec.loads.len(),
        jobs.len(),
        spec.tenants.len()
    );

    let mut existing = Vec::new();
    let journal = if args.no_journal {
        None
    } else if args.resume.is_some() {
        match load_serve_journal(&args.runs_dir, &args.sweep_name, &spec) {
            Ok(entries) => {
                eprintln!(
                    "resuming `{}`: {} of {} job(s) already journaled",
                    args.sweep_name,
                    entries.len(),
                    jobs.len()
                );
                existing = entries;
                match ServeJournalWriter::append_to(&args.runs_dir, &args.sweep_name) {
                    Ok(w) => Some(w),
                    Err(e) => {
                        eprintln!("error: cannot reopen journal: {e}");
                        return 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    } else {
        eprintln!(
            "run id: {} (resume an interrupted sweep with serve --resume {})",
            args.sweep_name, args.sweep_name
        );
        match ServeJournalWriter::create(&args.runs_dir, &args.sweep_name, &spec) {
            Ok(w) => Some(w),
            Err(e) => {
                eprintln!("warning: journaling disabled ({e})");
                None
            }
        }
    };

    let mut provenance = Provenance::collect(&spec.system, args.jobs.max(1));
    let retry = RetryPolicy {
        max_attempts: args.retries + 1,
        ..RetryPolicy::default()
    };
    let t0 = Instant::now();
    let records = execute(
        &spec,
        args.jobs,
        args.quiet,
        journal.as_ref(),
        &existing,
        &retry,
    );
    provenance.elapsed_ms = t0.elapsed().as_millis() as u64;
    eprintln!("serve sweep done in {:.1}s", t0.elapsed().as_secs_f64());

    let report = report_json(&spec, &args.sweep_name, &provenance, &records);
    std::fs::create_dir_all(&args.runs_dir).ok();
    let path = args.runs_dir.join(format!("{}.json", args.sweep_name));
    match replace_file(&path, &report.to_pretty()) {
        Ok(()) => {
            eprintln!("(wrote {})", path.display());
            // The final report is durable; drop the write-ahead state
            // (the v2 store directory, any unmigrated v1 file, and the
            // partial report).
            let _ = std::fs::remove_dir_all(journal_dir(&args.runs_dir, &args.sweep_name));
            let _ = std::fs::remove_file(journal_v1_path(&args.runs_dir, &args.sweep_name));
            let _ = std::fs::remove_file(partial_path(&args.runs_dir, &args.sweep_name));
        }
        Err(e) => eprintln!("warning: could not write serve report: {e}"),
    }

    print_table(&spec, &records);
    let failed = records.iter().filter(|r| r.status != "ok").count();
    if failed > 0 {
        eprintln!("error: {failed} serve job(s) failed");
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny_spec() -> ServeSweepSpec {
        ServeSweepSpec {
            system: SystemConfig::small_test(),
            scale: SuiteConfig::quick(),
            tenants: vec![
                ("t0".to_string(), "FwSoft".to_string()),
                ("t1".to_string(), "FwPool".to_string()),
            ],
            policies: vec![
                PolicyConfig::of(CachePolicy::CacheR),
                PolicyConfig::of(CachePolicy::CacheRW),
            ],
            loads: vec![30_000],
            requests: 3,
            seed: 0,
            partition: true,
            max_batch: 2,
            budget: 500_000_000,
            no_skip: false,
            check_invariants: false,
        }
    }

    #[test]
    fn serve_args_parse() {
        let a = parse_serve_args(
            [
                "--system",
                "paper",
                "--scale",
                "paper",
                "--tenants",
                "a=FwSoft,b=SGEMM",
                "--policies",
                "CacheR,CacheRW",
                "--loads",
                "50000,10000",
                "--requests",
                "8",
                "--seed",
                "9",
                "--partition",
                "--max-batch",
                "2",
                "--jobs",
                "3",
                "--retries",
                "2",
                "--sweep-name",
                "myserve",
            ]
            .iter()
            .map(|s| (*s).to_string()),
        );
        assert_eq!(a.system_name, "paper");
        assert_eq!(a.tenants[1], ("b".to_string(), "SGEMM".to_string()));
        assert_eq!(a.policies.len(), 2);
        assert_eq!(a.loads, vec![50_000, 10_000]);
        assert_eq!(a.requests, 8);
        assert_eq!(a.seed, 9);
        assert!(a.partition);
        assert_eq!(a.max_batch, 2);
        assert_eq!(a.jobs, 3);
        assert_eq!(a.retries, 2);
        assert_eq!(a.sweep_name, "myserve");
        let d = parse_serve_args(std::iter::empty());
        assert_eq!(d.sweep_name, "serve-small-quick");
        assert_eq!(d.policies.len(), 3);
    }

    #[test]
    #[should_panic(expected = "unexpected argument")]
    fn serve_rejects_unknown_flags() {
        drop(parse_serve_args(
            ["--frobnicate"].iter().map(|s| (*s).to_string()),
        ));
    }

    #[test]
    fn fingerprint_tracks_grid_options_and_traffic() {
        let base = tiny_spec();
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        let mut seeded = base.clone();
        seeded.seed = 1;
        assert_ne!(base.fingerprint(), seeded.fingerprint());
        let mut loaded = base.clone();
        loaded.loads.push(10_000);
        assert_ne!(base.fingerprint(), loaded.fingerprint());
        let mut batched = base.clone();
        batched.max_batch = 1;
        assert_ne!(base.fingerprint(), batched.fingerprint());
        // The traffic identity alone separates sweeps too.
        assert_ne!(base.arrivals_fingerprint(), seeded.arrivals_fingerprint());
    }

    #[test]
    fn schedules_are_shared_across_policies_not_tenants() {
        let spec = tiny_spec();
        let jobs = spec.jobs();
        let a = spec.serve_config(&jobs[0]);
        let b = spec.serve_config(&jobs[1]);
        // Same load, different policy: byte-identical traffic.
        assert_eq!(a.tenants[0].schedule, b.tenants[0].schedule);
        // Different tenants: different streams.
        assert_ne!(a.tenants[0].schedule, a.tenants[1].schedule);
    }

    #[test]
    fn record_round_trips_through_json() {
        let spec = tiny_spec();
        let rec = run_serve_job(&spec, &spec.jobs()[0]);
        assert_eq!(rec.status, "ok");
        let line = rec.to_json_line();
        let back = ServeJobRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn v1_jsonl_serve_journals_migrate_and_resume_identically() {
        let dir = std::env::temp_dir().join(format!("miopt-serve-v1-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = tiny_spec();
        let jobs = spec.jobs();
        let rec0 = run_serve_job(&spec, &jobs[0]);
        let mut text = format!(
            "{{\"journal\":\"legacy\",\"kind\":\"serve\",\"fingerprint\":\"{}\"}}\n",
            spec.fingerprint_v1()
        );
        text.push_str(&rec0.to_json_line());
        text.push('\n');
        text.push_str("{\"id\": 1, \"poli"); // torn v1 tail
        std::fs::write(journal_v1_path(&dir, "legacy"), &text).unwrap();

        let entries = load_serve_journal(&dir, "legacy", &spec).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0], rec0);
        assert!(
            !journal_v1_path(&dir, "legacy").exists(),
            "the v1 file is consumed by migration"
        );
        assert!(journal_dir(&dir, "legacy").is_dir(), "v2 store created");

        // The migrated store keeps accepting appends and replays both
        // the migrated and the new record.
        let w = ServeJournalWriter::append_to(&dir, "legacy").unwrap();
        w.append(&run_serve_job(&spec, &jobs[1])).unwrap();
        let entries = load_serve_journal(&dir, "legacy", &spec).unwrap();
        assert_eq!(entries.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);

        // A v1 journal from a different sweep is refused, untouched.
        let mut foreign = spec.clone();
        foreign.seed = 99;
        std::fs::write(journal_v1_path(&dir, "other"), &text).unwrap();
        let err = load_serve_journal(&dir, "other", &foreign).unwrap_err();
        assert!(err.contains("different serve sweep"), "{err}");
        assert!(journal_v1_path(&dir, "other").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_jobs_are_retried_then_reported_not_propagated() {
        use crate::backoff::Backoff;
        use std::time::Duration;
        let retry = RetryPolicy {
            max_attempts: 2,
            backoff: Backoff::new(Duration::from_millis(1)),
            escalate_timeout: true,
        };
        let spec = tiny_spec();
        let rec = run_serve_job_with_retry(&spec, &spec.jobs()[0], &retry);
        assert_eq!(rec.status, "ok", "healthy jobs are unaffected by retry");

        // An unknown tenant workload makes serve_config panic; the
        // executor must retry it (a real panic could be a transient,
        // e.g. allocation failure) and then report, not propagate.
        let mut broken = tiny_spec();
        broken.tenants[1].1 = "Nonexistent".to_string();
        let job = broken.jobs().remove(0);
        let rec = run_serve_job_with_retry(&broken, &job, &retry);
        assert!(rec.status.starts_with("panicked:"), "{}", rec.status);
        assert_eq!(rec.id, job.id);
        assert!(rec.tenants.is_empty());
    }

    #[test]
    fn equal_share_partitions_cover_the_l2() {
        let spec = tiny_spec();
        let p0 = spec.partition_of(0).unwrap();
        let p1 = spec.partition_of(1).unwrap();
        assert_eq!(p0.first, 0);
        assert_eq!(p0.end(), p1.first);
        assert_eq!(p1.end(), spec.system.l2.ways);
    }
}
